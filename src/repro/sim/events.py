"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-based DES architecture (as in
SimPy): an :class:`Event` is a one-shot value holder with a callback list,
an :class:`~repro.sim.engine.Environment` owns the event calendar, and a
:class:`~repro.sim.process.Process` wraps a generator that *yields* events
to wait on them.

Events here are deliberately minimal and allocation-light (``__slots__``)
because scheduler experiments schedule millions of them.  The dominant
waiting pattern is a single waiter (one process blocked on one event), so
callbacks use a single-slot fast path (``_cb0``) and only allocate a list
when a second waiter actually attaches — the common case never touches a
list at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
]

# Scheduling priorities: URGENT events at the same timestamp are processed
# before NORMAL ones.  Used to make resource hand-off deterministic.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through the states *pending* -> *triggered* (scheduled on
    the calendar with a value) -> *processed* (callbacks executed).  An
    event may succeed (``ok``) or fail with an exception; waiting processes
    observe failure as the exception being raised at their ``yield``.

    The first callback lives in the ``_cb0`` slot; ``callbacks`` stays
    ``None`` until a second callback attaches.  ``_processed`` (not the
    callback containers) is the processed-state marker.
    """

    __slots__ = (
        "env", "callbacks", "_cb0", "_value", "_ok", "_scheduled",
        "_processed",
    )

    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._cb0: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._scheduled = False
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the calendar."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event._PENDING:
            raise RuntimeError("event has already been triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Waiting processes see ``exc`` raised at their ``yield`` statement.
        """
        if self._value is not Event._PENDING:
            raise RuntimeError("event has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"{exc!r} is not an exception")
        self._value = exc
        self._ok = False
        self.env._schedule(self, priority)
        return self

    # -- callbacks ------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately;
        this makes waiting race-free regardless of ordering.
        """
        if self._processed:
            fn(self)
        elif self._cb0 is None:
            self._cb0 = fn
        else:
            cbs = self.callbacks
            if cbs is None:
                self.callbacks = [fn]
            else:
                cbs.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> bool:
        """Detach ``fn`` if attached; returns whether it was removed.

        Keeps the invariant that ``_cb0`` is filled whenever any callback
        remains, so ordering is preserved across removals.
        """
        if self._cb0 is fn:
            cbs = self.callbacks
            self._cb0 = cbs.pop(0) if cbs else None
            return True
        cbs = self.callbacks
        if cbs is not None:
            try:
                cbs.remove(fn)
                return True
            except ValueError:
                pass
        return False

    def _process(self) -> None:
        """Invoke callbacks.  Called by the environment main loop."""
        self._processed = True
        cb = self._cb0
        if cb is not None:
            self._cb0 = None
            cb(self)
        cbs = self.callbacks
        if cbs is not None:
            self.callbacks = None
            for fn in cbs:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Timeouts are the dominant event class; prefer
    :meth:`~repro.sim.engine.Environment.timeout`, which recycles
    processed instances through a free list instead of allocating.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        env._schedule(self, NORMAL, delay)


class _Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._n_done = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self):
        return tuple(ev.value for ev in self.events if ev.triggered)

    def _check(self, ev: Event) -> None:
        raise NotImplementedError

    def detach(self) -> None:
        """Stop watching constituents that have not fired yet.

        Long-lived events (fleet death/stop signals) otherwise accumulate
        one stale ``_check`` per composite built on them.
        """
        for ev in self.events:
            if not ev._processed:
                ev.remove_callback(self._check)


class AllOf(_Condition):
    """Succeeds when *all* constituent events have succeeded.

    Fails as soon as any constituent fails (the first failure wins).
    The value is a tuple of all constituent values, in construction order.
    """

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(tuple(e.value for e in self.events))


class AnyOf(_Condition):
    """Succeeds when *any* constituent event succeeds.

    The value is the triggering event itself, so the waiter can identify
    which of several awaited events fired first.
    """

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed(ev)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None
