"""Generator-based simulation processes.

A process wraps a Python generator.  Each value the generator *yields*
must be an :class:`~repro.sim.events.Event`; the process suspends until the
event is processed and then resumes with the event's value (or the event's
exception thrown into the generator).  A process is itself an event that
succeeds with the generator's return value, so processes can wait on each
other and be composed with :class:`~repro.sim.events.AllOf` /
:class:`~repro.sim.events.AnyOf`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Interrupt, URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = ["Process"]


class Process(Event):
    """An active entity driven by a generator.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The generator to execute.  It may ``return`` a value, which becomes
        the process's event value.
    name:
        Optional label used in traces and error messages.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at the current simulation time.
        init = Event(env)
        init.succeed(None, priority=URGENT)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process must currently be waiting on an event; the interrupt is
        delivered immediately (at the current simulation time, urgently).
        Interrupting a finished process raises ``RuntimeError``.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self._target is None:
            raise RuntimeError(
                f"cannot interrupt process {self.name!r} before it starts"
            )
        # Detach from the awaited event and deliver the interrupt.
        target, self._target = self._target, None
        if not target._processed:
            target.remove_callback(self._resume)
        deliver = Event(self.env)
        deliver.fail(Interrupt(cause), priority=URGENT)
        deliver.add_callback(self._resume)

    # -- engine plumbing --------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the triggering event's outcome."""
        self.env._active_process = self
        self._target = None
        try:
            if trigger._ok:
                result = self._generator.send(trigger._value)
            else:
                result = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self.env.strict:
                raise
            self.fail(exc, priority=URGENT)
            return
        self.env._active_process = None

        if not isinstance(result, Event):
            raise TypeError(
                f"process {self.name!r} yielded {result!r}, expected an Event"
            )
        if result.env is not self.env:
            raise ValueError("yielded event belongs to a different environment")
        self._target = result
        result.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
