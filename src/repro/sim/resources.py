"""Shared-resource primitives built on the event kernel.

Provides:

* :class:`Resource` — a counted FIFO resource (semaphore) with optional
  priorities, used for SPE pools and bus arbitration.
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``,
  used for mailboxes, task queues and MPI channels.
* :class:`Gate` — a broadcast condition that processes can wait on and that
  can be reopened, used for mode-change signalling (e.g. MGPS switching
  between EDTLP and LLP).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .engine import Environment
from .events import Event, URGENT

__all__ = ["Resource", "Request", "Store", "Gate", "Barrier"]


class Request(Event):
    """A pending acquisition of a :class:`Resource`.

    Succeeds when the resource grants a unit.  The holder must call
    :meth:`Resource.release` with this request exactly once when done.
    """

    __slots__ = ("resource", "priority", "cancelled")

    def __init__(self, resource: "Resource", priority: int) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request.

        Granted requests cannot be cancelled — release them instead.
        """
        if self.triggered:
            raise RuntimeError("cannot cancel a granted request; release it")
        self.cancelled = True
        self.resource._forget(self)


class Resource:
    """A counted resource with FIFO (optionally prioritized) granting.

    Lower ``priority`` values are served first; ties break FIFO.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: List[Tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def in_use(self) -> int:
        """Number of currently granted units."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free units."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending (ungranted) requests."""
        return sum(1 for _, _, r in self._waiting if not r.cancelled)

    def request(self, priority: int = 0) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        req = Request(self, priority)
        self._seq += 1
        heapq.heappush(self._waiting, (priority, self._seq, req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return the unit held by ``request``."""
        if not request.triggered:
            raise RuntimeError("releasing a request that was never granted")
        self._in_use -= 1
        if self._in_use < 0:  # pragma: no cover - internal invariant
            raise RuntimeError("resource released more times than acquired")
        self._grant()

    def _forget(self, request: Request) -> None:
        # Lazy deletion: the heap entry stays but is skipped when popped.
        self._grant()

    def _grant(self) -> None:
        while self._in_use < self.capacity and self._waiting:
            _prio, _seq, req = self._waiting[0]
            if req.cancelled:
                heapq.heappop(self._waiting)
                continue
            heapq.heappop(self._waiting)
            self._in_use += 1
            req.succeed(req, priority=URGENT)


class Store:
    """Unbounded FIFO item queue with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item once one is available.  Items are delivered in put order to
    getters in get order (fair FIFO matching).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of blocked getters."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: an item or None."""
        return self._items.popleft() if self._items else None


class Gate:
    """A reusable broadcast condition.

    ``wait()`` returns an event that fires at the next ``fire(value)``.
    Unlike a bare event, a gate can fire repeatedly; each ``fire`` releases
    every process that was waiting at that moment.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: List[Event] = []

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Release all current waiters; return how many were released."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value, priority=URGENT)
        return len(waiters)


class Barrier:
    """A reusable rendezvous for exactly ``n`` parties.

    ``arrive()`` returns an event that fires once all ``n`` parties of
    the current generation have arrived (the classic BSP barrier).  The
    barrier then resets for the next generation.
    """

    def __init__(self, env: Environment, n: int) -> None:
        if n < 1:
            raise ValueError("barrier needs at least one party")
        self.env = env
        self.n = n
        self._waiting: List[Event] = []
        self.generations = 0

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def arrive(self) -> Event:
        """Register arrival; the event fires when the generation is full."""
        ev = Event(self.env)
        self._waiting.append(ev)
        if len(self._waiting) == self.n:
            waiters, self._waiting = self._waiting, []
            self.generations += 1
            for w in waiters:
                w.succeed(self.generations, priority=URGENT)
        return ev
