"""Execution tracing and interval statistics.

The tracer records typed, timestamped records during a simulation run and
offers utilization/occupancy reductions over them.  It is the data source
for all reported metrics (SPE utilization, PPE occupancy, timelines) and
for the ASCII timelines printed by the examples.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["TraceRecord", "Tracer", "BusyTracker"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: time, category, actor, event name, payload."""

    time: float
    category: str
    actor: str
    event: str
    data: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.data:
            if k == key:
                return v
        return default


class Tracer:
    """Collects :class:`TraceRecord` entries.

    Tracing can be disabled (``enabled=False``) for large sweeps; the
    emit call then degenerates to a single attribute check.

    Attaching a :class:`~repro.obs.profile.Profiler` (``tracer.profiler
    = prof``) accounts each emit's wall-clock cost under the
    ``obs.tracer.emit`` section; left at ``None``, emits pay only one
    extra ``is None`` check.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.profiler: Optional[Any] = None

    def emit(
        self,
        time: float,
        category: str,
        actor: str,
        event: str,
        data: Union[Mapping, Iterable[Tuple[str, Any]], None] = None,
        **kw: Any,
    ) -> None:
        """Record one event.

        The payload may be passed as keyword arguments (the original
        calling convention), as a ``Mapping``, or as a pre-built iterable
        of ``(key, value)`` pairs — the latter two avoid rebuilding a
        kwargs dict at hot call sites.  When both are given, keyword
        arguments are appended after ``data``.
        """
        if not self.enabled:
            return
        prof = self.profiler
        start = prof.clock() if prof is not None else 0.0
        if data is None:
            payload = tuple(kw.items())
        else:
            if isinstance(data, Mapping):
                payload = tuple(data.items())
            else:
                payload = tuple(data)
            if kw:
                payload += tuple(kw.items())
        self.records.append(
            TraceRecord(time, category, actor, event, payload)
        )
        if prof is not None:
            prof.account("obs.tracer.emit", prof.clock() - start)

    def filter(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        event: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Records matching every given criterion."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def clear(self) -> None:
        self.records.clear()

    # -- persistence -------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize all records as JSON Lines (one record per line).

        Payload pair order is preserved; tuple values are stored as JSON
        arrays and restored as tuples by :meth:`from_jsonl`, so a
        round-trip reproduces the original records exactly (lists, which
        never appear in emitted payloads, would also come back as
        tuples).
        """
        lines = []
        for r in self.records:
            lines.append(json.dumps(
                {
                    "t": r.time,
                    "cat": r.category,
                    "actor": r.actor,
                    "event": r.event,
                    "data": [[k, _to_jsonable(v)] for k, v in r.data],
                },
                sort_keys=True,
            ))
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: Union[str, Iterable[str]]) -> "Tracer":
        """Rebuild a tracer from :meth:`to_jsonl` output."""
        tracer = cls(enabled=True)
        lines = text.splitlines() if isinstance(text, str) else text
        for line in lines:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            payload = tuple((k, _from_jsonable(v)) for k, v in d["data"])
            tracer.records.append(
                TraceRecord(d["t"], d["cat"], d["actor"], d["event"], payload)
            )
        return tracer


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, (tuple, list)):
        return [_to_jsonable(v) for v in value]
    return value


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_from_jsonable(v) for v in value)
    return value


class BusyTracker:
    """Accumulates busy time per actor from begin/end marks.

    Used for utilization: each actor (an SPE, a PPE context) marks
    ``begin(actor, t)`` when it starts useful work and ``end(actor, t)``
    when it stops; :meth:`utilization` divides accumulated busy time by a
    window.  Nested begin/end pairs are counted once (re-entrant).
    """

    def __init__(self) -> None:
        self._busy: Dict[str, float] = {}
        self._open: Dict[str, Tuple[int, float]] = {}

    def begin(self, actor: str, time: float) -> None:
        depth, since = self._open.get(actor, (0, time))
        if depth == 0:
            since = time
        self._open[actor] = (depth + 1, since)

    def end(self, actor: str, time: float) -> None:
        if actor not in self._open or self._open[actor][0] == 0:
            raise RuntimeError(f"end() without begin() for actor {actor!r}")
        depth, since = self._open[actor]
        if depth == 1:
            self._busy[actor] = self._busy.get(actor, 0.0) + (time - since)
            del self._open[actor]
        else:
            self._open[actor] = (depth - 1, since)

    def busy_time(self, actor: str, now: Optional[float] = None) -> float:
        """Total busy time, including any currently open interval."""
        total = self._busy.get(actor, 0.0)
        if now is not None and actor in self._open:
            depth, since = self._open[actor]
            if depth > 0:
                total += now - since
        return total

    def actors(self) -> List[str]:
        keys = set(self._busy) | set(self._open)
        return sorted(keys)

    def utilization(self, actor: str, window: float, now: Optional[float] = None) -> float:
        """Fraction of ``window`` the actor was busy (0 if window == 0)."""
        if window <= 0:
            return 0.0
        return self.busy_time(actor, now) / window

    def mean_utilization(
        self, actors: Iterable[str], window: float, now: Optional[float] = None
    ) -> float:
        actors = list(actors)
        if not actors:
            return 0.0
        return sum(self.utilization(a, window, now) for a in actors) / len(actors)
