"""The simulation environment: clock, calendar and run loop.

The environment keeps a binary-heap calendar of ``(time, priority, seq,
event)`` entries.  ``seq`` is a monotonically increasing tie-breaker so
events at equal timestamps are processed in schedule order, which makes
every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout, NORMAL
from .process import Process

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when the calendar is empty."""


class Environment:
    """Owns simulated time and drives event processing.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    strict:
        If True (default), an exception escaping a process propagates out
        of :meth:`run` immediately — the right behaviour for tests.  If
        False, the process fails as an event and waiters see the error.
    tracer / metrics:
        Optional observability sinks carried by the environment so every
        component of a run (machine, runtime, workers) can reach the
        same :class:`~repro.sim.trace.Tracer` and
        :class:`~repro.obs.metrics.MetricsRegistry` without threading
        them through each constructor.  Both default to ``None``
        (observability off); neither influences event ordering.
    profiler:
        Optional :class:`~repro.obs.profile.Profiler` measuring the
        *wall-clock* cost of the event loop: heap push/pop tallies and
        per-event-type dispatch timing.  Defaults to ``None``; the fast
        path then pays only one ``is None`` check per step and push.
        Profiling never influences event ordering or simulated results.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = True,
        *,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.events_processed = 0
        self._event_section: dict = {}

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        if event._scheduled:  # pragma: no cover - internal invariant
            raise RuntimeError("event is already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        if self.profiler is not None:
            self.profiler.heap_pushes += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        self.events_processed += 1
        prof = self.profiler
        if prof is None:
            event._process()
            return
        prof.heap_pops += 1
        cls = event.__class__
        name = self._event_section.get(cls)
        if name is None:
            name = self._event_section[cls] = f"sim.event.{cls.__name__}"
        with prof.section(name):
            event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar drains or the clock reaches ``until``.

        Returns the final simulation time.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return self._now
            self.step()
        return self._now

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed (requires
        ``strict=False`` for the failure to be captured as an event).
        """
        while not process.triggered:
            if not self._queue:
                raise RuntimeError(
                    f"deadlock: calendar empty but {process.name!r} not finished"
                )
            self.step()
        # Drain same-timestamp bookkeeping so callbacks fire.
        while self._queue and self._queue[0][0] <= self._now:
            self.step()
        if not process.ok:
            raise process.value
        return process.value
