"""The simulation environment: clock, calendar queue and run loop.

The calendar is a three-tier structure instead of one flat binary heap:

* ``_immediate`` — a FIFO deque of URGENT zero-delay events.  URGENT
  events are only ever scheduled *at* the current timestamp (resource
  hand-off, process resume), so FIFO order at the head of the calendar
  is exactly the ``(time, URGENT, seq)`` order the old heap produced —
  without a tuple, a sequence number, or a heap operation.
* ``_deferred`` — a FIFO deque of NORMAL zero-delay events, tagged with
  their ``seq`` so they interleave correctly with heap entries that land
  on the same timestamp.
* ``_near``/``_far`` — the timed calendar, split at a moving ``_horizon``:
  ``_near`` is a small heap of the soonest entries, ``_far`` the overflow
  heap.  When ``_near`` drains, a batch of the soonest ``_far`` entries
  refills it (ties across the boundary move together, so the seam can
  never split equal timestamps).  Steady-state enqueue/dequeue touches
  only the small near heap.

``seq`` is a monotonically increasing tie-breaker so events at equal
timestamps are processed in schedule order, which makes every simulation
fully deterministic.  Immediate events do not consume sequence numbers;
removing a shared counter burn cannot change the relative order of the
remaining entries.

The run loops (``run`` / ``run_until_complete``) inline event dispatch
when no profiler is attached and recycle processed :class:`Timeout`
objects through a free list (see :meth:`Environment.timeout`); a
``sys.getrefcount`` guard means an instance is only reincarnated once
nothing else references it, so pooling can never change an observable
value.  Both loops share one ``peek()``-guarded drain
(:meth:`Environment._advance_until`) for same-timestamp completion.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from sys import getrefcount
from collections import deque
from typing import Any, Dict, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout, NORMAL, URGENT
from .process import Process

__all__ = ["Environment", "EmptySchedule"]

_INF = float("inf")
_PENDING = Event._PENDING

# Calendar-queue tuning: how many far-heap entries one refill promotes
# into the near heap (plus boundary ties), how many processed Timeouts
# the free list retains, and how many refill occupancy samples are kept
# for the ``near_occupancy_p95`` kernel gauge.
_NEAR_BATCH = 64
_POOL_CAP = 256
_OCC_CAP = 4096


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when the calendar is empty."""


class Environment:
    """Owns simulated time and drives event processing.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    strict:
        If True (default), an exception escaping a process propagates out
        of :meth:`run` immediately — the right behaviour for tests.  If
        False, the process fails as an event and waiters see the error.
    tracer / metrics:
        Optional observability sinks carried by the environment so every
        component of a run (machine, runtime, workers) can reach the
        same :class:`~repro.sim.trace.Tracer` and
        :class:`~repro.obs.metrics.MetricsRegistry` without threading
        them through each constructor.  Both default to ``None``
        (observability off); neither influences event ordering.
    profiler:
        Optional :class:`~repro.obs.profile.Profiler` measuring the
        *wall-clock* cost of the event loop: heap push/pop tallies and
        per-event-type dispatch timing.  Defaults to ``None``; the fast
        path then runs a fully inlined dispatch loop.  Profiling never
        influences event ordering or simulated results.
    """

    __slots__ = (
        "_now", "_seq", "_active_process", "strict", "tracer", "metrics",
        "profiler", "events_processed",
        "_immediate", "_deferred", "_near", "_far", "_horizon",
        "_timeout_pool", "_pool_hits", "_pool_misses",
        "_immediate_pops", "_deferred_pops", "_refills", "_occupancy",
        "_batched_events",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = True,
        *,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self._now = float(initial_time)
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.events_processed = 0
        # Calendar tiers.
        self._immediate: deque = deque()
        self._deferred: deque = deque()
        self._near: List[Tuple[float, int, int, Event]] = []
        self._far: List[Tuple[float, int, int, Event]] = []
        self._horizon = self._now
        # Timeout free list + kernel health tallies.
        self._timeout_pool: deque = deque()
        self._pool_hits = 0
        self._pool_misses = 0
        self._immediate_pops = 0
        self._deferred_pops = 0
        self._refills = 0
        self._occupancy: List[int] = []
        self._batched_events = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now.

        Recycles a processed :class:`Timeout` from the free list when one
        exists and nothing else still references it (``getrefcount`` is 2:
        the free-list pop and the argument binding).  A recycled instance
        is fully re-initialized, so reincarnation never leaks a value or
        callback between lives; reuse also cannot affect event ordering,
        which depends only on ``(time, priority, seq)``.
        """
        pool = self._timeout_pool
        for _ in range(3 if len(pool) > 3 else len(pool)):
            t = pool.popleft()
            if getrefcount(t) == 2:
                if delay < 0:
                    pool.appendleft(t)
                    raise ValueError(f"negative delay {delay!r}")
                t.delay = delay
                t._value = value
                t._ok = True
                t._scheduled = False
                t._processed = False
                t._cb0 = None
                t.callbacks = None
                self._pool_hits += 1
                self._schedule(t, NORMAL, delay)
                return t
            # Still referenced from a previous life (e.g. a pending
            # composite holds it) — retry once the reference drops.
            pool.append(t)
        self._pool_misses += 1
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        if event._scheduled:  # pragma: no cover - internal invariant
            raise RuntimeError("event is already scheduled")
        event._scheduled = True
        if delay == 0.0:
            if priority == URGENT:
                self._immediate.append(event)
            else:
                self._seq += 1
                self._deferred.append((self._seq, event))
        else:
            self._seq += 1
            t = self._now + delay
            entry = (t, priority, self._seq, event)
            if t <= self._horizon:
                heappush(self._near, entry)
            else:
                heappush(self._far, entry)
        if self.profiler is not None:
            self.profiler.heap_pushes += 1

    def _refill(self) -> None:
        """Promote the soonest far-heap batch into the empty near heap.

        Entries leave the far heap in ascending order, and an ascending
        list satisfies the heap invariant, so the batch *is* the new near
        heap.  The boundary extends through ties: every far entry at the
        new horizon timestamp moves too, so equal timestamps can never
        straddle the seam (and ``_horizon`` only ever grows — a far entry
        is always strictly beyond it).
        """
        far = self._far
        near = self._near
        n = _NEAR_BATCH if len(far) > _NEAR_BATCH else len(far)
        for _ in range(n):
            near.append(heappop(far))
        limit = near[-1][0]
        while far and far[0][0] <= limit:
            near.append(heappop(far))
        self._horizon = limit
        self._refills += 1
        occ = self._occupancy
        if len(occ) < _OCC_CAP:
            occ.append(len(near))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._immediate or self._deferred:
            return self._now
        if self._near:
            return self._near[0][0]
        if self._far:
            return self._far[0][0]
        return _INF

    def _has_events(self) -> bool:
        return bool(
            self._immediate or self._deferred or self._near or self._far
        )

    def _pop_next(self) -> Event:
        """Remove and return the next event, advancing the clock to it."""
        imm = self._immediate
        if imm:
            self._immediate_pops += 1
            return imm.popleft()
        near = self._near
        if not near and self._far:
            self._refill()
        dfr = self._deferred
        if dfr:
            if near:
                head = near[0]
                # A heap entry beats the deferred head only on the same
                # timestamp with higher priority or an earlier seq.
                if head[0] == self._now and (
                    head[1] == URGENT or head[2] < dfr[0][0]
                ):
                    return heappop(near)[3]
            self._deferred_pops += 1
            return dfr.popleft()[1]
        if not near:
            raise EmptySchedule()
        entry = heappop(near)
        self._now = entry[0]
        return entry[3]

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        event = self._pop_next()
        self.events_processed += 1
        prof = self.profiler
        if prof is None:
            event._process()
        else:
            prof.heap_pops += 1
            with prof.section(prof.event_section(event.__class__)):
                event._process()
        # Recycle like the inlined loops do, so profiled runs keep the
        # Timeout free list (and its hit-rate gauge) alive.
        if type(event) is Timeout and len(self._timeout_pool) < _POOL_CAP:
            self._timeout_pool.append(event)

    # -- run loops ----------------------------------------------------------
    def _advance_until(self, limit: float) -> None:
        """Process every event due at or before ``limit``.

        The single ``peek()``-guarded loop shared by :meth:`run` and
        :meth:`run_until_complete`'s same-timestamp drain.  Inlines
        dispatch and Timeout recycling when no profiler is attached.
        """
        if self.profiler is not None:
            while self.peek() <= limit:
                self.step()
            return
        imm = self._immediate
        dfr = self._deferred
        pool = self._timeout_pool
        processed = 0
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while True:
                if imm:
                    self._immediate_pops += 1
                    ev = imm.popleft()
                else:
                    near = self._near
                    if not near and self._far:
                        self._refill()
                        near = self._near
                    if dfr:
                        if near:
                            head = near[0]
                            if head[0] == self._now and (
                                head[1] == URGENT or head[2] < dfr[0][0]
                            ):
                                ev = heappop(near)[3]
                            else:
                                self._deferred_pops += 1
                                ev = dfr.popleft()[1]
                        else:
                            self._deferred_pops += 1
                            ev = dfr.popleft()[1]
                    elif near:
                        t = near[0][0]
                        if t > limit:
                            break
                        self._now = t
                        ev = heappop(near)[3]
                    else:
                        break
                processed += 1
                # Inlined Event._process (no subclass overrides it).
                ev._processed = True
                cb = ev._cb0
                if cb is not None:
                    ev._cb0 = None
                    cb(ev)
                cbs = ev.callbacks
                if cbs is not None:
                    ev.callbacks = None
                    for fn in cbs:
                        fn(ev)
                if type(ev) is Timeout and len(pool) < _POOL_CAP:
                    pool.append(ev)
        finally:
            self.events_processed += processed
            self._batched_events += processed
            if gc_was_enabled:
                gc.enable()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar drains or the clock reaches ``until``.

        Returns the final simulation time.
        """
        if until is None:
            self._advance_until(_INF)
            return self._now
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        self._advance_until(until)
        if until > self._now and self._has_events():
            # Events remain beyond the limit: clamp the clock to it.
            self._now = until
        return self._now

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed (requires
        ``strict=False`` for the failure to be captured as an event).
        """
        if self.profiler is not None:
            while process._value is _PENDING:
                if not self._has_events():
                    self._deadlock(process)
                self.step()
        else:
            self._run_to_completion(process)
        # Drain same-timestamp bookkeeping so callbacks fire — the same
        # peek()-guarded loop run(until=...) uses.
        self._advance_until(self._now)
        if not process._ok:
            raise process._value
        return process._value

    def _run_to_completion(self, process: Process) -> None:
        """Inlined profiler-off event loop with a completion stop check."""
        imm = self._immediate
        dfr = self._deferred
        pool = self._timeout_pool
        processed = 0
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while process._value is _PENDING:
                if imm:
                    self._immediate_pops += 1
                    ev = imm.popleft()
                else:
                    near = self._near
                    if not near and self._far:
                        self._refill()
                        near = self._near
                    if dfr:
                        if near:
                            head = near[0]
                            if head[0] == self._now and (
                                head[1] == URGENT or head[2] < dfr[0][0]
                            ):
                                ev = heappop(near)[3]
                            else:
                                self._deferred_pops += 1
                                ev = dfr.popleft()[1]
                        else:
                            self._deferred_pops += 1
                            ev = dfr.popleft()[1]
                    elif near:
                        entry = heappop(near)
                        self._now = entry[0]
                        ev = entry[3]
                    else:
                        self._deadlock(process)
                processed += 1
                ev._processed = True
                cb = ev._cb0
                if cb is not None:
                    ev._cb0 = None
                    cb(ev)
                cbs = ev.callbacks
                if cbs is not None:
                    ev.callbacks = None
                    for fn in cbs:
                        fn(ev)
                if type(ev) is Timeout and len(pool) < _POOL_CAP:
                    pool.append(ev)
        finally:
            self.events_processed += processed
            self._batched_events += processed
            if gc_was_enabled:
                gc.enable()

    def _deadlock(self, process: Any) -> None:
        name = getattr(process, "name", type(process).__name__)
        raise RuntimeError(
            f"deadlock: calendar empty but {name!r} not finished"
        )

    # -- kernel health -------------------------------------------------------
    def kernel_stats(self) -> Dict[str, float]:
        """Deterministic health gauges for the calendar queue and pools.

        Fed into the ``run.kernel.*`` metrics so ``repro stats --fail-on``
        and the report's perf lane can watch kernel behaviour.
        """
        events = self.events_processed
        heap_events = events - self._immediate_pops - self._deferred_pops
        allocs = self._pool_hits + self._pool_misses
        occ = sorted(self._occupancy)
        if occ:
            p95 = occ[min(len(occ) - 1, int(0.95 * len(occ)))]
        else:
            p95 = 0
        return {
            "events": float(events),
            "immediate_events": float(self._immediate_pops),
            "deferred_events": float(self._deferred_pops),
            "heap_events": float(heap_events),
            "calendar_refills": float(self._refills),
            "near_occupancy_p95": float(p95),
            "pool_hit_rate": (
                self._pool_hits / allocs if allocs else 0.0
            ),
            "batch_advance_fraction": (
                self._batched_events / events if events else 0.0
            ),
        }
