"""Deterministic random-number streams for simulations.

Every stochastic component of the simulator draws from its own named
substream so that (a) runs are exactly reproducible from a single root
seed, and (b) changing how one component consumes randomness does not
perturb any other component — the standard CRN (common random numbers)
discipline for comparing scheduling policies on identical workloads.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Streams are derived from the root seed and the stream name with
    SHA-256, so the mapping is stable across processes and Python versions
    (unlike ``hash()``).
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            sub = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(sub)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child stream factory (e.g. per MPI process)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return RngStreams(int.from_bytes(digest[8:16], "little"))
