"""A small deterministic discrete-event simulation kernel.

This package is the substrate under every experiment in the reproduction:
generator-based processes, an event calendar with deterministic
tie-breaking, counted resources, FIFO stores, broadcast gates, named RNG
streams and busy-time tracking.
"""

from .engine import EmptySchedule, Environment
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .process import Process
from .resources import Barrier, Gate, Request, Resource, Store
from .rng import RngStreams
from .trace import BusyTracker, TraceRecord, Tracer

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Request",
    "Store",
    "Gate",
    "Barrier",
    "RngStreams",
    "Tracer",
    "TraceRecord",
    "BusyTracker",
]
