"""SMT multiprocessor wall-time models for the Figure 10 comparison.

The paper compares end-to-end RAxML wall time on three machines.  For the
non-Cell machines the workload is embarrassingly parallel MPI with one
process per hardware context, so the makespan is governed by three
things, all encoded here: per-context single-thread bootstrap time, the
SMT throughput curve of a core, and the context/core topology.  Processes
are placed round-robin and do not migrate (static MPI placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["SMTMultiprocessor"]


@dataclass(frozen=True)
class SMTMultiprocessor:
    """A multiprocessor of identical SMT cores.

    Attributes
    ----------
    name:
        Display name ("Intel Xeon", "IBM Power5").
    n_cores:
        Total physical cores across all packages.
    threads_per_core:
        Hardware contexts per core.
    bootstrap_seconds:
        Single-thread wall time of one 42_SC bootstrap on this machine.
    smt_throughput:
        Combined throughput of one core when ``j`` contexts are busy,
        indexed ``smt_throughput[j-1]``; e.g. ``(1.0, 1.25)`` means two
        hyperthreads deliver 1.25x a single thread.
    """

    name: str
    n_cores: int
    threads_per_core: int
    bootstrap_seconds: float
    smt_throughput: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.threads_per_core < 1:
            raise ValueError("need at least one core and one context")
        if self.bootstrap_seconds <= 0:
            raise ValueError("bootstrap_seconds must be positive")
        if len(self.smt_throughput) != self.threads_per_core:
            raise ValueError(
                "smt_throughput needs one entry per busy-context count"
            )
        if self.smt_throughput[0] != 1.0:
            raise ValueError("throughput with one busy context must be 1.0")
        if any(
            b < a for a, b in zip(self.smt_throughput, self.smt_throughput[1:])
        ):
            raise ValueError("smt_throughput must be non-decreasing")

    @property
    def n_contexts(self) -> int:
        return self.n_cores * self.threads_per_core

    def core_time(self, jobs: int) -> float:
        """Makespan of ``jobs`` equal bootstraps on one core.

        With ``j <= threads`` jobs they co-run at combined throughput
        ``smt_throughput[j-1]``; beyond that the OS time-slices fairly, so
        everything finishes at ``jobs / throughput(threads)`` bootstraps'
        worth of time.
        """
        if jobs < 0:
            raise ValueError("jobs must be non-negative")
        if jobs == 0:
            return 0.0
        busy = min(jobs, self.threads_per_core)
        return jobs * self.bootstrap_seconds / self.smt_throughput[busy - 1]

    def makespan(self, bootstraps: int) -> float:
        """Wall time for ``bootstraps`` independent bootstraps.

        Jobs are placed round-robin on cores and never migrate, so the
        makespan is the slowest core's completion time.
        """
        if bootstraps < 1:
            raise ValueError("need at least one bootstrap")
        per_core = [0] * self.n_cores
        for i in range(bootstraps):
            per_core[i % self.n_cores] += 1
        return max(self.core_time(j) for j in per_core)

    def sweep(self, bootstrap_counts: Sequence[int]) -> List[float]:
        return [self.makespan(b) for b in bootstrap_counts]
