"""The paper's comparison machines (Section 5.6), calibrated.

* **Intel Xeon** — two Hyper-Threaded Xeon processors at 2 GHz on a
  4-way SMP PowerEdge (the paper deliberately uses *two* processors,
  "stirring the comparison in favor of the Xeon").  HT delivers a modest
  ~1.25x throughput gain per core.
* **IBM Power5** — one dual-core, quad-thread 1.6 GHz Power5 with a large
  cache hierarchy (1.92 MB L2 + 36 MB L3), which suits RAxML's
  memory-intensive likelihood loops; SMT gain ~1.35x per core.

``bootstrap_seconds`` values are calibrated so the paper's two headline
comparisons hold: one Cell (MGPS) is ~4x faster than the dual Xeon and
5-10% faster than the Power5 once the workload reaches 8+ bootstraps
(Figure 10).
"""

from __future__ import annotations

from .base import SMTMultiprocessor

__all__ = ["XEON_2X_HT", "POWER5", "xeon", "power5"]

XEON_2X_HT = SMTMultiprocessor(
    name="Intel Xeon (2x, HT)",
    n_cores=2,
    threads_per_core=2,
    bootstrap_seconds=46.0,
    smt_throughput=(1.0, 1.25),
)

POWER5 = SMTMultiprocessor(
    name="IBM Power5",
    n_cores=2,
    threads_per_core=2,
    bootstrap_seconds=14.0,
    smt_throughput=(1.0, 1.35),
)


def xeon() -> SMTMultiprocessor:
    """The paper's dual Hyper-Threaded Xeon reference machine."""
    return XEON_2X_HT


def power5() -> SMTMultiprocessor:
    """The paper's IBM Power5 reference machine."""
    return POWER5
