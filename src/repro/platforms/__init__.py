"""Comparator processor models for the cross-platform evaluation."""

from .base import SMTMultiprocessor
from .machines import POWER5, XEON_2X_HT, power5, xeon

__all__ = ["SMTMultiprocessor", "XEON_2X_HT", "POWER5", "xeon", "power5"]
