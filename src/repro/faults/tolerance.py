"""Fault-tolerance policy: how the runtime responds to injected faults.

The policy is pure configuration; the mechanisms (retry loop, watchdog,
blacklist, PPE fallback, LLP mid-loop recovery) live in
:mod:`repro.core.runtime` and consult one :class:`TolerancePolicy`.

* **Retry with capped exponential backoff** — a failed off-load attempt
  (transient dispatch loss, exhausted DMA retries, SPE death, watchdog
  timeout) is retried after ``backoff(attempt)`` *simulated* seconds,
  doubling per attempt up to ``backoff_cap``.
* **Per-off-load watchdog** — each attempt gets a deadline of
  ``timeout_floor + timeout_factor x`` the task's expected SPE time;
  when it expires the dispatching process abandons the attempt (the SPE
  finishes and is reclaimed in the background) and retries or falls
  back.
* **PPE fallback** — after ``max_attempts`` failed attempts, or when no
  live SPE remains, the task executes its PPE version.  The application
  result is identical either way; only the timeline changes.
* **Blacklist** — an SPE that fails ``blacklist_after`` consecutive
  attempts is retired from the pool; schedulers (MGPS in particular)
  recompute their policy inputs from the surviving SPE set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["TolerancePolicy"]

US = 1e-6


@dataclass(frozen=True)
class TolerancePolicy:
    """Tunable constants of fault-tolerant off-loading."""

    max_attempts: int = 3          # SPE attempts before PPE fallback
    backoff_base: float = 20 * US  # first retry delay (simulated seconds)
    backoff_factor: float = 2.0
    backoff_cap: float = 5e-3
    timeout_factor: float = 8.0    # watchdog = floor + factor * expected
    timeout_floor: float = 500 * US
    blacklist_after: int = 3       # consecutive failures that retire an SPE
    max_dma_retries: int = 3       # absorbed DMA errors per transfer

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.timeout_factor <= 0 or self.timeout_floor < 0:
            raise ValueError("watchdog timeout must be positive")
        if self.blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1")
        if self.max_dma_retries < 0:
            raise ValueError("max_dma_retries must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Simulated delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** attempt)

    def attempt_deadline(self, expected: float) -> float:
        """Watchdog deadline for one attempt of an ``expected``-long task."""
        return self.timeout_floor + self.timeout_factor * max(0.0, expected)

    def with_(self, **kwargs: Any) -> "TolerancePolicy":
        return replace(self, **kwargs)
