"""Fault injection and fault-tolerant off-loading.

The paper's schedulers assume a perfect Cell; this package drops that
assumption.  A seeded :class:`FaultPlan` describes deterministic
perturbations (transient off-load failures, DMA errors, permanent SPE
death, slow SPEs), a :class:`FaultInjector` realizes the plan against
one simulated machine, and a :class:`TolerancePolicy` configures how
the runtimes absorb the damage (retry with capped exponential backoff,
per-off-load watchdog, SPE blacklist, PPE fallback, LLP mid-loop
recovery).

The headline invariant: under any plan that leaves at least one SPE or
the PPE alive, every run completes and produces application results
bit-identical to the fault-free run — only the timeline changes.
"""

from .injector import FaultInjector
from .plan import FaultPlan, SPEKill, SlowSPE
from .tolerance import TolerancePolicy

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "SPEKill",
    "SlowSPE",
    "TolerancePolicy",
]
