"""Deterministic fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a *declarative, seeded* description of the
perturbations one run should suffer:

* **transient off-load failures** — an off-load dispatch to an SPE is
  lost with probability ``offload_fail_rate`` per attempt (mailbox
  write dropped, SPE signal missed);
* **DMA errors** — each MFC transfer errors with probability
  ``dma_error_rate`` and must be re-issued, paying
  ``dma_retry_penalty`` times the transfer again per error;
* **permanent SPE death** — :class:`SPEKill` removes an SPE from
  service at an absolute simulated time;
* **slow SPEs** — :class:`SlowSPE` multiplies an SPE's service time by
  ``factor`` with optional per-task lognormal ``jitter``.

Plans carry their own ``seed``; every random decision is drawn from a
named :class:`~repro.sim.rng.RngStreams` substream keyed by fault kind
and SPE, so the same plan against the same workload produces the exact
same fault sequence — fault injection is replayable, diffable and
bisectable, never flaky.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Tuple

__all__ = ["SPEKill", "SlowSPE", "FaultPlan"]


@dataclass(frozen=True)
class SPEKill:
    """Permanent death of one SPE at an absolute simulated time."""

    spe: int      # flat index into CellMachine.spes
    time: float   # simulated seconds

    def __post_init__(self) -> None:
        if self.spe < 0:
            raise ValueError(f"spe index must be >= 0, got {self.spe}")
        if self.time < 0:
            raise ValueError(f"kill time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class SlowSPE:
    """Multiplicative service-time perturbation of one SPE."""

    spe: int
    factor: float       # mean slowdown (1.0 = nominal)
    jitter: float = 0.0  # sigma of per-task lognormal noise

    def __post_init__(self) -> None:
        if self.spe < 0:
            raise ValueError(f"spe index must be >= 0, got {self.spe}")
        if self.factor < 1.0:
            raise ValueError(f"slow factor must be >= 1.0, got {self.factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")


@dataclass(frozen=True)
class FaultPlan:
    """One run's complete, deterministic fault schedule."""

    seed: int = 0
    offload_fail_rate: float = 0.0
    dma_error_rate: float = 0.0
    dma_retry_penalty: float = 1.0
    spe_kills: Tuple[SPEKill, ...] = ()
    slow_spes: Tuple[SlowSPE, ...] = field(default=())

    def __post_init__(self) -> None:
        for name in ("offload_fail_rate", "dma_error_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.dma_retry_penalty < 0:
            raise ValueError("dma_retry_penalty must be >= 0")
        # Normalize list inputs so plans hash/compare by value.
        object.__setattr__(self, "spe_kills", tuple(self.spe_kills))
        object.__setattr__(self, "slow_spes", tuple(self.slow_spes))
        seen = set()
        for k in self.spe_kills:
            if k.spe in seen:
                raise ValueError(f"duplicate kill for SPE {k.spe}")
            seen.add(k.spe)

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.offload_fail_rate == 0.0
            and self.dma_error_rate == 0.0
            and not self.spe_kills
            and not self.slow_spes
        )

    def with_(self, **kwargs: Any) -> "FaultPlan":
        return replace(self, **kwargs)

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        known = {
            "seed", "offload_fail_rate", "dma_error_rate",
            "dma_retry_penalty", "spe_kills", "slow_spes",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan key {sorted(unknown)[0]!r}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        kills = tuple(
            SPEKill(**k) if isinstance(k, dict) else SPEKill(*k)
            for k in payload.get("spe_kills", ())
        )
        slows = tuple(
            SlowSPE(**s) if isinstance(s, dict) else SlowSPE(*s)
            for s in payload.get("slow_spes", ())
        )
        return cls(
            seed=int(payload.get("seed", 0)),
            offload_fail_rate=float(payload.get("offload_fail_rate", 0.0)),
            dma_error_rate=float(payload.get("dma_error_rate", 0.0)),
            dma_retry_penalty=float(payload.get("dma_retry_penalty", 1.0)),
            spe_kills=kills,
            slow_spes=slows,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
