"""The fault injector: realizes a :class:`~repro.faults.plan.FaultPlan`.

One injector is attached to a run (machine + environment).  It owns the
plan's named RNG substreams (one per fault kind per SPE, so changing how
one SPE consumes randomness never perturbs another), schedules the
permanent SPE kills as simulation processes, and answers the runtime's
point queries:

* :meth:`offload_fails` — does this dispatch attempt transiently fail?
* :meth:`dma_errors` — how many times does this transfer error?
* :meth:`service_factor` — this SPE's multiplicative slowdown for one task;
* :meth:`death_time` — when (if ever) this SPE permanently dies.

Every injected fault is counted in the metrics registry (``faults.*``)
and emitted on the trace under category ``"fault"`` so the health
monitor and the HTML report can see the storm.

Zero-rate queries consume **no** randomness, so a null plan draws
nothing and perturbs nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..cell.machine import CellMachine
from ..cell.spe import SPE
from ..obs.metrics import NULL_REGISTRY
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.rng import RngStreams
from ..sim.trace import Tracer
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic realization of one fault plan on one machine."""

    def __init__(
        self,
        env: Environment,
        machine: CellMachine,
        plan: FaultPlan,
        tracer: Optional[Tracer] = None,
        metrics: Optional[object] = None,
    ) -> None:
        self.env = env
        self.machine = machine
        self.plan = plan
        if tracer is None:
            tracer = getattr(env, "tracer", None)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if metrics is None:
            metrics = getattr(env, "metrics", None)
        m = metrics if metrics is not None else NULL_REGISTRY
        self._m_kills = m.counter("faults.spe_kills", "permanent SPE deaths")
        self._m_offload = m.counter(
            "faults.offload_failures", "injected transient off-load failures"
        )
        self._m_dma = m.counter("faults.dma_errors", "injected DMA errors")
        self._m_slow = m.counter(
            "faults.slow_tasks", "tasks perturbed by slow-SPE noise"
        )
        self._streams = RngStreams(plan.seed)
        self._listeners: List[Callable[[], None]] = []

        n = machine.n_spes
        for kill in plan.spe_kills:
            if kill.spe >= n:
                raise ValueError(
                    f"kill targets SPE {kill.spe} but the machine has only "
                    f"{n} SPEs"
                )
        for slow in plan.slow_spes:
            if slow.spe >= n:
                raise ValueError(
                    f"slow-SPE entry targets SPE {slow.spe} but the machine "
                    f"has only {n} SPEs"
                )
        self._death: Dict[str, float] = {
            machine.spes[k.spe].name: k.time for k in plan.spe_kills
        }
        self._slow: Dict[str, "SlowSPE"] = {
            machine.spes[s.spe].name: s for s in plan.slow_spes
        }
        self.kills_delivered = 0

    # -- wiring -------------------------------------------------------------
    def add_listener(self, fn: Callable[[], None]) -> None:
        """Register a callback fired after every capacity change (kill)."""
        self._listeners.append(fn)

    def install(self) -> None:
        """Schedule the plan's permanent kills on the simulation calendar."""
        for kill in self.plan.spe_kills:
            spe = self.machine.spes[kill.spe]
            self.env.process(
                self._kill_at(spe, kill.time), name=f"fault.kill.{spe.name}"
            )

    def _kill_at(self, spe: SPE, time: float) -> Generator[Event, None, None]:
        if time > 0:
            yield self.env.timeout(time)
        self.kill_now(spe)

    def kill_now(self, spe: SPE) -> None:
        """Take ``spe`` permanently out of service at the current time."""
        if not spe.alive:
            return
        spe.alive = False
        spe.fail_time = self.env.now
        self.machine.pool.mark_out_of_service(spe)
        self.kills_delivered += 1
        self._m_kills.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "fault", spe.name, "spe_kill",
                was_busy=spe.busy, live_spes=self.machine.pool.n_live,
            )
        for fn in self._listeners:
            fn()

    # -- point queries (runtime-facing) ------------------------------------
    def death_time(self, spe: SPE) -> float:
        """Absolute time ``spe`` permanently dies (inf = never)."""
        return self._death.get(spe.name, float("inf"))

    def offload_fails(self, spe: SPE) -> bool:
        """Draw: does this dispatch attempt to ``spe`` transiently fail?"""
        rate = self.plan.offload_fail_rate
        if rate <= 0.0:
            return False
        hit = bool(
            self._streams.stream(f"offload.{spe.name}").random() < rate
        )
        if hit:
            self._m_offload.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now, "fault", spe.name, "offload_fail"
                )
        return hit

    def dma_errors(self, spe: SPE, max_retries: int) -> int:
        """Draw how often one transfer to ``spe`` errors.

        Returns the number of errors, at most ``max_retries + 1``; a
        value above ``max_retries`` means the transfer is abandoned.
        """
        rate = self.plan.dma_error_rate
        if rate <= 0.0:
            return 0
        stream = self._streams.stream(f"dma.{spe.name}")
        errors = 0
        while errors <= max_retries and stream.random() < rate:
            errors += 1
        if errors:
            self._m_dma.inc(errors)
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now, "fault", spe.name, "dma_error",
                    errors=errors, abandoned=errors > max_retries,
                )
        return errors

    def service_factor(self, spe: SPE) -> float:
        """Multiplicative service-time factor for one task on ``spe``."""
        slow = self._slow.get(spe.name)
        if slow is None:
            return 1.0
        factor = slow.factor
        if slow.jitter > 0.0:
            import math
            z = self._streams.stream(f"slow.{spe.name}").standard_normal()
            factor *= math.exp(slow.jitter * float(z))
        self._m_slow.inc()
        return factor
