"""Command-line interface: ``python -m repro <command>``.

Regenerates any of the paper's tables/figures, runs a quick scheduler
comparison, or draws a schedule timeline — without writing a script.

Examples::

    python -m repro table1
    python -m repro fig8 --panel b
    python -m repro compare --bootstraps 12 --tasks 300
    python -m repro timeline --scheduler mgps --bootstraps 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    SWEEP_LARGE,
    SWEEP_SMALL,
    fig10_sweep,
    figure_sweep,
    sec51_offload_experiment,
    table1_experiment,
    table2_experiment,
)
from .analysis.timeline import render_timeline, utilization_bar
from .core.runner import run_experiment
from .core.schedulers import edtlp, linux, mgps, static_hybrid
from .sim.trace import Tracer
from .workloads.traces import Workload

__all__ = ["main", "build_parser"]

_SCHEDULERS = {
    "linux": linux,
    "edtlp": edtlp,
    "mgps": mgps,
    "llp2": lambda: static_hybrid(2),
    "llp4": lambda: static_hybrid(4),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Dynamic Multigrain Parallelization on the Cell "
            "Broadband Engine' (PPoPP 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sec51", help="Section 5.1 off-load optimization")
    p.add_argument("--tasks", type=int, default=500)

    p = sub.add_parser("table1", help="Table 1: EDTLP vs Linux")
    p.add_argument("--tasks", type=int, default=400)

    p = sub.add_parser("table2", help="Table 2: LLP scaling")
    p.add_argument("--tasks", type=int, default=400)

    for fig in ("fig7", "fig8", "fig9"):
        p = sub.add_parser(fig, help=f"{fig}: scheduler sweep")
        p.add_argument("--panel", choices=["a", "b"], default="a")
        p.add_argument("--tasks", type=int, default=None)

    p = sub.add_parser("fig10", help="Figure 10: Cell vs Xeon vs Power5")
    p.add_argument("--panel", choices=["a", "b"], default="a")
    p.add_argument("--tasks", type=int, default=None)

    p = sub.add_parser("compare", help="compare all schedulers on one workload")
    p.add_argument("--bootstraps", type=int, default=8)
    p.add_argument("--tasks", type=int, default=300)
    p.add_argument("--cells", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("bsp", help="MGPS vs EDTLP on an imbalanced BSP workload")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--imbalance", type=float, default=2.0)

    p = sub.add_parser("timeline", help="draw an SPE schedule timeline")
    p.add_argument("--scheduler", choices=sorted(_SCHEDULERS), default="mgps")
    p.add_argument("--bootstraps", type=int, default=4)
    p.add_argument("--tasks", type=int, default=250)
    p.add_argument("--width", type=int, default=72)

    return parser


def _panel_counts(panel: str):
    return SWEEP_SMALL if panel == "a" else SWEEP_LARGE


def _panel_tasks(panel: str, override: Optional[int]) -> int:
    if override is not None:
        return override
    return 300 if panel == "a" else 150


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "sec51":
        print(sec51_offload_experiment(tasks_per_bootstrap=args.tasks).render())
    elif args.command == "table1":
        print(table1_experiment(tasks_per_bootstrap=args.tasks).render())
    elif args.command == "table2":
        print(table2_experiment(tasks_per_bootstrap=args.tasks).render())
    elif args.command in ("fig7", "fig8", "fig9"):
        schedulers = None
        if args.command == "fig7":
            schedulers = {
                "EDTLP-LLP2": static_hybrid(2),
                "EDTLP-LLP4": static_hybrid(4),
                "EDTLP": edtlp(),
            }
        n_cells = 2 if args.command == "fig9" else 1
        result = figure_sweep(
            _panel_counts(args.panel),
            schedulers=schedulers,
            tasks_per_bootstrap=_panel_tasks(args.panel, args.tasks),
            n_cells=n_cells,
            name=f"Figure {args.command[3:]}{args.panel} "
            f"({'two Cells' if n_cells == 2 else 'one Cell'}, seconds)",
        )
        print(result.render())
    elif args.command == "fig10":
        result = fig10_sweep(
            _panel_counts(args.panel),
            tasks_per_bootstrap=_panel_tasks(args.panel, args.tasks),
        )
        print(result.render())
    elif args.command == "compare":
        from .cell.params import BladeParams
        from .analysis.report import format_table

        wl = Workload(bootstraps=args.bootstraps,
                      tasks_per_bootstrap=args.tasks, seed=args.seed)
        blade = BladeParams(n_cells=args.cells)
        rows = []
        for name, factory in _SCHEDULERS.items():
            r = run_experiment(factory(), wl, blade=blade, seed=args.seed)
            rows.append([name, r.makespan, f"{r.spe_utilization:.0%}",
                         r.llp_invocations, r.ppe_fallbacks])
        print(format_table(
            ["scheduler", "makespan [s]", "SPE util", "LLP", "fallbacks"],
            rows,
            title=f"{args.bootstraps} bootstraps on {args.cells} Cell(s)",
        ))
    elif args.command == "bsp":
        from .analysis.report import format_table
        from .core.runner import run_bsp_experiment
        from .workloads.coupled import BSPWorkload

        wl = BSPWorkload(
            n_processes=args.ranks, iterations=args.iterations,
            imbalance=args.imbalance,
        )
        rows = []
        for name, factory in (("edtlp", edtlp), ("mgps", mgps)):
            r = run_bsp_experiment(factory(), wl)
            rows.append([name, r.makespan * 1e3,
                         f"{r.spe_utilization:.0%}", r.llp_invocations])
        print(format_table(
            ["scheduler", "makespan [ms]", "SPE util", "LLP"],
            rows,
            title=f"BSP: {args.ranks} ranks, {args.iterations} barriers, "
                  f"straggler {1 + args.imbalance:.0f}x",
        ))
    elif args.command == "timeline":
        tracer = Tracer(enabled=True)
        wl = Workload(bootstraps=args.bootstraps,
                      tasks_per_bootstrap=args.tasks)
        result = run_experiment(
            _SCHEDULERS[args.scheduler](), wl, tracer=tracer
        )
        window = result.raw_makespan * 0.02
        print(f"{args.scheduler}: makespan {result.makespan:.1f} s, "
              f"SPE utilization {result.spe_utilization:.0%}")
        print(render_timeline(tracer, width=args.width, t_start=window,
                              t_end=2 * window))
        print()
        print(utilization_bar(tracer, result.raw_makespan))
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
