"""Command-line interface: ``python -m repro <command>``.

Regenerates any of the paper's tables/figures, runs a quick scheduler
comparison, draws a schedule timeline, or records an observability
artifact — without writing a script.

Examples::

    python -m repro table1
    python -m repro fig8 --panel b
    python -m repro compare --bootstraps 12 --tasks 300
    python -m repro timeline --scheduler mgps --bootstraps 4
    python -m repro run mgps --llp-schedule guided    # pick a loop schedule
    python -m repro schedulers                        # list policies/schedules
    python -m repro trace fig8 --out trace.json   # open in ui.perfetto.dev
    python -m repro stats fig8                    # scheduler metrics snapshot
    python -m repro stats fig8 --fail-on 'spe_idle_ratio>0.25'
    python -m repro health fig8                   # rule-based run diagnosis
    python -m repro report fig8 --out report.html # self-contained HTML report
    python -m repro bench --check                 # baseline regression gate
    python -m repro faults mgps --spe-kill 2:2e-4 --dma-error-rate 0.02
    python -m repro serve --autoscale --json      # multi-tenant serving run
    python -m repro serve --dispatch work-stealing --kill-blade 1:600

Every scenario subcommand also accepts ``--trace PATH`` to write a
Chrome/Perfetto trace alongside its normal output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from .analysis import (
    SWEEP_LARGE,
    SWEEP_SMALL,
    fig10_sweep,
    figure_sweep,
    render_scheduler_summary,
    sec51_offload_experiment,
    table1_experiment,
    table2_experiment,
)
from .analysis.timeline import render_timeline, utilization_bar
from .core.llp import LLPConfig, available_loop_schedules
from .core.runner import run_experiment
from .core.schedulers import SchedulerSpec, edtlp, linux, mgps, static_hybrid
from .obs import MetricsRegistry, write_chrome_trace, write_trace_jsonl
from .sim.trace import Tracer
from .workloads.traces import Workload

__all__ = ["main", "build_parser"]

_SCHEDULERS = {
    "linux": linux,
    "edtlp": edtlp,
    "mgps": mgps,
    "llp2": lambda: static_hybrid(2),
    "llp4": lambda: static_hybrid(4),
}

# Representative single run per scenario for tracing/stats: the paper's
# headline scheduler for that table/figure, on one blade unless the
# scenario is explicitly dual-Cell.
_SCENARIO_SPECS: Dict[str, Tuple[object, int]] = {
    "sec51": (edtlp, 1),
    "table1": (edtlp, 1),
    "table2": (lambda: static_hybrid(4), 1),
    "fig7": (lambda: static_hybrid(2), 1),
    "fig8": (mgps, 1),
    "fig9": (mgps, 2),
    "fig10": (mgps, 1),
    "compare": (mgps, 1),
    "timeline": (mgps, 1),
    "bsp": (mgps, 1),
}
# "serve" is observable too, but runs through the serving layer rather
# than one run_experiment call — see _run_observed.
_OBSERVABLE = sorted(set(_SCENARIO_SPECS) | set(_SCHEDULERS) | {"serve"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Dynamic Multigrain Parallelization on the Cell "
            "Broadband Engine' (PPoPP 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="also write a Chrome/Perfetto trace of a representative "
                 "run of this scenario (open at ui.perfetto.dev)",
        )

    def add_llp_schedule_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--llp-schedule", metavar="NAME", default=None,
            choices=[s.name for s in available_loop_schedules()],
            help="loop schedule for parallelized loops: "
                 + ", ".join(s.name for s in available_loop_schedules())
                 + " (default: static, the paper's single split)",
        )

    p = sub.add_parser("sec51", help="Section 5.1 off-load optimization")
    p.add_argument("--tasks", type=int, default=500)
    add_trace_flag(p)

    p = sub.add_parser("table1", help="Table 1: EDTLP vs Linux")
    p.add_argument("--tasks", type=int, default=400)
    add_trace_flag(p)

    p = sub.add_parser("table2", help="Table 2: LLP scaling")
    p.add_argument("--tasks", type=int, default=400)
    add_trace_flag(p)

    for fig in ("fig7", "fig8", "fig9"):
        p = sub.add_parser(fig, help=f"{fig}: scheduler sweep")
        p.add_argument("--panel", choices=["a", "b"], default="a")
        p.add_argument("--tasks", type=int, default=None)
        add_trace_flag(p)

    p = sub.add_parser("fig10", help="Figure 10: Cell vs Xeon vs Power5")
    p.add_argument("--panel", choices=["a", "b"], default="a")
    p.add_argument("--tasks", type=int, default=None)
    add_trace_flag(p)

    p = sub.add_parser("compare", help="compare all schedulers on one workload")
    p.add_argument("--bootstraps", type=int, default=8)
    p.add_argument("--tasks", type=int, default=300)
    p.add_argument("--cells", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)
    add_trace_flag(p)

    p = sub.add_parser("bsp", help="MGPS vs EDTLP on an imbalanced BSP workload")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--imbalance", type=float, default=2.0)
    add_trace_flag(p)

    p = sub.add_parser("timeline", help="draw an SPE schedule timeline")
    p.add_argument("--scheduler", choices=sorted(_SCHEDULERS), default="mgps")
    p.add_argument("--bootstraps", type=int, default=4)
    p.add_argument("--tasks", type=int, default=250)
    p.add_argument("--width", type=int, default=72)
    add_llp_schedule_flag(p)
    add_trace_flag(p)

    p = sub.add_parser(
        "run",
        help="run one scenario/scheduler once and print the result summary",
        description=(
            "One representative simulation of the named scenario (or "
            "scheduler) with tracing and metrics attached — the quickest "
            "way to try a policy/loop-schedule combination.  Prints the "
            "makespan, SPE utilization and per-schedule LLP invocation "
            "counts observed in the trace."
        ),
    )
    p.add_argument("scenario", nargs="?", choices=_OBSERVABLE, default="mgps")
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)
    add_trace_flag(p)

    sub.add_parser(
        "schedulers",
        help="list registered scheduling policies and loop schedules",
        description=(
            "Print every scheduling policy in the registry (selectable "
            "as SchedulerSpec kind) with its description and spec knobs, "
            "and every loop schedule selectable via LLPConfig.schedule / "
            "--llp-schedule."
        ),
    )

    p = sub.add_parser(
        "trace",
        help="record a Chrome/Perfetto trace of one scenario run",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler) with full tracing and write Chrome trace-event "
            "JSON, loadable at ui.perfetto.dev or chrome://tracing."
        ),
    )
    p.add_argument("scenario", choices=_OBSERVABLE)
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output path for the trace-event JSON")
    p.add_argument("--jsonl", metavar="PATH", default=None,
                   help="also dump raw trace records as JSON Lines")
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)

    p = sub.add_parser(
        "stats",
        help="print the scheduler metrics snapshot for one scenario run",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler) with the metrics registry attached and print the "
            "decision metrics: MGPS window utilization U, context "
            "switches, granularity accept/reject, LLP chunk sizes, "
            "off-load latencies."
        ),
    )
    p.add_argument("scenario", choices=_OBSERVABLE)
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)
    p.add_argument("--json", action="store_true",
                   help="emit the registry snapshot as JSON instead of text")
    p.add_argument(
        "--fail-on", metavar="EXPR", action="append", default=[],
        help="exit non-zero if a summary metric violates EXPR, e.g. "
             "'spe_idle_ratio>0.25' or 'runtime.offload_waits>0'; "
             "repeatable",
    )

    p = sub.add_parser(
        "health",
        help="diagnose one scenario run with the rule-based health monitor",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler), feed its trace and metrics to the health "
            "monitor's detectors (SPE starvation, MGPS oscillation, "
            "window-U saturation, LLP imbalance, granularity churn) and "
            "print the findings.  Exits non-zero if any finding fires."
        ),
    )
    p.add_argument("scenario", choices=_OBSERVABLE)
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)
    p.add_argument("--json", action="store_true",
                   help="emit findings as a JSON array instead of text")

    p = sub.add_parser(
        "report",
        help="write a self-contained HTML performance report for one run",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler) and render a single self-contained HTML file — "
            "SPE Gantt lanes, the MGPS window-U series, off-load latency "
            "histogram, LLP adaptation curve and the health monitor's "
            "findings.  Inline CSS/SVG only; opens offline."
        ),
    )
    p.add_argument("scenario", choices=_OBSERVABLE)
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output path for the HTML report")
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)

    p = sub.add_parser(
        "explain",
        help="per-job critical-path latency attribution for one run",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler), rebuild causal span trees from its trace and "
            "print critical paths.  Serving runs get per-job phase "
            "breakdowns (admission wait, blade queue, dispatch overhead, "
            "service, failover requeues) whose durations sum to the "
            "job's sojourn time, plus aggregate per-tenant shares; core "
            "scenarios get the slowest off-load trees (retry attempts, "
            "backoff waits, PPE fallback, LLP chunk fan-out)."
        ),
    )
    p.add_argument("scenario", nargs="?", choices=_OBSERVABLE,
                   default="serve")
    p.add_argument("--job", type=int, default=None, metavar="ID",
                   help="explain a single job by id (serve scenario)")
    p.add_argument("--tenant", default=None, metavar="NAME",
                   help="restrict per-job output to one tenant")
    p.add_argument("--top", type=int, default=5,
                   help="slowest jobs / off-loads to show (default 5)")
    p.add_argument("--json", action="store_true",
                   help="emit trees and breakdown as JSON instead of text")
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)

    p = sub.add_parser(
        "profile",
        help="wall-clock profile of one scenario run",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler) with the wall-clock profiler attached and print "
            "per-section exclusive/inclusive times, call counts, per-call "
            "p50/p95 and kernel events per wall-second.  The section "
            "tree and all counts are deterministic; only wall times vary "
            "between runs."
        ),
    )
    p.add_argument("--scenario", choices=_OBSERVABLE, default="fig8")
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)
    p.add_argument("--sort", choices=("self", "total", "calls"),
                   default="self",
                   help="section ordering in the text table (default: "
                        "exclusive time)")
    p.add_argument("--top", type=int, default=20,
                   help="sections shown in the text table (default 20)")
    p.add_argument("--json", action="store_true",
                   help="emit the full profile report as JSON instead of "
                        "text")
    p.add_argument("--perfetto", metavar="PATH", default=None,
                   help="write a Chrome trace combining the run's "
                        "sim-time records with wall-clock profile spans")

    p = sub.add_parser(
        "faults",
        help="run one scenario under an injected fault plan",
        description=(
            "Run one representative simulation of the named scenario (or "
            "scheduler) twice — fault-free, then under the given fault "
            "plan — and report the recovery actions (retries, PPE "
            "fallbacks, blacklists, loop recoveries) plus the headline "
            "invariant: the application results must be bit-identical; "
            "only the timeline may change.  Exits non-zero if the result "
            "digests diverge."
        ),
    )
    # Node-level serving faults have their own flag: repro serve --kill-blade.
    p.add_argument("scenario",
                   choices=[s for s in _OBSERVABLE if s != "serve"])
    p.add_argument("--bootstraps", type=int, default=3)
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_llp_schedule_flag(p)
    p.add_argument("--plan", metavar="PATH", default=None,
                   help="JSON fault plan (see FaultPlan.to_json); flags "
                        "below override/extend the file's plan")
    p.add_argument("--fault-seed", type=int, default=None, metavar="N",
                   help="seed for the fault RNG streams (default 0)")
    p.add_argument("--offload-fail-rate", type=float, default=None,
                   metavar="P", help="transient off-load failure probability")
    p.add_argument("--dma-error-rate", type=float, default=None, metavar="P",
                   help="per-DMA-transfer error probability")
    p.add_argument("--spe-kill", action="append", default=[],
                   metavar="SPE:TIME",
                   help="kill SPE index at simulated time (seconds); "
                        "repeatable, e.g. --spe-kill 2:2e-4")
    p.add_argument("--slow-spe", action="append", default=[],
                   metavar="SPE:FACTOR",
                   help="degrade SPE index by a service-time factor; "
                        "repeatable, e.g. --slow-spe 5:2.0")
    p.add_argument("--json", action="store_true",
                   help="emit the comparison as JSON instead of text")
    add_trace_flag(p)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant online serving simulation",
        description=(
            "Stream jobs from a mixed tenant population (open-loop "
            "Poisson, closed-loop think-time, bursty) at a fleet of "
            "simulated Cell blades through admission control, a dispatch "
            "policy and (optionally) the MGPS-style fleet autoscaler, "
            "then print the SLO ledger: per-tenant tail latency, "
            "goodput, rejection and deadline-miss accounting.  "
            "Deterministic: the same seed reproduces the run byte for "
            "byte, including --json output."
        ),
    )
    from .serve.dispatch import available_dispatch_policies
    from .serve.fleet import available_blade_schedulers

    p.add_argument("--duration", type=float, default=3600.0, metavar="S",
                   help="arrival horizon in simulated seconds; the run "
                        "drains after (default 3600)")
    p.add_argument("--arrival-rate", type=float, default=0.02, metavar="R",
                   help="open-loop tenant arrival rate [jobs/s] "
                        "(default 0.02)")
    p.add_argument("--tenants", type=int, default=3, choices=(1, 2, 3),
                   help="tenant mix size: 1 = open-loop only, 2 = + "
                        "closed-loop, 3 = + bursty (default 3)")
    p.add_argument("--dispatch", default="static-block",
                   choices=[i.name for i in available_dispatch_policies()],
                   help="blade-selection policy (default static-block)")
    p.add_argument("--scheduler", default="mgps",
                   choices=available_blade_schedulers(),
                   help="blade-level scheduler for each job bag "
                        "(default mgps)")
    p.add_argument("--autoscale", action="store_true",
                   help="enable the utilization-feedback fleet autoscaler "
                        "(start at --min-blades instead of --max-blades)")
    p.add_argument("--min-blades", type=int, default=2)
    p.add_argument("--max-blades", type=int, default=4)
    p.add_argument("--queue-capacity", type=int, default=64, metavar="N",
                   help="admission bound on jobs in the system "
                        "(default 64)")
    p.add_argument("--batch-max", type=int, default=1, metavar="N",
                   help="max same-template jobs fused per dispatch "
                        "(default 1 = no batching)")
    p.add_argument("--kill-blade", action="append", default=[],
                   metavar="BLADE:TIME",
                   help="kill blade index at simulated time (seconds); "
                        "queued and running jobs fail over, repeatable")
    p.add_argument("--slow-blade", action="append", default=[],
                   metavar="BLADE:TIME:FACTOR[:DURATION]",
                   help="multiply blade service times by FACTOR from TIME "
                        "(optionally recovering after DURATION seconds); "
                        "repeatable")
    p.add_argument("--flap-blade", action="append", default=[],
                   metavar="BLADE:TIME:DOWN",
                   help="crash the blade at TIME and rejoin it DOWN "
                        "seconds later (on breaker probation); repeatable")
    p.add_argument("--degrade-blade", action="append", default=[],
                   metavar="BLADE:TIME:LATENCY[:DURATION]",
                   help="add LATENCY seconds of front-end->blade dispatch "
                        "latency from TIME (optionally recovering after "
                        "DURATION); repeatable")
    p.add_argument("--fault-plan", metavar="PATH", default=None,
                   help="load a FleetFaultPlan JSON file; per-fault flags "
                        "are appended on top of it")
    p.add_argument("--resilience", action="store_true",
                   help="enable hedged dispatch and the per-blade circuit "
                        "breaker")
    p.add_argument("--enforce-deadlines", action="store_true",
                   help="shed jobs whose deadline became unreachable "
                        "instead of finishing them late")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the full deterministic run record as JSON")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the self-contained HTML report "
                        "(includes the serving lane)")
    add_trace_flag(p)

    p = sub.add_parser(
        "dag",
        help="run staged workflow pipelines over the serving fleet",
        description=(
            "Submit multi-stage workflows (check MSA -> infer ML -> "
            "bootstrap fan-out -> consensus) through the workflow DAG "
            "engine: stages dispatch as their dependencies resolve, the "
            "bootstrap stage fans out into per-replicate sibling jobs, "
            "an autoMRE-style convergence monitor (--bootstop) cancels "
            "the redundant tail of the fan-out, and completed stages are "
            "content-addressed into a fleet-wide result cache so repeat "
            "submissions short-circuit to cache hits.  Deterministic per "
            "seed; prints the workflow ledger with exact job "
            "conservation (admitted = completed + cancelled + aborted + "
            "lost)."
        ),
    )
    p.add_argument("--workflow", default="raxml", choices=("raxml",),
                   help="pipeline shape (default raxml: check-msa -> "
                        "infer-ml -> bootstrap -> consensus)")
    p.add_argument("--replicates", type=int, default=100, metavar="N",
                   help="bootstrap fan-out width (default 100)")
    p.add_argument("--submissions", type=int, default=1, metavar="N",
                   help="identical workflow submissions, chained back to "
                        "back (default 1; 2+ exercises the stage cache)")
    p.add_argument("--conflict", type=float, default=0.15, metavar="F",
                   help="replicate disagreement probability in [0, 1]: "
                        "small = converging supports, 1.0 = diverging "
                        "(default 0.15)")
    p.add_argument("--bootstop", action="store_true",
                   help="enable the autoMRE-style convergence monitor "
                        "that cancels the redundant bootstrap tail")
    p.add_argument("--cache", default="on", choices=("on", "off"),
                   help="digest-keyed stage result cache (default on)")
    p.add_argument("--blades", type=int, default=2,
                   help="fleet size (default 2)")
    p.add_argument("--dispatch", default="least-loaded",
                   choices=[i.name for i in available_dispatch_policies()],
                   help="blade-selection policy (default least-loaded)")
    p.add_argument("--scheduler", default="mgps",
                   choices=available_blade_schedulers(),
                   help="blade-level scheduler (default mgps)")
    p.add_argument("--kill-blade", action="append", default=[],
                   metavar="BLADE:TIME",
                   help="kill blade index at simulated time (seconds) "
                        "during the run; repeatable")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the full deterministic run record as JSON")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the self-contained HTML report "
                        "(includes the workflow lane)")
    add_trace_flag(p)

    p = sub.add_parser(
        "chaos",
        help="seeded chaos soak over randomized fleet fault plans",
        description=(
            "Draw a batch of seeded randomized FleetFaultPlans (blade "
            "kills, flaps, slowdowns, link degradation), run the same "
            "open-loop serving workload under each with hedging and the "
            "circuit breaker enabled, and assert the resilience "
            "invariants: zero lost jobs, per-job digests bit-identical "
            "to the fault-free run, bounded p99 inflation and a legal "
            "breaker state machine.  Exits non-zero when any invariant "
            "fails, or (with --check) when the soak never exercised a "
            "hedge or a full breaker recovery cycle."
        ),
    )
    from .serve.chaos import CHAOS_MIXES

    p.add_argument("--plans", type=int, default=20, metavar="N",
                   help="randomized fault plans to draw (default 20)")
    p.add_argument("--seed", type=int, default=0,
                   help="root seed; plan k derives from (seed, k)")
    p.add_argument("--mix", default="storm", choices=CHAOS_MIXES,
                   help="fault mix: storm = crashes + stragglers, "
                        "stragglers = timing faults only (default storm)")
    p.add_argument("--duration", type=float, default=2400.0, metavar="S",
                   help="arrival horizon per run in simulated seconds "
                        "(default 2400)")
    p.add_argument("--arrival-rate", type=float, default=0.05, metavar="R",
                   help="open-loop arrival rate [jobs/s] (default 0.05)")
    p.add_argument("--blades", type=int, default=4,
                   help="fleet size (default 4; storm needs >= 3)")
    p.add_argument("--dispatch", default="least-loaded",
                   choices=[i.name for i in available_dispatch_policies()],
                   help="blade-selection policy (default least-loaded)")
    p.add_argument("--check", action="store_true",
                   help="also require mechanism liveness: >= 1 hedge and "
                        ">= 1 completed breaker recovery cycle")
    p.add_argument("--json", action="store_true",
                   help="emit the full soak report as JSON")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the HTML report of the first failing plan "
                        "(or the last plan when all pass)")

    p = sub.add_parser(
        "bench",
        help="run the tracked scheduler benchmark ladder",
        description=(
            "Measure the four headline schedulers on the tracked "
            "Figure-8-style workload, plus the fault-handling overhead "
            "scenarios and the serving-layer SLO grid.  --check diffs "
            "the measurement against the committed BENCH_*.json "
            "baselines (the regression gate); --write refreshes "
            "BENCH_core.json, BENCH_faults.json, BENCH_serve.json, "
            "BENCH_dag.json and BENCH_perf.json.  Wall-clock fields are "
            "informational only, "
            "except the BENCH_perf.json *_per_sec_wall rates which are "
            "enforced as one-sided floors (see --perf-tolerance)."
        ),
    )
    p.add_argument("--check", action="store_true",
                   help="diff against committed baselines; exit non-zero "
                        "on drift")
    p.add_argument("--write", action="store_true",
                   help="rewrite BENCH_core.json, BENCH_faults.json, "
                        "BENCH_serve.json and BENCH_perf.json at the "
                        "repo root (ratchets the throughput floor)")
    p.add_argument("--perf-tolerance", type=float, default=None,
                   metavar="FRAC",
                   help="allowed fractional throughput regression before "
                        "--check fails (default 0.30; also settable via "
                        "REPRO_PERF_TOLERANCE)")
    p.add_argument("--only", metavar="SECTION", action="append",
                   choices=("core", "faults", "serve", "dag", "perf"),
                   default=None,
                   help="measure (and with --write, re-record) only the "
                        "named baseline section instead of all of them; "
                        "repeatable.  Not combinable with --check, which "
                        "always validates every baseline.")

    return parser


def _panel_counts(panel: str):
    return SWEEP_SMALL if panel == "a" else SWEEP_LARGE


def _panel_tasks(panel: str, override: Optional[int]) -> int:
    if override is not None:
        return override
    return 300 if panel == "a" else 150


def _scenario_spec(scenario: str) -> Tuple[SchedulerSpec, int]:
    """(spec, n_cells) of the representative run for ``scenario``."""
    if scenario in _SCHEDULERS:
        return _SCHEDULERS[scenario](), 1
    factory, n_cells = _SCENARIO_SPECS[scenario]
    return factory(), n_cells


def _apply_llp_schedule(
    spec: SchedulerSpec, schedule: Optional[str]
) -> SchedulerSpec:
    """Select a loop schedule on ``spec`` (None keeps the spec's own)."""
    if not schedule:
        return spec
    from dataclasses import replace

    cfg = spec.llp_config or LLPConfig()
    return spec.with_(llp_config=replace(cfg, schedule=schedule))


def _run_observed(
    scenario: str, bootstraps: int, tasks: int, seed: int = 0,
    llp_schedule: Optional[str] = None, profiler=None,
):
    """One representative run of ``scenario`` with tracer + metrics on."""
    from .cell.params import BladeParams

    if scenario == "serve":
        # The serving layer has its own workload model; bootstraps/tasks
        # and --llp-schedule don't apply to the representative run.
        from types import SimpleNamespace

        from .serve import ServeConfig, default_tenants, run_service

        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        cfg = ServeConfig(tenants=default_tenants(), seed=seed)
        res = run_service(cfg, tracer=tracer, metrics=metrics,
                          profiler=profiler)
        util = (sum(b["utilization"] for b in res.per_blade)
                / max(1, len(res.per_blade)))
        shim = SimpleNamespace(
            scheduler=f"{cfg.scheduler} (serving, {cfg.dispatch})",
            makespan=res.makespan,
            spe_utilization=util,
            offloads=res.summary["completed"],
            ppe_fallbacks=0,
            llp_invocations=0,
        )
        return tracer, metrics, shim

    spec, n_cells = _scenario_spec(scenario)
    spec = _apply_llp_schedule(spec, llp_schedule)
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry()
    wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed)
    result = run_experiment(
        spec, wl, blade=BladeParams(n_cells=n_cells),
        seed=seed, tracer=tracer, metrics=metrics, profiler=profiler,
    )
    return tracer, metrics, result


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Tracers to export for --trace, keyed by run name (one Perfetto
    # process per entry).  Filled by commands that trace their own runs;
    # anything else gets a representative traced run at the end.
    own_traces: Dict[str, Tracer] = {}

    if args.command == "sec51":
        print(sec51_offload_experiment(tasks_per_bootstrap=args.tasks).render())
    elif args.command == "table1":
        print(table1_experiment(tasks_per_bootstrap=args.tasks).render())
    elif args.command == "table2":
        print(table2_experiment(tasks_per_bootstrap=args.tasks).render())
    elif args.command in ("fig7", "fig8", "fig9"):
        schedulers = None
        if args.command == "fig7":
            schedulers = {
                "EDTLP-LLP2": static_hybrid(2),
                "EDTLP-LLP4": static_hybrid(4),
                "EDTLP": edtlp(),
            }
        n_cells = 2 if args.command == "fig9" else 1
        result = figure_sweep(
            _panel_counts(args.panel),
            schedulers=schedulers,
            tasks_per_bootstrap=_panel_tasks(args.panel, args.tasks),
            n_cells=n_cells,
            name=f"Figure {args.command[3:]}{args.panel} "
            f"({'two Cells' if n_cells == 2 else 'one Cell'}, seconds)",
        )
        print(result.render())
    elif args.command == "fig10":
        result = fig10_sweep(
            _panel_counts(args.panel),
            tasks_per_bootstrap=_panel_tasks(args.panel, args.tasks),
        )
        print(result.render())
    elif args.command == "compare":
        from .cell.params import BladeParams
        from .analysis.report import format_table

        wl = Workload(bootstraps=args.bootstraps,
                      tasks_per_bootstrap=args.tasks, seed=args.seed)
        blade = BladeParams(n_cells=args.cells)
        rows = []
        for name, factory in _SCHEDULERS.items():
            tracer = Tracer(enabled=True) if args.trace else None
            spec = _apply_llp_schedule(factory(), args.llp_schedule)
            r = run_experiment(spec, wl, blade=blade, seed=args.seed,
                               tracer=tracer)
            if tracer is not None:
                own_traces[name] = tracer
            rows.append([name, r.makespan, f"{r.spe_utilization:.0%}",
                         r.llp_invocations, r.ppe_fallbacks])
        print(format_table(
            ["scheduler", "makespan [s]", "SPE util", "LLP", "fallbacks"],
            rows,
            title=f"{args.bootstraps} bootstraps on {args.cells} Cell(s)",
        ))
    elif args.command == "bsp":
        from .analysis.report import format_table
        from .core.runner import run_bsp_experiment
        from .workloads.coupled import BSPWorkload

        wl = BSPWorkload(
            n_processes=args.ranks, iterations=args.iterations,
            imbalance=args.imbalance,
        )
        rows = []
        for name, factory in (("edtlp", edtlp), ("mgps", mgps)):
            tracer = Tracer(enabled=True) if args.trace else None
            r = run_bsp_experiment(factory(), wl, tracer=tracer)
            if tracer is not None:
                own_traces[name] = tracer
            rows.append([name, r.makespan * 1e3,
                         f"{r.spe_utilization:.0%}", r.llp_invocations])
        print(format_table(
            ["scheduler", "makespan [ms]", "SPE util", "LLP"],
            rows,
            title=f"BSP: {args.ranks} ranks, {args.iterations} barriers, "
                  f"straggler {1 + args.imbalance:.0f}x",
        ))
    elif args.command == "timeline":
        tracer = Tracer(enabled=True)
        wl = Workload(bootstraps=args.bootstraps,
                      tasks_per_bootstrap=args.tasks)
        result = run_experiment(
            _apply_llp_schedule(_SCHEDULERS[args.scheduler](),
                                args.llp_schedule),
            wl, tracer=tracer,
        )
        own_traces[args.scheduler] = tracer
        window = result.raw_makespan * 0.02
        print(f"{args.scheduler}: makespan {result.makespan:.1f} s, "
              f"SPE utilization {result.spe_utilization:.0%}")
        print(render_timeline(tracer, width=args.width, t_start=window,
                              t_end=2 * window))
        print()
        print(utilization_bar(tracer, result.raw_makespan))
    elif args.command == "trace":
        import pathlib

        for path in (args.out, args.jsonl):
            if path and not pathlib.Path(path).parent.is_dir():
                print(f"repro trace: error: directory of {path!r} does not "
                      f"exist", file=sys.stderr)
                return 2
        tracer, _metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule,
        )
        write_chrome_trace(tracer, args.out)
        if args.jsonl:
            write_trace_jsonl(tracer, args.jsonl)
            print(f"wrote {len(tracer.records)} records to {args.jsonl}")
        print(f"{result.scheduler}: makespan {result.makespan:.2f} s, "
              f"{result.offloads} off-loads, {len(tracer.records)} trace "
              f"records")
        print(f"wrote Chrome trace to {args.out} "
              f"(open at https://ui.perfetto.dev)")
    elif args.command == "stats":
        from .analysis.metrics import scheduler_summary
        from .obs import parse_threshold, resolve_metric

        try:
            rules = [parse_threshold(expr) for expr in args.fail_on]
        except ValueError as exc:
            print(f"repro stats: error: {exc}", file=sys.stderr)
            return 2
        _tracer, metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule,
        )
        if args.json:
            print(metrics.to_json())
        else:
            print(render_scheduler_summary(
                metrics,
                title=f"{args.scenario}: {result.scheduler} on "
                      f"{args.bootstraps} bootstraps x {args.tasks} tasks",
            ))
            print()
            print(metrics.render())
        if rules:
            summary = scheduler_summary(metrics)
            failed = False
            for rule in rules:
                try:
                    observed = resolve_metric(rule.metric, summary, metrics)
                except ValueError as exc:
                    print(f"repro stats: error: {exc}", file=sys.stderr)
                    return 2
                if rule.violated(observed):
                    print(f"FAIL {rule} (observed {observed:g})",
                          file=sys.stderr)
                    failed = True
                else:
                    print(f"ok   {rule} (observed {observed:g})")
            if failed:
                return 1
    elif args.command == "health":
        import json as _json

        from .obs import analyze_run, render_findings

        tracer, metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule,
        )
        findings = analyze_run(tracer, metrics)
        if args.json:
            print(_json.dumps([f.to_dict() for f in findings], indent=2))
        else:
            print(f"{args.scenario}: {result.scheduler} on "
                  f"{args.bootstraps} bootstraps x {args.tasks} tasks")
            print(render_findings(findings))
        if findings:
            return 1
    elif args.command == "report":
        import pathlib

        from .obs import Profiler, analyze_run, write_report

        if not pathlib.Path(args.out).parent.is_dir():
            print(f"repro report: error: directory of {args.out!r} does "
                  f"not exist", file=sys.stderr)
            return 2
        profiler = Profiler()
        tracer, metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule, profiler=profiler,
        )
        findings = analyze_run(tracer, metrics)
        write_report(
            args.out, tracer, metrics, findings,
            title=f"{args.scenario}: {result.scheduler} scheduler run",
            subtitle=f"{args.bootstraps} bootstraps x {args.tasks} tasks, "
                     f"seed {args.seed} — makespan {result.makespan:.2f} s",
            profile=profiler.report(),
        )
        print(f"wrote report to {args.out} ({len(findings)} finding(s); "
              f"self-contained, open in any browser)")
    elif args.command == "explain":
        import json as _json

        from .obs import (
            aggregate_breakdown,
            build_job_trees,
            build_offload_trees,
            critical_path,
            job_summary,
            publish_breakdown,
            render_explain,
            top_slowest,
        )

        tracer, metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule,
        )
        if args.scenario == "serve":
            trees = build_job_trees(tracer)
            breakdown = aggregate_breakdown(trees)
            publish_breakdown(metrics, breakdown)
            if args.json:
                if args.job is not None:
                    jobs = ([job_summary(trees[args.job])]
                            if args.job in trees else [])
                else:
                    jobs = top_slowest(trees, k=args.top,
                                       tenant=args.tenant)
                print(_json.dumps(
                    {"scenario": args.scenario, "breakdown": breakdown,
                     "jobs": jobs},
                    indent=2, sort_keys=True,
                ))
            else:
                print(render_explain(trees, breakdown, top=args.top,
                                     job=args.job, tenant=args.tenant))
            if args.job is not None and args.job not in trees:
                return 1
        else:
            roots = build_offload_trees(tracer)
            slow = sorted(roots,
                          key=lambda r: (-r.duration, r.start))[:args.top]
            if args.json:
                print(_json.dumps(
                    {"scenario": args.scenario,
                     "offloads": len(roots),
                     "slowest": [r.to_dict() for r in slow]},
                    indent=2, sort_keys=True,
                ))
            elif not roots:
                print("no off-loads recorded — nothing to attribute")
            else:
                print(f"{args.scenario}: {len(roots)} off-loads, top "
                      f"{len(slow)} slowest critical paths:")
                for r in slow:
                    segs = " -> ".join(
                        f"{n.name} {n.duration * 1e6:.1f}us"
                        for n in critical_path(r)[1:]
                    )
                    print(f"  {r.attrs.get('proc')} "
                          f"{r.attrs.get('function')} "
                          f"[{r.duration * 1e6:.1f}us]: {segs}")
    elif args.command == "profile":
        import json as _json

        from .obs import Profiler
        from .obs.profile import render_profile, write_profile_trace

        profiler = Profiler(keep_spans=bool(args.perfetto))
        tracer, metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule, profiler=profiler,
        )
        # The registry's aggregate read-out cost, timed where it happens.
        profiler.call("obs.metrics.snapshot", metrics.snapshot)
        report = profiler.report()
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_profile(
                report, sort=args.sort, top=args.top,
                title=f"{args.scenario}: {result.scheduler} — "
                      f"wall-clock profile",
            ))
        if args.perfetto:
            write_profile_trace(tracer, profiler, args.perfetto)
            print(f"wrote sim-time + wall-clock trace to {args.perfetto} "
                  f"(open at https://ui.perfetto.dev)")
    elif args.command == "faults":
        import json as _json
        import pathlib

        from .cell.params import BladeParams
        from .faults import FaultPlan, SPEKill, SlowSPE

        def parse_pair(text: str, flag: str) -> Tuple[int, float]:
            try:
                left, right = text.split(":", 1)
                return int(left), float(right)
            except ValueError:
                raise SystemExit(
                    f"repro faults: error: {flag} expects INDEX:VALUE, "
                    f"got {text!r}"
                )

        if args.plan:
            path = pathlib.Path(args.plan)
            if not path.is_file():
                print(f"repro faults: error: plan file {args.plan!r} not "
                      f"found", file=sys.stderr)
                return 2
            try:
                plan = FaultPlan.from_json(path.read_text())
            except ValueError as exc:
                print(f"repro faults: error: {exc}", file=sys.stderr)
                return 2
        else:
            plan = FaultPlan()
        overrides = {}
        if args.fault_seed is not None:
            overrides["seed"] = args.fault_seed
        if args.offload_fail_rate is not None:
            overrides["offload_fail_rate"] = args.offload_fail_rate
        if args.dma_error_rate is not None:
            overrides["dma_error_rate"] = args.dma_error_rate
        if args.spe_kill:
            overrides["spe_kills"] = plan.spe_kills + tuple(
                SPEKill(*parse_pair(t, "--spe-kill")) for t in args.spe_kill
            )
        if args.slow_spe:
            overrides["slow_spes"] = plan.slow_spes + tuple(
                SlowSPE(*parse_pair(t, "--slow-spe")) for t in args.slow_spe
            )
        try:
            plan = plan.with_(**overrides) if overrides else plan
        except ValueError as exc:
            print(f"repro faults: error: {exc}", file=sys.stderr)
            return 2

        spec_f, n_cells = _scenario_spec(args.scenario)
        spec_f = _apply_llp_schedule(spec_f, args.llp_schedule)
        blade = BladeParams(n_cells=n_cells)
        wl = Workload(bootstraps=args.bootstraps,
                      tasks_per_bootstrap=args.tasks, seed=args.seed)
        clean = run_experiment(spec_f, wl, blade=blade, seed=args.seed)
        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        spec_f, _ = _scenario_spec(args.scenario)
        spec_f = _apply_llp_schedule(spec_f, args.llp_schedule)
        faulty = run_experiment(
            spec_f, wl, blade=blade, seed=args.seed,
            tracer=tracer, metrics=metrics, faults=plan,
        )
        own_traces[f"{args.scenario}-faulty"] = tracer
        ex = faulty.extras
        digests_match = clean.result_digest == faulty.result_digest
        if args.json:
            print(_json.dumps({
                "scenario": args.scenario,
                "scheduler": faulty.scheduler,
                "plan": _json.loads(plan.to_json()),
                "fault_free_makespan_s": clean.makespan,
                "faulty_makespan_s": faulty.makespan,
                "slowdown": (faulty.makespan / clean.makespan
                             if clean.makespan > 0 else 1.0),
                "spe_kills": ex.get("spe_kills", 0.0),
                "spe_blacklists": ex.get("spe_blacklists", 0.0),
                "offload_retries": ex.get("offload_retries", 0.0),
                "retry_fallbacks": ex.get("retry_fallbacks", 0.0),
                "watchdog_timeouts": ex.get("watchdog_timeouts", 0.0),
                "dma_errors": ex.get("dma_errors", 0.0),
                "llp_recoveries": ex.get("llp_recoveries", 0.0),
                "live_spes": ex.get("live_spes", 0.0),
                "bootstraps_completed": faulty.bootstraps_completed,
                "results_identical": digests_match,
            }, indent=2))
        else:
            print(f"{args.scenario}: {faulty.scheduler} on "
                  f"{args.bootstraps} bootstraps x {args.tasks} tasks")
            print(f"  fault-free : makespan {clean.makespan:8.2f} s, "
                  f"{clean.offloads} off-loads")
            print(f"  with faults: makespan {faulty.makespan:8.2f} s, "
                  f"{faulty.offloads} off-loads "
                  f"({faulty.makespan / clean.makespan:.2f}x)"
                  if clean.makespan > 0 else
                  f"  with faults: makespan {faulty.makespan:8.2f} s")
            inj_fail = metrics.get("faults.offload_failures")
            print(f"  injected   : {ex.get('spe_kills', 0):.0f} SPE kills, "
                  f"{ex.get('dma_errors', 0):.0f} DMA errors, "
                  f"{float(inj_fail.value) if inj_fail else 0:.0f} "
                  f"transient off-load failures")
            print(f"  recovery   : {ex.get('offload_retries', 0):.0f} "
                  f"retries, {ex.get('retry_fallbacks', 0):.0f} PPE "
                  f"fallbacks, {ex.get('spe_blacklists', 0):.0f} "
                  f"blacklists, {ex.get('llp_recoveries', 0):.0f} loop "
                  f"recoveries, {ex.get('watchdog_timeouts', 0):.0f} "
                  f"watchdog timeouts")
            print(f"  survivors  : {ex.get('live_spes', 0):.0f} of "
                  f"{len(faulty.per_spe_busy)} SPEs in service; "
                  f"{faulty.bootstraps_completed} bootstraps completed")
            verdict = ("identical to the fault-free run"
                       if digests_match else "DIVERGED from fault-free")
            print(f"  results    : {verdict} "
                  f"(digest {faulty.result_digest[:16]}...)")
        if not digests_match:
            return 1
    elif args.command == "serve":
        import dataclasses

        from .serve import (
            BladeFlap,
            BladeKill,
            BladeSlow,
            FleetFaultPlan,
            LinkDegrade,
            ResilienceConfig,
            ServeConfig,
            default_tenants,
            run_service,
        )

        def parse_fault(text: str, flag: str, shape: str,
                        n_min: int, n_max: int):
            parts = text.split(":")
            if not (n_min <= len(parts) <= n_max):
                print(f"repro serve: error: {flag} expects {shape}, "
                      f"got {text!r}", file=sys.stderr)
                raise SystemExit(2)
            try:
                return [int(parts[0])] + [float(x) for x in parts[1:]]
            except ValueError:
                print(f"repro serve: error: {flag} expects {shape}, "
                      f"got {text!r}", file=sys.stderr)
                raise SystemExit(2)

        if args.fault_plan:
            import pathlib as _pathlib

            path = _pathlib.Path(args.fault_plan)
            if not path.is_file():
                print(f"repro serve: error: fault-plan file "
                      f"{args.fault_plan!r} not found", file=sys.stderr)
                return 2
            try:
                plan = FleetFaultPlan.from_json(path.read_text())
            except ValueError as exc:
                print(f"repro serve: error: {exc}", file=sys.stderr)
                return 2
        else:
            plan = FleetFaultPlan()
        kills = list(plan.kills)
        slows = list(plan.slows)
        flaps = list(plan.flaps)
        degrades = list(plan.degrades)
        for text in args.kill_blade:
            try:
                left, right = text.split(":", 1)
                kills.append(BladeKill(blade=int(left), at=float(right)))
            except ValueError:
                print(f"repro serve: error: --kill-blade expects "
                      f"BLADE:TIME, got {text!r}", file=sys.stderr)
                return 2
        for text in args.slow_blade:
            v = parse_fault(text, "--slow-blade",
                            "BLADE:TIME:FACTOR[:DURATION]", 3, 4)
            slows.append(BladeSlow(
                blade=v[0], at=v[1], factor=v[2],
                duration=v[3] if len(v) > 3 else None,
            ))
        for text in args.flap_blade:
            v = parse_fault(text, "--flap-blade", "BLADE:TIME:DOWN", 3, 3)
            flaps.append(BladeFlap(blade=v[0], at=v[1], down_s=v[2]))
        for text in args.degrade_blade:
            v = parse_fault(text, "--degrade-blade",
                            "BLADE:TIME:LATENCY[:DURATION]", 3, 4)
            degrades.append(LinkDegrade(
                blade=v[0], at=v[1], added_latency_s=v[2],
                duration=v[3] if len(v) > 3 else None,
            ))
        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        try:
            plan = FleetFaultPlan(
                kills=tuple(kills), slows=tuple(slows),
                flaps=tuple(flaps), degrades=tuple(degrades),
                seed=plan.seed,
            )
            cfg = ServeConfig(
                tenants=default_tenants(arrival_rate=args.arrival_rate,
                                        n_tenants=args.tenants),
                duration_s=args.duration,
                seed=args.seed,
                dispatch=args.dispatch,
                scheduler=args.scheduler,
                min_blades=args.min_blades,
                max_blades=args.max_blades,
                autoscale=args.autoscale,
                queue_capacity=args.queue_capacity,
                batch_max=args.batch_max,
                faults=None if plan.is_null else plan,
                resilience=ResilienceConfig(
                    hedging=args.resilience,
                    breaker=args.resilience,
                    enforce_deadlines=args.enforce_deadlines,
                ),
            )
        except ValueError as exc:
            print(f"repro serve: error: {exc}", file=sys.stderr)
            return 2
        result = run_service(cfg, tracer=tracer, metrics=metrics)
        own_traces["serve"] = tracer
        if args.json:
            print(result.to_json())
        else:
            print(result.summary_text())
        digests_match = True
        if cfg.faults is not None:
            # Mirror `repro faults`: rerun fault-free and verify every
            # job the runs share produced an identical digest.  (Shared
            # keys only: closed-loop tenants submit on completion, so
            # fault timing legitimately changes how *many* jobs exist.)
            clean = run_service(dataclasses.replace(cfg, faults=None))
            clean_map = clean.digest_map()
            faulty_map = result.digest_map()
            shared = sorted(set(clean_map) & set(faulty_map))
            diverged = [k for k in shared if clean_map[k] != faulty_map[k]]
            digests_match = not diverged
            if not args.json:
                verdict = (
                    f"identical to the fault-free run "
                    f"({len(shared)} shared jobs)"
                    if digests_match else
                    f"DIVERGED from fault-free on {len(diverged)} of "
                    f"{len(shared)} shared jobs"
                )
                print(f"  digests: {verdict}")
        if args.report:
            import pathlib

            from .obs import analyze_run, write_report

            if not pathlib.Path(args.report).parent.is_dir():
                print(f"repro serve: error: directory of {args.report!r} "
                      f"does not exist", file=sys.stderr)
                return 2
            findings = analyze_run(tracer, metrics)
            write_report(
                args.report, tracer, metrics, findings,
                title=f"serve: {cfg.dispatch} dispatch, "
                      f"{cfg.scheduler} blades",
                subtitle=f"{len(cfg.tenants)} tenants, horizon "
                         f"{cfg.duration_s:g} s, seed {cfg.seed} — "
                         f"drained at {result.makespan:.2f} s",
            )
            print(f"wrote report to {args.report} ({len(findings)} "
                  f"finding(s); self-contained, open in any browser)")
        if not digests_match:
            return 1
    elif args.command == "dag":
        import dataclasses

        from .serve import (
            BladeKill,
            BootstopConfig,
            DagConfig,
            FleetFaultPlan,
            raxml_workflow,
            run_dag,
        )

        kills = []
        for text in args.kill_blade:
            try:
                left, right = text.split(":", 1)
                kills.append(BladeKill(blade=int(left), at=float(right)))
            except ValueError:
                print(f"repro dag: error: --kill-blade expects BLADE:TIME, "
                      f"got {text!r}", file=sys.stderr)
                return 2
        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        try:
            cfg = DagConfig(
                workflow=raxml_workflow(replicates=args.replicates,
                                        conflict=args.conflict),
                submissions=args.submissions,
                seed=args.seed,
                dispatch=args.dispatch,
                scheduler=args.scheduler,
                blades=args.blades,
                bootstop=BootstopConfig() if args.bootstop else None,
                cache=args.cache == "on",
                faults=(FleetFaultPlan(kills=tuple(kills), seed=args.seed)
                        if kills else None),
            )
        except ValueError as exc:
            print(f"repro dag: error: {exc}", file=sys.stderr)
            return 2
        result = run_dag(cfg, tracer=tracer, metrics=metrics)
        own_traces["dag"] = tracer
        if args.json:
            print(result.to_json())
        else:
            print(result.summary_text())
        ok = result.conservation_ok and result.serve.lost_jobs == 0
        if cfg.faults is not None and cfg.bootstop is None:
            # Bootstop off: fault timing must not change any result —
            # the faulty run's final digests must match a clean rerun.
            # (Bootstop on: fault timing legitimately moves the
            # convergence point, so only conservation is asserted.)
            clean = run_dag(dataclasses.replace(cfg, faults=None))
            match = clean.final_digests == result.final_digests
            ok = ok and match
            if not args.json:
                print("  digests: "
                      + ("identical to the fault-free run" if match
                         else "DIVERGED from fault-free"))
        if args.report:
            import pathlib

            from .obs import analyze_run, write_report

            if not pathlib.Path(args.report).parent.is_dir():
                print(f"repro dag: error: directory of {args.report!r} "
                      f"does not exist", file=sys.stderr)
                return 2
            findings = analyze_run(tracer, metrics)
            write_report(
                args.report, tracer, metrics, findings,
                title=f"dag: {cfg.workflow.name} x{cfg.submissions}, "
                      f"{cfg.dispatch} dispatch",
                subtitle=f"bootstop "
                         f"{'on' if cfg.bootstop is not None else 'off'}, "
                         f"cache {'on' if cfg.cache else 'off'}, seed "
                         f"{cfg.seed} — drained at {result.makespan:.2f} s",
            )
            print(f"wrote report to {args.report} ({len(findings)} "
                  f"finding(s); self-contained, open in any browser)")
        if not ok:
            return 1
    elif args.command == "chaos":
        from .serve.chaos import ChaosConfig, run_chaos

        try:
            chaos_cfg = ChaosConfig(
                plans=args.plans,
                seed=args.seed,
                mix=args.mix,
                duration_s=args.duration,
                arrival_rate=args.arrival_rate,
                blades=args.blades,
                dispatch=args.dispatch,
            )
        except ValueError as exc:
            print(f"repro chaos: error: {exc}", file=sys.stderr)
            return 2
        report = run_chaos(chaos_cfg)
        if args.json:
            print(report.to_json())
        else:
            print(report.summary_text())
        if args.report:
            import pathlib as _pathlib

            from .obs import analyze_run, write_report
            from .serve.chaos import chaos_serve_config
            from .serve.service import run_service as _run_service

            if not _pathlib.Path(args.report).parent.is_dir():
                print(f"repro chaos: error: directory of {args.report!r} "
                      f"does not exist", file=sys.stderr)
                return 2
            # Re-run the most interesting plan (first failure, else the
            # last) with full observability and render it.
            shown = (report.failures[0] if report.failures
                     else report.outcomes[-1])
            rtracer = Tracer(enabled=True)
            rmetrics = MetricsRegistry()
            _run_service(chaos_serve_config(chaos_cfg, shown.plan),
                         tracer=rtracer, metrics=rmetrics)
            findings = analyze_run(rtracer, rmetrics)
            write_report(
                args.report, rtracer, rmetrics, findings,
                title=f"chaos plan {shown.index}: "
                      f"{shown.plan.describe() or 'no faults'}",
                subtitle=f"mix {chaos_cfg.mix}, seed {chaos_cfg.seed}, "
                         f"{chaos_cfg.blades} blades — "
                         f"{'PASS' if shown.ok else 'FAIL'}",
            )
            print(f"wrote report to {args.report} ({len(findings)} "
                  f"finding(s); self-contained, open in any browser)")
        failed = bool(report.failures)
        if args.check:
            failed = failed or bool(report.liveness_violations)
        if failed:
            return 1
    elif args.command == "run":
        from collections import Counter

        tracer, metrics, result = _run_observed(
            args.scenario, args.bootstraps, args.tasks, args.seed,
            llp_schedule=args.llp_schedule,
        )
        own_traces[args.scenario] = tracer
        schedule = args.llp_schedule or "static"
        print(f"{args.scenario}: {result.scheduler} scheduler, "
              f"{schedule} loop schedule")
        print(f"  makespan   : {result.makespan:.2f} s "
              f"(SPE utilization {result.spe_utilization:.0%})")
        print(f"  off-loads  : {result.offloads} "
              f"({result.ppe_fallbacks} PPE fallbacks)")
        by_schedule = Counter(
            r.get("schedule", "?")
            for r in tracer.records if r.event == "llp_invoke"
        )
        if by_schedule:
            breakdown = ", ".join(
                f"{count} {name}" for name, count in sorted(by_schedule.items())
            )
            print(f"  LLP        : {result.llp_invocations} invocations "
                  f"({breakdown})")
        else:
            print(f"  LLP        : {result.llp_invocations} invocations")
    elif args.command == "schedulers":
        from .core.runtime import available_policies

        print("scheduling policies (SchedulerSpec kind):")
        for info in available_policies():
            knobs = f"  [knobs: {', '.join(info.knobs)}]" if info.knobs else ""
            print(f"  {info.name:>13}: {info.description}{knobs}")
        print()
        print("loop schedules (LLPConfig.schedule / --llp-schedule):")
        for s in available_loop_schedules():
            print(f"  {s.name:>13}: {s.description}")
    elif args.command == "bench":
        from .obs import bench as obs_bench

        if args.only and args.check:
            print("repro bench: error: --only cannot be combined with "
                  "--check (the gate always validates every baseline)",
                  file=sys.stderr)
            return 2
        sections = (set(args.only) if args.only
                    else {"core", "faults", "serve", "dag", "perf"})
        current = current_faults = current_serve = current_perf = None
        current_dag = None
        if "core" in sections:
            current = obs_bench.measure_core()
            for name, row in current["schedulers"].items():
                speedup = current["speedup_over_serial"][name]
                print(f"{name:>11}: makespan {row['makespan_s']:8.2f} s  "
                      f"({speedup:4.2f}x serial), {row['offloads']:4d} "
                      f"off-loads, {row['llp_invocations']:3d} LLP")
            for name, row in current.get("llp_schedules", {}).items():
                print(f"{'llp/' + name:>11}: makespan "
                      f"{row['makespan_s']:8.2f} s  "
                      f"(edtlp-llp4), {row['llp_invocations']:3d} LLP")
        if "faults" in sections:
            current_faults = obs_bench.measure_faults()
            zt = current_faults["zero_fault_tolerant"]
            fa = current_faults["faulty"]
            print(f"     faults: zero-fault overhead "
                  f"{zt['overhead_ratio']:.4f}x, "
                  f"faulty slowdown {fa['slowdown_ratio']:.2f}x "
                  f"({fa['offload_retries']:.0f} retries, "
                  f"{fa['live_spes']:.0f} live SPEs)")
            ff = current_faults["fleet_faults"]
            print(f"fleet-chaos: {ff['plans']} {ff['mix']} plans, "
                  f"lost {ff['lost_jobs']}, "
                  f"digests {'identical' if ff['digests_identical'] else 'DIVERGED'}, "
                  f"{ff['hedges']} hedges, {ff['breaker_cycles']} breaker cycles, "
                  f"{ff['deadline_aborts']} deadline aborts")
        if "serve" in sections:
            current_serve = obs_bench.measure_serve()
            for pol, cells in current_serve["policies"].items():
                fixed = cells["fixed"]
                print(f"{'serve/' + pol:>24}: p99 "
                      f"{fixed['latency_p99_s']:6.1f} s, "
                      f"goodput {fixed['goodput_jps'] * 3600:5.1f} jobs/h, "
                      f"{fixed['completed']:3d} jobs "
                      f"(autoscale p99 "
                      f"{cells['autoscale']['latency_p99_s']:.1f} s)")
            print(f"      serve: cross-policy digests "
                  f"{'identical' if current_serve['digests_identical'] else 'DIVERGED'}")
        if "dag" in sections:
            current_dag = obs_bench.measure_dag()
            for name, row in current_dag["grid"].items():
                print(f"{'dag/' + name:>16}: "
                      f"{row['completed']:3d} done, "
                      f"{row['cancelled']:3d} cancelled, "
                      f"cache {row['cache_hit_rate']:.0%}, "
                      f"makespan {row['makespan']:7.1f} s")
            print(f"        dag: bootstop savings "
                  f"{current_dag['bootstop_savings']:.0%}, warm hit rate "
                  f"{current_dag['warm_hit_rate']:.0%}, digests "
                  f"{'identical' if current_dag['warm_digest_identical'] else 'DIVERGED'}")
        if "perf" in sections:
            current_perf = obs_bench.measure_throughput()
            for scen, row in current_perf["scenarios"].items():
                jobs = (f", {row['jobs_per_sec_wall']:.1f} jobs/s"
                        if "jobs_per_sec_wall" in row else "")
                print(f"{'perf/' + scen:>16}: "
                      f"{row['events_per_sec_wall']:>9,.0f} events/s{jobs} "
                      f"({row['events']} events in "
                      f"{row['seconds_wall']:.2f} s)")
        if args.write:
            root = obs_bench.find_repo_root()
            for fname, payload in (
                (obs_bench.CORE_BASELINE, current),
                (obs_bench.FAULTS_BASELINE, current_faults),
                (obs_bench.SERVE_BASELINE, current_serve),
                (obs_bench.DAG_BASELINE, current_dag),
                (obs_bench.PERF_BASELINE, current_perf),
            ):
                if payload is None:
                    continue
                path = obs_bench.write_baseline(root, fname, payload)
                print(f"wrote {path}")
        if args.check:
            ok, report = obs_bench.check_baselines(
                current_core=current, current_faults=current_faults,
                current_serve=current_serve, current_dag=current_dag,
                current_perf=current_perf,
                perf_floor_tolerance=args.perf_tolerance,
            )
            print(report)
            if not ok:
                return 1
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)

    if getattr(args, "trace", None) and args.command != "trace":
        if own_traces:
            write_chrome_trace(own_traces, args.trace)
        else:
            bootstraps = getattr(args, "bootstraps", 3)
            tasks = getattr(args, "tasks", None) or 200
            tracer, _, _ = _run_observed(args.command, bootstraps, tasks)
            write_chrome_trace(tracer, args.trace)
        print(f"wrote Chrome trace to {args.trace} "
              f"(open at https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
