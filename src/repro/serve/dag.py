"""Workflow DAG layer: staged pipelines over the serving fleet.

Real phylogenetics traffic is not independent jobs but *pipelines* —
check the MSA, infer ML trees, fan a bootstrap out into replicates,
fold them back into a consensus.  This module adds that third grain
above jobs and dispatch units: a :class:`WorkflowSpec` names the
stages and their dependencies, and a :class:`WorkflowEngine` sits in
front of the existing :class:`~repro.serve.admission.FrontEnd`,
submitting each stage the moment its dependencies resolve and folding
per-stage results into one workflow record.

Three mechanisms make the tier more than a topological sort:

* **Fan-out/fan-in** — a bootstrap stage replicates into ``fan_out``
  sibling jobs, one per replicate, keyed by seeded substreams so each
  replicate has a distinct, reproducible identity (variant, trace
  seed, result digest, and replicate tree).
* **Bootstopping** — an autoMRE-style :class:`~repro.serve.bootstop
  .BootstopMonitor` watches completed replicates in completion order;
  once majority-rule support values stabilize the engine cancels every
  replicate that has not started, via the service's job-cancel/drain
  path, with exact conservation: admitted = completed + cancelled +
  aborted + lost.
* **Result caching** — completed stages are content-addressed into a
  fleet-wide :class:`~repro.serve.cache.ResultCache`; a repeated
  identical workflow short-circuits every stage to a cache hit and
  reproduces the cold run's final digest exactly (bootstrap entries
  replay the cold run's completed-replicate set).

Everything is deterministic per :class:`DagConfig`; `serve.dag.*`
metrics expose cache hit rate, wasted work avoided, stages in flight
and bootstop savings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cell.params import BladeParams
from ..obs.metrics import NULL_REGISTRY, stable_round
from ..phylo.consensus import majority_rule_consensus
from ..phylo.tree import Tree
from ..sim.engine import Environment
from ..sim.rng import RngStreams
from .bootstop import BootstopConfig, BootstopMonitor
from .cache import CacheEntry, ResultCache, content_key
from .fleet import FleetFaultPlan
from .jobs import JobTemplate, TenantSpec
from .service import ServeConfig, ServeResult, Service

__all__ = [
    "StageSpec",
    "WorkflowSpec",
    "DagConfig",
    "DagResult",
    "WorkflowEngine",
    "raxml_workflow",
    "replicate_tree",
    "run_dag",
]


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a job template, dependencies, and a fan-out.

    ``fan_out=1`` submits a single job; ``fan_out=N`` replicates the
    stage into N sibling jobs (variants 0..N-1 — distinct trace seeds
    and digests through the existing job-seed machinery).
    """

    name: str
    template: JobTemplate
    after: Tuple[str, ...] = ()
    fan_out: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage names must be non-empty")
        if self.fan_out < 1:
            raise ValueError("fan_out must be >= 1")
        if len(set(self.after)) != len(self.after):
            raise ValueError(f"stage {self.name!r} lists a dependency twice")


@dataclass(frozen=True)
class WorkflowSpec:
    """A named DAG of stages plus the phylogenetic workload it models.

    ``n_taxa``/``conflict`` parameterize the replicate trees the
    bootstop monitor judges: each replicate perturbs a shared base
    topology with probability ``conflict`` (NNI moves), so small values
    give a *converging* workload (supports stabilize quickly) and
    ``conflict=1.0`` gives a *diverging* one (independent topologies).
    """

    name: str
    stages: Tuple[StageSpec, ...]
    n_taxa: int = 12
    conflict: float = 0.15

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a workflow needs at least one stage")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError("stage names must be unique")
        known = set(names)
        for s in self.stages:
            for dep in s.after:
                if dep not in known:
                    raise ValueError(
                        f"stage {s.name!r} depends on unknown stage {dep!r}"
                    )
        self.topo_order()  # raises on cycles
        if self.n_taxa < 4:
            raise ValueError("n_taxa must be >= 4")
        if not (0.0 <= self.conflict <= 1.0):
            raise ValueError("conflict must be in [0, 1]")

    def topo_order(self) -> Tuple[StageSpec, ...]:
        """Stages in dependency order (stable: spec order within ties)."""
        by_name = {s.name: s for s in self.stages}
        done: List[StageSpec] = []
        placed = set()
        remaining = list(self.stages)
        while remaining:
            progress = False
            still = []
            for s in remaining:
                if all(dep in placed for dep in s.after):
                    done.append(s)
                    placed.add(s.name)
                    progress = True
                else:
                    still.append(s)
            if not progress:
                cyc = ", ".join(s.name for s in still)
                raise ValueError(f"workflow has a dependency cycle: {cyc}")
            remaining = still
        return tuple(done)

    @property
    def total_jobs(self) -> int:
        return sum(s.fan_out for s in self.stages)


def raxml_workflow(replicates: int = 100, conflict: float = 0.15,
                   n_taxa: int = 12) -> WorkflowSpec:
    """The canonical pipeline: check MSA -> infer ML -> bootstrap -> consensus."""
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    check = JobTemplate("wf-check", bootstraps=1, tasks_per_bootstrap=8,
                        variants=1)
    infer = JobTemplate("wf-infer", bootstraps=2, tasks_per_bootstrap=40,
                        variants=1)
    boot = JobTemplate("wf-boot", bootstraps=1, tasks_per_bootstrap=12,
                       variants=replicates)
    cons = JobTemplate("wf-consensus", bootstraps=1, tasks_per_bootstrap=8,
                       variants=1)
    return WorkflowSpec(
        name=f"raxml-{replicates}",
        stages=(
            StageSpec("check-msa", check),
            StageSpec("infer-ml", infer, after=("check-msa",)),
            StageSpec("bootstrap", boot, after=("infer-ml",),
                      fan_out=replicates),
            StageSpec("consensus", cons, after=("bootstrap",)),
        ),
        n_taxa=n_taxa,
        conflict=conflict,
    )


def replicate_tree(spec: WorkflowSpec, root_seed: int, replicate: int) -> Tree:
    """The deterministic tree replicate ``replicate`` infers.

    All replicates share one base topology drawn from a workflow-keyed
    substream; each replicate perturbs it (1-2 NNI moves) with
    probability ``spec.conflict`` from its own substream.  At
    ``conflict >= 1`` replicates draw independent topologies instead —
    a workload whose supports never stabilize.  Stateless: the same
    (spec, seed, replicate) always yields the same tree.
    """
    streams = RngStreams(root_seed).spawn(f"dag:{spec.name}:trees")
    base = Tree.random_topology(spec.n_taxa, streams.stream("base"))
    rng = streams.stream(f"rep{replicate}")
    if spec.conflict >= 1.0:
        return Tree.random_topology(spec.n_taxa, rng)
    if float(rng.uniform()) >= spec.conflict:
        return base
    tree = base
    for _ in range(1 + int(rng.integers(2))):
        moves = tree.nni_neighbourhood()
        branch_id, variant = moves[int(rng.integers(len(moves)))]
        tree.nni(tree.find(branch_id), variant)
    return tree


@dataclass(frozen=True)
class DagConfig:
    """Everything one workflow-serving run depends on.

    ``interarrival_s=None`` (the default) chains submissions strictly
    back to back — submission k+1 starts when k completes, the regime
    the cache-warm gate measures; a float staggers open-loop starts
    instead, letting workflows overlap.
    """

    workflow: WorkflowSpec
    submissions: int = 1
    interarrival_s: Optional[float] = None
    seed: int = 0
    dispatch: str = "least-loaded"
    scheduler: str = "mgps"
    blade: BladeParams = BladeParams(n_cells=2)
    blades: int = 2
    dispatch_overhead_s: float = 0.5
    bootstop: Optional[BootstopConfig] = None
    cache: bool = True
    faults: Optional[FleetFaultPlan] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.submissions < 1:
            raise ValueError("submissions must be >= 1")
        if self.interarrival_s is not None and self.interarrival_s < 0:
            raise ValueError("interarrival_s must be >= 0 when set")
        if self.blades < 1:
            raise ValueError("blades must be >= 1")


@dataclass
class _WorkflowCtx:
    """Mutable per-submission state threaded through the stage procs."""

    k: int
    tenant: TenantSpec
    t_submit: float
    digests: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    replicates: Dict[str, Tuple[Tuple[int, str], ...]] = field(
        default_factory=dict
    )
    stage_records: Dict[str, Dict[str, Any]] = field(default_factory=dict)


class WorkflowEngine:
    """Drives workflows through a :class:`Service` started with
    ``arrivals=False``: the engine is the arrival source, and it flips
    ``arrivals_done`` itself once its last workflow resolves."""

    def __init__(
        self,
        env: Environment,
        service: Service,
        config: DagConfig,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.env = env
        self.service = service
        self.config = config
        self.tracer = service.tracer
        self.metrics = service.metrics
        if not config.cache:
            self.cache: Optional[ResultCache] = None
        else:
            self.cache = cache if cache is not None else ResultCache(
                self.metrics
            )
        self.records: List[Dict[str, Any]] = []
        self.final_digests: List[str] = []
        self.bootstop_cancelled = 0
        self.bootstop_saved_s = 0.0
        self.fan_out_total = 0
        self._inflight = 0
        self.metrics.counter(
            "serve.dag.workflows", help="workflows resolved end to end"
        )
        self.metrics.counter(
            "serve.dag.stages", help="workflow stages resolved"
        )
        self.metrics.counter(
            "serve.dag.bootstop_cancelled",
            help="fan-out replicates cancelled by the convergence monitor",
        )
        self.metrics.gauge(
            "serve.dag.stages_in_flight",
            help="stages past their dependencies but not yet resolved",
        ).set(0)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        env = self.env
        if self.config.interarrival_s is None:
            procs = [env.process(self._sequential_driver(), name="dag-driver")]
        else:
            procs = [
                env.process(self._workflow_proc(k), name=f"workflow-{k}")
                for k in range(self.config.submissions)
            ]
        env.process(self._watcher(procs), name="dag-watcher")

    def _watcher(self, procs):
        yield self.env.all_of(procs)
        self.service.arrivals_done = True
        self.service._check_stop()

    def _sequential_driver(self):
        for k in range(self.config.submissions):
            yield from self._workflow(k)

    def _workflow_proc(self, k: int):
        if k and self.config.interarrival_s:
            yield self.env.timeout(k * self.config.interarrival_s)
        yield from self._workflow(k)

    # -- one workflow ------------------------------------------------------
    def _workflow(self, k: int):
        env = self.env
        spec = self.config.workflow
        tenants = self.service.config.tenants
        ctx = _WorkflowCtx(
            k=k, tenant=tenants[k % len(tenants)], t_submit=env.now
        )
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "workflow", "workflow-start",
                             submission=k, workflow=spec.name)
        stage_done = {s.name: env.event() for s in spec.stages}
        procs = [
            env.process(self._stage_proc(spec, s, ctx, stage_done),
                        name=f"wf{k}-{s.name}")
            for s in spec.topo_order()
        ]
        yield env.all_of(procs)
        self._finalize(spec, ctx)

    def _finalize(self, spec: WorkflowSpec, ctx: _WorkflowCtx) -> None:
        # Fan-in: the majority-rule consensus over whichever replicates
        # actually completed (bootstop cancels a suffix; a warm cache
        # hit replays the cold run's set, so this stays digest-stable).
        consensus: Dict[str, Dict[str, Any]] = {}
        for stage_name, reps in sorted(ctx.replicates.items()):
            if not reps:
                continue
            trees = [replicate_tree(spec, self.config.seed, r)
                     for r, _digest in sorted(reps)]
            tree, supports = majority_rule_consensus(trees)
            consensus[stage_name] = {
                "newick": tree.newick(),
                "splits": len(supports),
                "replicates_used": len(trees),
            }
        order = spec.topo_order()
        final_digest = content_key(
            "workflow", spec.name,
            *[(s.name, ctx.digests.get(s.name, ())) for s in order],
            *[(name, c["newick"]) for name, c in sorted(consensus.items())],
        )
        stages = [ctx.stage_records[s.name] for s in order
                  if s.name in ctx.stage_records]
        record = {
            "workflow": spec.name,
            "submission": ctx.k,
            "tenant": ctx.tenant.name,
            "t_submit": stable_round(ctx.t_submit),
            "t_done": stable_round(self.env.now),
            "makespan_s": stable_round(self.env.now - ctx.t_submit),
            "stages": stages,
            "cache_hits": sum(1 for s in stages if s["cache"] == "hit"),
            "stages_total": len(stages),
            "consensus": consensus,
            "final_digest": final_digest,
        }
        self.records.append(record)
        self.final_digests.append(final_digest)
        self.metrics.counter(
            "serve.dag.workflows", help="workflows resolved end to end"
        ).inc()
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", "workflow", "workflow-done",
                submission=ctx.k, workflow=spec.name,
                digest=final_digest[:16],
                cache_hits=record["cache_hits"],
            )

    # -- one stage ---------------------------------------------------------
    def _stage_key(self, spec: WorkflowSpec, stage: StageSpec,
                   ctx: _WorkflowCtx) -> str:
        cfg = self.config
        bootstop = (cfg.bootstop.describe()
                    if cfg.bootstop is not None and stage.fan_out > 1
                    else "off")
        parts: List[Any] = [
            "dag-stage", cfg.seed, cfg.scheduler, repr(cfg.blade),
            spec.name, spec.n_taxa, stable_round(spec.conflict),
            stage.name, stage.template.name, stage.template.bootstraps,
            stage.template.tasks_per_bootstrap, stage.fan_out, bootstop,
        ]
        for dep in sorted(stage.after):
            parts.append(dep)
            parts.extend(ctx.digests.get(dep, ()))
        return content_key(*parts)

    def _set_inflight(self, delta: int) -> None:
        self._inflight += delta
        self.metrics.gauge(
            "serve.dag.stages_in_flight",
            help="stages past their dependencies but not yet resolved",
        ).set(self._inflight)

    def _stage_proc(self, spec: WorkflowSpec, stage: StageSpec,
                    ctx: _WorkflowCtx, stage_done: Dict[str, Any]):
        env = self.env
        for dep in stage.after:
            ev = stage_done[dep]
            if not ev.triggered:
                yield ev
        t_ready = env.now
        self._set_inflight(+1)
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "workflow", "stage-ready",
                             submission=ctx.k, stage=stage.name,
                             fan_out=stage.fan_out)
        rec: Dict[str, Any] = {
            "stage": stage.name,
            "template": stage.template.name,
            "fan_out": stage.fan_out,
            "t_ready": stable_round(t_ready),
            "submitted": 0, "completed": 0, "cancelled": 0,
            "aborted": 0, "lost": 0, "shed": 0,
            "cache": "off" if self.cache is None else "miss",
            "service_spent_s": 0.0,
            "bootstop_saved_s": 0.0,
            "converged_at": None,
        }
        ctx.stage_records[stage.name] = rec
        key = self._stage_key(spec, stage, ctx)
        entry = self.cache.get(key) if self.cache is not None else None
        if entry is not None:
            ctx.digests[stage.name] = entry.digests
            if entry.replicates:
                ctx.replicates[stage.name] = entry.replicates
            rec["cache"] = "hit"
            rec["status"] = "cached"
            rec["completed"] = len(entry.digests)
            rec["cancelled"] = entry.cancelled
            rec["service_spent_s"] = 0.0
            rec["cache_saved_s"] = stable_round(entry.service_time_s)
            if self.tracer is not None:
                self.tracer.emit(env.now, "serve", "workflow", "cache-hit",
                                 submission=ctx.k, stage=stage.name,
                                 saved_s=stable_round(entry.service_time_s))
            self._resolve_stage(stage, rec, stage_done)
            return

        # Cache miss (or cache off): fan the stage out as real jobs.
        jobs = {}
        for r in range(stage.fan_out):
            job = self.service.frontend.submit(
                ctx.tenant, r, source=f"wf{ctx.k}:{stage.name}:{r}",
                template=stage.template,
            )
            if job is None:
                rec["shed"] += 1
                continue
            jobs[r] = job
        rec["submitted"] = len(jobs)
        monitor = None
        if self.config.bootstop is not None and stage.fan_out > 1:
            monitor = BootstopMonitor(self.config.bootstop)
            self.fan_out_total += stage.fan_out
        completed: List[Tuple[int, str, float]] = []
        pending = dict(jobs)
        while pending:
            waiting = [j.done for j in pending.values()
                       if not j.done.triggered]
            if waiting:
                yield env.any_of(waiting)
            ready = [r for r, j in sorted(pending.items())
                     if j.done.triggered]
            for r in ready:
                job = pending.pop(r)
                if job.cancelled:
                    rec["cancelled"] += 1
                    continue
                if job.aborted:
                    rec["aborted"] += 1
                    continue
                if job.finish_time is None:
                    rec["lost"] += 1
                    continue
                completed.append((r, job.digest, job.service_time))
                if monitor is not None and not monitor.converged:
                    tree = replicate_tree(spec, self.config.seed, r)
                    if monitor.add(tree):
                        self._bootstop(stage, ctx, rec, monitor, pending)

        completed.sort()
        digests = tuple(d for _r, d, _s in completed)
        spent = sum(s for _r, _d, s in completed)
        rec["completed"] = len(completed)
        rec["service_spent_s"] = stable_round(spent)
        rec["status"] = ("completed" if not (rec["lost"] or rec["shed"])
                         else "degraded")
        ctx.digests[stage.name] = digests
        if stage.fan_out > 1:
            ctx.replicates[stage.name] = tuple(
                (r, d) for r, d, _s in completed
            )
        if self.cache is not None:
            self.cache.put(CacheEntry(
                key=key,
                stage=stage.name,
                digests=digests,
                service_time_s=spent,
                replicates=ctx.replicates.get(stage.name, ()),
                cancelled=rec["cancelled"],
            ))
        self._resolve_stage(stage, rec, stage_done)

    def _bootstop(self, stage: StageSpec, ctx: _WorkflowCtx,
                  rec: Dict[str, Any], monitor: BootstopMonitor,
                  pending: Dict[int, Any]) -> None:
        """Supports stabilized: cancel every not-yet-running replicate."""
        cancelled = 0
        saved = 0.0
        for r in sorted(pending):
            job = pending[r]
            if self.service.cancel_job(job):
                cancelled += 1
                saved += job.service_time
        self.service.purge_cancelled_units()
        self.bootstop_cancelled += cancelled
        self.bootstop_saved_s += saved
        rec["converged_at"] = monitor.converged_at
        rec["bootstop_saved_s"] = stable_round(saved)
        if cancelled:
            self.metrics.counter(
                "serve.dag.bootstop_cancelled",
                help="fan-out replicates cancelled by the convergence "
                     "monitor",
            ).inc(cancelled)
        self.metrics.gauge(
            "serve.dag.bootstop_saved_s",
            help="service seconds cancelled after support convergence",
        ).set(self.bootstop_saved_s)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", "workflow", "bootstop-converged",
                submission=ctx.k, stage=stage.name,
                replicates_seen=monitor.converged_at,
                cancelled=cancelled, saved_s=stable_round(saved),
            )

    def _resolve_stage(self, stage: StageSpec, rec: Dict[str, Any],
                       stage_done: Dict[str, Any]) -> None:
        rec["t_done"] = stable_round(self.env.now)
        self.metrics.counter(
            "serve.dag.stages", help="workflow stages resolved"
        ).inc()
        self._set_inflight(-1)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", "workflow", "stage-done",
                stage=stage.name, cache=rec["cache"],
                completed=rec["completed"], cancelled=rec["cancelled"],
            )
        ev = stage_done[stage.name]
        if not ev.triggered:
            ev.succeed()

    # -- reporting ---------------------------------------------------------
    def result(self) -> "DagResult":
        serve = self.service.result()
        cache_stats = (self.cache.stats() if self.cache is not None
                       else {"entries": 0, "hits": 0, "misses": 0,
                             "hit_rate": 0.0, "wasted_work_avoided_s": 0.0})
        self.metrics.gauge(
            "serve.dag.cache_hit_rate",
            help="fraction of stage lookups served from the result cache",
        ).set(cache_stats["hit_rate"])
        savings = (self.bootstop_cancelled / self.fan_out_total
                   if self.fan_out_total else 0.0)
        self.metrics.gauge(
            "serve.dag.bootstop_savings",
            help="fraction of the bootstrap fan-out cancelled as redundant",
        ).set(savings)
        return DagResult(
            workflow=self.config.workflow.name,
            submissions=self.config.submissions,
            seed=self.config.seed,
            dispatch=self.config.dispatch,
            scheduler=self.config.scheduler,
            blades=self.config.blades,
            bootstop=(self.config.bootstop.describe()
                      if self.config.bootstop is not None else None),
            cache_enabled=self.cache is not None,
            makespan=self.env.now,
            serve=serve,
            workflows=tuple(self.records),
            final_digests=tuple(self.final_digests),
            cache_hits=cache_stats["hits"],
            cache_misses=cache_stats["misses"],
            cache_hit_rate=cache_stats["hit_rate"],
            wasted_work_avoided_s=cache_stats["wasted_work_avoided_s"],
            bootstop_cancelled=self.bootstop_cancelled,
            bootstop_saved_s=self.bootstop_saved_s,
            bootstop_savings=savings,
            fan_out_total=self.fan_out_total,
        )


@dataclass(frozen=True)
class DagResult:
    """Outcome of one workflow-serving run — deterministic, JSON-stable."""

    workflow: str
    submissions: int
    seed: int
    dispatch: str
    scheduler: str
    blades: int
    bootstop: Optional[str]
    cache_enabled: bool
    makespan: float
    serve: ServeResult
    workflows: Tuple[Dict[str, Any], ...]
    final_digests: Tuple[str, ...]
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    wasted_work_avoided_s: float
    bootstop_cancelled: int
    bootstop_saved_s: float
    bootstop_savings: float
    fan_out_total: int

    @property
    def conservation_ok(self) -> bool:
        """admitted = completed + cancelled + aborted + lost, exactly."""
        s = self.serve.summary
        return s["admitted"] == (
            s["completed"] + s["cancelled"] + s["deadline_aborts"]
            + self.serve.lost_jobs
        )

    def to_json(self) -> str:
        s = self.serve.summary
        payload = {
            "workflow": self.workflow,
            "submissions": self.submissions,
            "seed": self.seed,
            "dispatch": self.dispatch,
            "scheduler": self.scheduler,
            "blades": self.blades,
            "bootstop": self.bootstop,
            "cache_enabled": self.cache_enabled,
            "makespan": stable_round(self.makespan),
            "jobs": {
                "admitted": s["admitted"],
                "completed": s["completed"],
                "cancelled": s["cancelled"],
                "aborted": s["deadline_aborts"],
                "lost": self.serve.lost_jobs,
                "conservation_ok": self.conservation_ok,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": stable_round(self.cache_hit_rate),
                "wasted_work_avoided_s": stable_round(
                    self.wasted_work_avoided_s
                ),
            },
            "bootstop_cancelled": self.bootstop_cancelled,
            "bootstop_saved_s": stable_round(self.bootstop_saved_s),
            "bootstop_savings": stable_round(self.bootstop_savings),
            "fan_out_total": self.fan_out_total,
            "final_digests": list(self.final_digests),
            "workflows": list(self.workflows),
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def summary_text(self) -> str:
        s = self.serve.summary
        lines = [
            f"workflow run: {self.workflow} x{self.submissions}"
            f" dispatch={self.dispatch} scheduler={self.scheduler}"
            f" blades={self.blades}",
            f"  bootstop={'off' if self.bootstop is None else self.bootstop}"
            f" cache={'on' if self.cache_enabled else 'off'}"
            f" seed={self.seed}",
            f"  drained at {self.makespan:.2f} s; jobs: {s['admitted']} "
            f"admitted, {s['completed']} completed, {s['cancelled']} "
            f"cancelled, {s['deadline_aborts']} aborted, "
            f"{self.serve.lost_jobs} lost "
            f"(conservation {'ok' if self.conservation_ok else 'VIOLATED'})",
        ]
        if self.fan_out_total:
            lines.append(
                f"  bootstop: cancelled {self.bootstop_cancelled}/"
                f"{self.fan_out_total} replicates "
                f"({self.bootstop_savings:.1%}), saved "
                f"{self.bootstop_saved_s:.1f} service-s"
            )
        if self.cache_enabled:
            lines.append(
                f"  cache: {self.cache_hits} hits / {self.cache_misses} "
                f"misses ({self.cache_hit_rate:.1%}), wasted work avoided "
                f"{self.wasted_work_avoided_s:.1f} service-s"
            )
        for w in self.workflows:
            lines.append(
                f"  wf{w['submission']}: {w['stages_total']} stages, "
                f"{w['cache_hits']} cached, makespan {w['makespan_s']:.2f} s,"
                f" digest {w['final_digest'][:16]}"
            )
        return "\n".join(lines)


def run_dag(
    config: DagConfig,
    tracer=None,
    metrics=None,
    profiler=None,
    cache: Optional[ResultCache] = None,
) -> DagResult:
    """Execute one workflow-serving run to full drain.

    Deterministic per config.  Pass a :class:`~repro.serve.cache
    .ResultCache` to share stage results across several runs in one
    process (a long-lived fleet's warm cache); by default each run
    starts cold.
    """
    spec = config.workflow
    tenants = tuple(
        TenantSpec(f"wf{k}", spec.stages[0].template,
                   priority=config.priority)
        for k in range(config.submissions)
    )
    serve_cfg = ServeConfig(
        tenants=tenants,
        duration_s=1.0,  # unused: the engine is the arrival source
        seed=config.seed,
        dispatch=config.dispatch,
        scheduler=config.scheduler,
        blade=config.blade,
        min_blades=config.blades,
        max_blades=config.blades,
        queue_capacity=max(64, spec.total_jobs * config.submissions + 8),
        dispatch_overhead_s=config.dispatch_overhead_s,
        faults=config.faults,
    )
    env = Environment(tracer=tracer, metrics=metrics, profiler=profiler)
    if profiler is not None and tracer is not None:
        tracer.profiler = profiler
    service = Service(env, serve_cfg, tracer=tracer, metrics=metrics)
    service.start(arrivals=False)
    engine = WorkflowEngine(env, service, config, cache=cache)
    engine.start()
    if profiler is None:
        env.run_until_complete(service._main)
    else:
        with profiler.section("run.simulate"):
            env.run_until_complete(service._main)
        profiler.set_count("sim.events_processed", env.events_processed)
    return engine.result()
