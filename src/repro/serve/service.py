"""The serving loop: tenants -> admission -> dispatch -> blade fleet.

:func:`run_service` is the subsystem's entry point — the serving-layer
analogue of :func:`~repro.core.runner.run_experiment`::

    from repro.serve import ServeConfig, default_tenants, run_service

    cfg = ServeConfig(tenants=default_tenants(), duration_s=3600, seed=7)
    result = run_service(cfg)
    print(result.summary["latency_p99_s"])

One discrete-event environment hosts every moving part: tenant arrival
generators feed the :class:`~repro.serve.admission.FrontEnd`, a
dispatcher drains its priority queue through the configured
:class:`~repro.serve.dispatch.DispatchPolicy` onto
:class:`~repro.serve.fleet.BladeState` queues, blade loops execute
dispatch units (service demand and result digest both come from real
:func:`run_experiment` runs, memoized per bag by the
:class:`~repro.serve.fleet.JobCompiler`), the optional
:class:`~repro.serve.autoscaler.Autoscaler` resizes the active blade
set, and node-level :class:`~repro.serve.fleet.FleetFaultPlan` kills
exercise queued-job failover.  Everything stochastic draws from named
:class:`~repro.sim.rng.RngStreams` substreams of one root seed, so a
run is bit-reproducible end to end: two runs of the same config produce
identical event logs, identical percentiles, identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cell.params import BladeParams
from ..obs.metrics import NULL_REGISTRY, stable_round
from ..sim.engine import Environment
from ..sim.rng import RngStreams
from .admission import DispatchUnit, FrontEnd
from .autoscaler import Autoscaler, AutoscalerConfig
from .dispatch import resolve_dispatch
from .fleet import (
    BladeState,
    FleetFaultPlan,
    JobCompiler,
    scheduler_by_name,
)
from .jobs import Job, JobTemplate, TenantSpec
from .generators import tenant_generators
from .resilience import FleetResilience, ResilienceConfig
from .slo import ServeStats

__all__ = ["ServeConfig", "ServeResult", "Service", "run_service",
           "default_tenants"]


def default_tenants(arrival_rate: float = 0.02,
                    n_tenants: int = 3) -> Tuple[TenantSpec, ...]:
    """A standard mixed-tenant population for demos, benches and tests.

    ``arrival_rate`` scales the open-loop tenant; ``n_tenants`` trims
    the mix (1 = open-loop only, 2 = + closed-loop, 3 = + bursty).
    """
    small = JobTemplate("small-bag", bootstraps=2, tasks_per_bootstrap=60,
                        variants=2)
    medium = JobTemplate("medium-bag", bootstraps=3, tasks_per_bootstrap=100,
                         variants=2)
    mix = (
        TenantSpec("genomics", small, arrival="poisson",
                   arrival_rate=arrival_rate, priority=1,
                   deadline_s=900.0),
        TenantSpec("proteomics", medium, arrival="closed", clients=2,
                   think_time_s=180.0),
        TenantSpec("metagenomics", small, arrival="bursty", burst_size=3,
                   burst_interval_s=600.0, rate_limit=0.05, burst=4),
    )
    if not (1 <= n_tenants <= len(mix)):
        raise ValueError(f"n_tenants must be in 1..{len(mix)}")
    return mix[:n_tenants]


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run depends on, in one frozen record."""

    tenants: Tuple[TenantSpec, ...]
    duration_s: float = 3600.0        # arrival horizon; the run drains after
    seed: int = 0
    dispatch: str = "static-block"
    scheduler: str = "mgps"           # blade-level scheduler for job bags
    blade: BladeParams = BladeParams(n_cells=2)
    min_blades: int = 2
    max_blades: int = 4
    autoscale: bool = False
    autoscaler: AutoscalerConfig = AutoscalerConfig()
    queue_capacity: int = 64
    batch_max: int = 1
    dispatch_overhead_s: float = 0.5
    faults: Optional[FleetFaultPlan] = None
    resilience: ResilienceConfig = ResilienceConfig()

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a serving run needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not (1 <= self.min_blades <= self.max_blades):
            raise ValueError("need 1 <= min_blades <= max_blades")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be >= 0")
        if self.faults is not None:
            for blade in self.faults.blades:
                if blade >= self.max_blades:
                    raise ValueError(
                        f"fault plan touches blade {blade} but the fleet "
                        f"has only {self.max_blades} blades"
                    )


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one serving run — deterministic and JSON-stable."""

    dispatch: str
    scheduler: str
    seed: int
    duration_s: float
    makespan: float                  # simulated time at full drain
    autoscale: bool
    summary: Dict[str, Any]          # the ServeStats ledger
    per_blade: Tuple[Dict[str, Any], ...]
    job_records: Tuple[Dict[str, Any], ...]
    autoscaler_events: Tuple[Tuple[float, str, int], ...]
    compilations: int
    lost_jobs: int
    # Kernel events processed by the run's Environment — deterministic
    # per config, so throughput benchmarks can report events per
    # wall-second for the serving loop too.
    events_processed: int = 0
    # Circuit-breaker transition log: (time, blade, from, to, reason).
    # Empty unless the resilience breaker is enabled.
    breaker_transitions: Tuple[Tuple[float, int, str, str, str], ...] = ()

    def digest_map(self) -> Dict[str, str]:
        """``source -> result digest`` for every completed job.

        Keyed by the job's stable source identity, not its admission
        ordinal: the map is invariant to dispatch policy, blade
        assignment, arrival interleaving and fault timing — two runs of
        the same tenants and seed agree on every key they share.
        """
        return {r["source"]: r["digest"] for r in self.job_records}

    def to_json(self) -> str:
        payload = {
            "dispatch": self.dispatch,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "duration_s": stable_round(self.duration_s),
            "makespan": stable_round(self.makespan),
            "autoscale": self.autoscale,
            "summary": self.summary,
            "per_blade": list(self.per_blade),
            "jobs": list(self.job_records),
            "autoscaler_events": [list(e) for e in self.autoscaler_events],
            "compilations": self.compilations,
            "lost_jobs": self.lost_jobs,
            "events_processed": self.events_processed,
            "breaker_transitions": [
                list(t) for t in self.breaker_transitions
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def summary_text(self) -> str:
        s = self.summary
        lines = [
            f"serving run: dispatch={self.dispatch} scheduler={self.scheduler}"
            f" seed={self.seed}"
            f" autoscale={'on' if self.autoscale else 'off'}",
            f"  horizon {self.duration_s:g} s, drained at "
            f"{self.makespan:.2f} s",
            f"  jobs: {s['arrivals']} offered, {s['admitted']} admitted, "
            f"{s['rejected']} rejected, {s['completed']} completed, "
            f"{s.get('cancelled', 0)} cancelled, {self.lost_jobs} lost",
            f"  latency p50/p95/p99: {s['latency_p50_s']:.2f} / "
            f"{s['latency_p95_s']:.2f} / {s['latency_p99_s']:.2f} s",
            f"  goodput {s['goodput_jps'] * 3600:.1f} jobs/h, "
            f"rejection rate {s['rejection_rate']:.1%}, "
            f"deadline misses {s['deadline_misses']}, "
            f"failovers {s['failovers']}",
        ]
        for b in self.per_blade:
            state = ("dead" if not b["alive"]
                     else "active" if b["active"] else "idle")
            lines.append(
                f"  blade{b['blade']}: {b['jobs']} jobs, "
                f"util {b['utilization']:.1%} ({state})"
            )
        if self.autoscaler_events:
            moves = ", ".join(
                f"{d} at {t:.0f}s -> {n}" for t, d, n in self.autoscaler_events
            )
            lines.append(f"  autoscaler: {moves}")
        return "\n".join(lines)


class Service:
    """Wires one serving run together inside an existing environment."""

    def __init__(
        self,
        env: Environment,
        config: ServeConfig,
        tracer=None,
        metrics=None,
    ) -> None:
        self.env = env
        self.config = config
        # A disabled tracer would still pay payload building at every
        # ``if self.tracer is not None`` hot site; normalize it to None
        # so observability-off runs skip the formatting entirely.
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = getattr(env, "profiler", None)
        self.stats = ServeStats(self.metrics)
        self.streams = RngStreams(config.seed).spawn("serve")
        self.compiler = JobCompiler(
            scheduler_by_name(config.scheduler), config.blade, config.seed
        )
        self.policy = resolve_dispatch(config.dispatch).factory()
        self.frontend = FrontEnd(
            env, self.stats, self._make_job,
            queue_capacity=config.queue_capacity,
            batch_max=config.batch_max,
            tracer=tracer,
        )
        n_start = config.min_blades if config.autoscale else config.max_blades
        self.blades = [
            BladeState(env, i, active=(i < n_start), tracer=tracer)
            for i in range(config.max_blades)
        ]
        self.stop = env.event()
        # Blade death events only ever fire from the fault plan's kill
        # and flap processes; without a plan _segment can wait on the
        # bare timeout instead of racing it against blade.death.
        self._can_die = config.faults is not None
        self.arrivals_done = False
        self.lost_jobs = 0
        self._job_seq = 0
        self.resilience = FleetResilience(
            env, config.resilience, config.max_blades,
            stats=self.stats, tracer=self.tracer,
        )
        self.autoscaler = (
            Autoscaler(self, config.autoscaler,
                       config.min_blades, config.max_blades)
            if config.autoscale else None
        )
        self.metrics.gauge(
            "serve.queue_capacity", help="admission bound on jobs in system"
        ).set(config.queue_capacity)
        self.metrics.gauge("serve.active_blades").set(n_start)
        self._main = None

    # -- construction helpers ---------------------------------------------
    def _compile(self, template: JobTemplate, variant: int):
        """Compile via the memoizing compiler, wall-timed when profiling.

        Compilation is synchronous (a real :func:`run_experiment` on a
        miss, a dict hit otherwise) so it is safe to wall-time.
        """
        prof = self.profiler
        if prof is None:
            return self.compiler.compile(template, variant)
        return prof.call(
            "serve.compile", self.compiler.compile, template, variant
        )

    def _make_job(
        self, tenant: TenantSpec, variant: int, source: str = "",
        template: Optional[JobTemplate] = None,
    ) -> Job:
        tpl = template if template is not None else tenant.template
        compiled = self._compile(tpl, variant)
        job = Job(
            job_id=self._job_seq,
            tenant=tenant.name,
            template=tpl,
            variant=variant,
            priority=tenant.priority,
            submit_time=self.env.now,
            source=source or f"{tenant.name}:adhoc:{self._job_seq}",
            deadline=(self.env.now + tenant.deadline_s
                      if tenant.deadline_s is not None else None),
            service_time=compiled.service_time,
            done=self.env.event(),
        )
        self._job_seq += 1
        return job

    def eligible(self) -> List[BladeState]:
        """Alive+active blades; reactivates alive blades in an emergency.

        With the circuit breaker enabled, blades whose breaker does not
        currently admit work are filtered out of the candidate set —
        unless that would empty it, in which case the unfiltered set is
        used (work is never stranded just because every breaker is
        open).
        """
        out = [b for b in self.blades if b.alive and b.active]
        if not out:
            alive = [b for b in self.blades if b.alive]
            for b in alive:
                b.active = True
            out = alive
        if self.config.resilience.breaker and out:
            admitted = [b for b in out if self.resilience.admits(b.index)]
            if admitted:
                return admitted
        return out

    # -- lifecycle ---------------------------------------------------------
    def start(self, arrivals: bool = True) -> None:
        """Spawn every process of the run.

        ``arrivals=False`` skips the tenant arrival generators and their
        watcher: an external driver (the workflow engine) submits jobs
        itself and must set ``arrivals_done`` + call ``_check_stop``
        when its last submission has been made.
        """
        env = self.env
        if arrivals:
            arrival_procs = []
            for tenant in self.config.tenants:
                arrival_procs.extend(tenant_generators(
                    env, tenant, self.streams, self.frontend.submit,
                    self.config.duration_s,
                ))
            env.process(self._arrivals_watcher(arrival_procs),
                        name="serve-arrivals")
        for b in self.blades:
            env.process(self._blade_loop(b), name=b.name)
        env.process(self._dispatch_loop(), name="serve-dispatcher")
        if self.autoscaler is not None:
            env.process(self.autoscaler.loop(), name="serve-autoscaler")
        if self.config.faults is not None:
            plan = self.config.faults
            # Fault randomness (slow-factor jitter) lives in its own
            # substream family keyed by the *plan* seed, so two plans
            # differing only in seed perturb nothing but the faults.
            fault_streams = RngStreams(plan.seed).spawn("fleet-faults")
            for kill in plan.kills:
                env.process(self._kill_proc(kill),
                            name=f"kill-blade{kill.blade}")
            for slow in plan.slows:
                env.process(self._slow_proc(slow, fault_streams),
                            name=f"slow-blade{slow.blade}")
            for flap in plan.flaps:
                env.process(self._flap_proc(flap),
                            name=f"flap-blade{flap.blade}")
            for degrade in plan.degrades:
                env.process(self._degrade_proc(degrade),
                            name=f"degrade-blade{degrade.blade}")
        self._main = env.process(self._wait_stop(), name="serve-main")

    def _wait_stop(self):
        yield self.stop

    def _arrivals_watcher(self, procs):
        yield self.env.all_of(procs)
        self.arrivals_done = True
        self._check_stop()

    def _check_stop(self) -> None:
        if (self.arrivals_done and self.frontend.in_system <= 0
                and not self.stop.triggered):
            self.stop.succeed()

    # -- cancellation ------------------------------------------------------
    def cancel_job(self, job: Job, actor: str = "workflow") -> bool:
        """Cancel one admitted-but-not-yet-running job (bootstop path).

        Jobs already running, finished, aborted or cancelled are left
        alone — an in-flight bootstrap replicate completes normally, as
        in autoMRE.  A successful cancel releases the job's slot in the
        bounded system queue and resolves its ``done`` event, keeping
        conservation exact: admitted = completed + cancelled + aborted
        + lost.  Returns True when the job was actually cancelled.
        """
        if (job.finish_time is not None or job.aborted or job.cancelled
                or job.start_time is not None):
            return False
        job.cancelled = True
        self.stats.note_cancelled(job)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", actor, "workflow-cancel",
                job=job.job_id, tenant=job.tenant, source=job.source,
            )
        self.frontend.job_finished()
        if job.done is not None and not job.done.triggered:
            job.done.succeed()
        self._check_stop()
        return True

    def purge_cancelled_units(self) -> int:
        """Sweep fully-cancelled queued units off every blade queue.

        Called once after a batch of :meth:`cancel_job` calls so drained
        fan-outs stop occupying blade queues (and never charge dispatch
        overhead).  Jobs still in the front-end heap are deleted lazily
        by :meth:`FrontEnd.pop_unit`.
        """
        return sum(b.purge_cancelled() for b in self.blades)

    # -- dispatch ----------------------------------------------------------
    def _dispatch_loop(self):
        env = self.env
        while True:
            while self.frontend.pending:
                blades = self.eligible()
                if not blades:
                    # Total fleet loss: shed explicitly, never hang.
                    unit = self.frontend.pop_unit()
                    if unit is None:
                        break
                    self._lose_unit(unit)
                    continue
                unit = self.frontend.pop_unit()
                if unit is None:
                    break
                blade = self.policy.select(unit, blades)
                self._place(unit, blade)
            if self.stop.triggered:
                return
            wake = self.frontend.wake
            if wake.triggered:
                self.frontend.wake = env.event()
                continue
            yield env.any_of([wake, self.stop])
            if self.stop.triggered:
                return
            self.frontend.wake = env.event()

    def _place(self, unit: DispatchUnit, blade: BladeState) -> None:
        now = self.env.now
        for job in unit.jobs:
            if job.dispatch_time is None:
                job.dispatch_time = now
        if self.resilience.is_probe_dispatch(blade.index):
            unit.probe = True
            self.resilience.note_probe_dispatched(blade.index)
        blade.push(unit)
        queued = self.frontend.pending + sum(
            b.queue_depth for b in self.blades
        )
        self.stats.note_dispatch(queued)
        if self.profiler is not None:
            self.profiler.count("serve.dispatches")
        if self.tracer is not None:
            self.tracer.emit(
                now, "serve", "dispatcher", "dispatch",
                unit=unit.seq, blade=blade.index,
                jobs=tuple(j.job_id for j in unit.jobs),
            )

    def redispatch(self, units: List[DispatchUnit]) -> None:
        """Re-place orphaned units; kick the dispatcher afterwards."""
        for unit in units:
            if unit.cancelled:
                continue
            blades = self.eligible()
            if not blades:
                if unit.twin is not None:
                    # The other hedge copy still holds these jobs.
                    self._drop_copy(unit)
                    continue
                self._lose_unit(unit)
                continue
            blade = self.policy.select(unit, blades)
            self._place(unit, blade)
        if self.frontend.pending and not self.frontend.wake.triggered:
            self.frontend.wake.succeed()

    def _lose_unit(self, unit: DispatchUnit) -> None:
        for job in unit.jobs:
            if job.finish_time is not None or job.aborted or job.cancelled:
                continue  # already accounted; nothing left to lose
            self.lost_jobs += 1
            self.metrics.counter(
                "serve.lost", help="jobs lost to total fleet failure"
            ).inc()
            if self.tracer is not None:
                self.tracer.emit(self.env.now, "serve", "fleet", "lost",
                                 job=job.job_id, tenant=job.tenant)
            self.frontend.job_finished()
            if job.done is not None and not job.done.triggered:
                job.done.succeed()
        self._check_stop()

    # -- blades ------------------------------------------------------------
    def _segment(self, blade: BladeState, duration: float):
        """Busy-wait ``duration`` unless the blade dies; True = died."""
        if not self._can_die:
            yield self.env.timeout(duration)
            return False
        if blade.death.triggered:
            return True
        timeout = self.env.timeout(duration)
        fired = yield self.env.any_of([timeout, blade.death])
        return fired is blade.death

    def _blade_loop(self, b: BladeState):
        env = self.env
        cfg = self.config
        res = self.resilience
        while True:
            if not b.alive:
                return
            unit = b.pop_next() if b.active else None
            if unit is None and b.active:
                unit = self.policy.steal(b, self.eligible())
                if unit is not None and self.tracer is not None:
                    self.tracer.emit(env.now, "serve", b.name, "steal",
                                     unit=unit.seq, victim=unit.blade)
                if (unit is not None and unit.probe
                        and unit.blade != b.index):
                    # A probe stolen off a half-open blade is no longer
                    # a probe; release that blade's probe slot.
                    unit.probe = False
                    res.probe_inflight[unit.blade] = False
            if unit is not None and unit.cancelled:
                continue
            if unit is None:
                if self.stop.triggered:
                    return
                if b.wake.triggered:
                    b.wake = env.event()
                yield env.any_of([b.wake, b.death, self.stop])
                continue
            unit.attempts += 1
            unit.blade = b.index
            b.running = unit
            b.units_run += 1
            b.mark_busy()
            if cfg.resilience.enforce_deadlines:
                self._shed_unreachable(unit, b)
            pending = [j for j in unit.jobs
                       if j.finish_time is None and not j.aborted
                       and not j.cancelled]
            # Expected (nominal) duration excludes slow factors and link
            # delay on purpose: the observed/expected ratio fed to the
            # health EWMA must surface exactly those pathologies.
            expected = cfg.dispatch_overhead_s + sum(
                j.service_time for j in pending
            )
            picked_at = env.now
            overhead = cfg.dispatch_overhead_s * b.slow_factor \
                + b.dispatch_delay_s
            b.busy_until = env.now + overhead + sum(
                j.service_time * b.slow_factor for j in pending
            )
            if self.tracer is not None:
                # Unit pickup: closes the blade-queue phase of every job
                # in the unit and opens the dispatch-overhead phase.
                self.tracer.emit(env.now, "serve", b.name, "unit-start",
                                 unit=unit.seq,
                                 jobs=tuple(j.job_id for j in unit.jobs))
            if (cfg.resilience.hedging and pending
                    and unit.twin is None and not unit.probe):
                env.process(self._hedge_watch(unit, b),
                            name=f"hedge-watch-{unit.seq}")
            died = yield from self._segment(b, overhead)
            completed_any = False
            idx = 0
            while not died and idx < len(unit.jobs):
                if unit.cancelled:
                    break
                job = unit.jobs[idx]
                if job.finish_time is not None or job.aborted or job.cancelled:
                    idx += 1
                    continue
                job.start_time = env.now
                job.blade = b.index
                if self.tracer is not None:
                    self.tracer.emit(env.now, "serve", b.name, "start",
                                     job=job.job_id, tenant=job.tenant)
                died = yield from self._segment(
                    b, job.service_time * b.slow_factor
                )
                if died:
                    break
                # First completion wins: the twin may have finished this
                # job while our segment was in flight.
                if job.finish_time is None and not job.aborted:
                    self._complete(job, b)
                    completed_any = True
                idx += 1
            b.mark_idle()
            b.running = None
            b.busy_until = env.now
            if died:
                self._on_blade_death(b, unit, idx)
                return
            if unit.cancelled:
                # Hedge loser: the twin finished everything.  Feed the
                # elapsed-time ratio only when it is genuinely overdue
                # (a loser cancelled early says nothing about health).
                if expected > 0:
                    ratio = (env.now - picked_at) / expected
                    if ratio > 1.0:
                        res.note_unit_cancelled(b.index, ratio,
                                                probe=unit.probe)
                continue
            if unit.twin is not None:
                self._cancel_twin(unit, b)
            if unit.hedge_of is not None and completed_any:
                res.note_hedge_win()
                if self.tracer is not None:
                    self.tracer.emit(env.now, "serve", b.name, "hedge-win",
                                     unit=unit.seq, primary=unit.hedge_of)
            if expected > 0:
                res.note_unit_done(b.index, (env.now - picked_at) / expected,
                                   probe=unit.probe)
            # Clean completion with no other holder (no live twin, no
            # hedge watcher possible, not a breaker probe): hand the
            # unit back for reuse.  Hedging keeps detached watcher
            # processes around that compare unit identity, so pooling
            # is off while it is enabled.
            if (unit.twin is None and unit.hedge_of is None
                    and not unit.probe and not cfg.resilience.hedging):
                self.frontend.recycle_unit(unit)

    def _shed_unreachable(self, unit: DispatchUnit, b: BladeState) -> None:
        """Deadline enforcement: abort jobs that cannot finish in time.

        Estimated with *nominal* durations (optimistic — a straggler
        blade's slowdown is not held against the job), so only jobs
        unreachable even at full speed are shed.
        """
        t = self.env.now + self.config.dispatch_overhead_s
        for job in unit.jobs:
            if job.finish_time is not None or job.aborted or job.cancelled:
                continue
            t += job.service_time
            if job.deadline is not None and t > job.deadline:
                self._abort_job(job, b)

    def _abort_job(self, job: Job, b: BladeState) -> None:
        job.aborted = True
        self.stats.note_deadline_abort(job)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", b.name, "deadline-abort",
                job=job.job_id, tenant=job.tenant,
                deadline=round(job.deadline, 9),
            )
        self.frontend.job_finished()
        if job.done is not None and not job.done.triggered:
            job.done.succeed()
        self._check_stop()

    def _hedge_watch(self, unit: DispatchUnit, b: BladeState):
        """Clone ``unit`` to a healthy blade if it overstays its welcome."""
        env = self.env
        expected = self.config.dispatch_overhead_s + sum(
            j.service_time for j in unit.jobs
            if j.finish_time is None and not j.aborted
        )
        if expected <= 0:
            return
        threshold = self.resilience.hedge_threshold_s(expected)
        yield env.any_of([env.timeout(threshold), b.death, self.stop])
        if self.stop.triggered:
            return
        if b.running is not unit or not b.alive:
            return  # finished, died (death path requeues) or was cancelled
        if unit.twin is not None or unit.cancelled:
            return
        pending = [j for j in unit.jobs
                   if j.finish_time is None and not j.aborted]
        if not pending:
            return
        targets = [x for x in self.eligible() if x.index != b.index]
        if not targets:
            return
        target = min(targets, key=lambda x: (x.backlog_s, x.index))
        clone = DispatchUnit(
            seq=self.frontend.new_unit_seq(),
            jobs=list(unit.jobs),
            hedge_of=unit.seq,
        )
        unit.twin = clone
        clone.twin = unit
        self.resilience.note_hedge()
        if self.tracer is not None:
            self.tracer.emit(
                env.now, "serve", "dispatcher", "hedge",
                unit=unit.seq, clone=clone.seq,
                straggler=b.index, target=target.index,
                threshold=round(threshold, 9),
            )
        self._place(clone, target)

    def _cancel_twin(self, winner: DispatchUnit, b: BladeState) -> None:
        """First completion wins: tear the losing copy down.

        A queued loser is removed outright; a running loser notices its
        ``cancelled`` flag at the next segment boundary (its per-job
        completion guards already make any overlap harmless).
        """
        loser = winner.twin
        winner.twin = None
        if loser is None:
            return
        loser.twin = None
        loser.cancelled = True
        for blade in self.blades:
            if loser in blade.queue:
                blade.queue.remove(loser)
                break
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", b.name, "hedge-cancel",
                unit=winner.seq, loser=loser.seq,
            )

    def _complete(self, job: Job, b: BladeState) -> None:
        if job.finish_time is not None or job.aborted:
            return
        compiled = self._compile(job.template, job.variant)
        job.finish_time = self.env.now
        job.digest = compiled.digest
        b.jobs_run += 1
        self.stats.note_completed(job)
        if self.profiler is not None:
            self.profiler.count("serve.jobs_completed")
        self.frontend.job_finished()
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", b.name, "finish",
                job=job.job_id, tenant=job.tenant,
                latency=round(job.latency, 9),
                missed=job.missed_deadline,
            )
        if job.done is not None and not job.done.triggered:
            job.done.succeed()
        self._check_stop()

    def _drop_copy(self, unit: DispatchUnit) -> None:
        """Unlink one copy of a hedged pair; the other copy carries on.

        The survivor keeps ``twin is None``, so if *it* later dies too,
        the normal failover path requeues its jobs — nothing is lost.
        """
        other = unit.twin
        unit.twin = None
        if other is not None:
            other.twin = None

    def _on_blade_death(self, b: BladeState, unit: DispatchUnit,
                        idx: int) -> None:
        remaining = [j for j in unit.jobs[idx:]
                     if j.finish_time is None and not j.aborted
                     and not j.cancelled]
        orphans: List[DispatchUnit] = []
        if unit.twin is not None:
            # The other hedge copy is still live somewhere: drop this
            # one instead of requeueing duplicate work.
            self._drop_copy(unit)
        elif remaining and not unit.cancelled:
            for job in remaining:
                job.failovers += 1
                job.start_time = None
                job.blade = None
                self.stats.note_failover(job)
            unit.jobs[:] = remaining
            unit.blade = None
            orphans.append(unit)
        for queued in b.drain():
            if queued.twin is not None:
                self._drop_copy(queued)
                continue
            if queued.cancelled:
                continue
            live = [j for j in queued.jobs
                    if j.finish_time is None and not j.aborted
                    and not j.cancelled]
            if not live:
                continue  # fully workflow-cancelled; nothing to rescue
            for job in live:
                job.failovers += 1
                self.stats.note_failover(job)
            queued.jobs[:] = live
            queued.blade = None
            orphans.append(queued)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", b.name, "failover",
                jobs=tuple(j.job_id for u in orphans for j in u.jobs),
            )
        self.redispatch(orphans)

    def _drain_idle_orphans(self, b: BladeState) -> None:
        """Requeue a dead blade's queue when no blade loop will.

        The blade loop's death path only runs when a unit was in flight;
        a blade killed while idle needs its queued units rescued here.
        """
        if b.running is not None:
            return
        orphans: List[DispatchUnit] = []
        for queued in b.drain():
            if queued.twin is not None:
                self._drop_copy(queued)
                continue
            if queued.cancelled:
                continue
            live = [j for j in queued.jobs
                    if j.finish_time is None and not j.aborted
                    and not j.cancelled]
            if not live:
                continue  # fully workflow-cancelled; nothing to rescue
            for job in live:
                job.failovers += 1
                self.stats.note_failover(job)
            queued.jobs[:] = live
            queued.blade = None
            orphans.append(queued)
        if orphans:
            if self.tracer is not None:
                self.tracer.emit(
                    self.env.now, "serve", b.name, "failover",
                    jobs=tuple(j.job_id for u in orphans for j in u.jobs),
                )
            self.redispatch(orphans)

    def _kill_proc(self, kill):
        env = self.env
        fired = yield env.any_of([env.timeout(kill.at), self.stop])
        if self.stop.triggered:
            return
        b = self.blades[kill.blade]
        if not b.alive:
            return
        self.metrics.counter(
            "serve.blade_deaths", help="node-level kills delivered"
        ).inc()
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "blade-kill",
                             blade=b.index)
        b.kill()
        self.resilience.note_failure(b.index)
        self._drain_idle_orphans(b)
        self.metrics.gauge("serve.active_blades").set(
            len([x for x in self.blades if x.alive and x.active])
        )

    def _slow_proc(self, slow, streams: RngStreams):
        env = self.env
        yield env.any_of([env.timeout(slow.at), self.stop])
        if self.stop.triggered:
            return
        b = self.blades[slow.blade]
        if not b.alive:
            return
        factor = slow.factor
        if slow.jitter > 0:
            rng = streams.stream(f"slow:blade{slow.blade}")
            factor = max(1.0, factor * float(rng.lognormal(0.0, slow.jitter)))
        b.slow_factor = factor
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "blade-slow",
                             blade=b.index, factor=round(factor, 9))
        if slow.duration is None:
            return
        yield env.any_of([env.timeout(slow.duration), b.death, self.stop])
        b.slow_factor = 1.0
        if self.stop.triggered or not b.alive:
            return
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "blade-recover",
                             blade=b.index)

    def _degrade_proc(self, degrade):
        env = self.env
        yield env.any_of([env.timeout(degrade.at), self.stop])
        if self.stop.triggered:
            return
        b = self.blades[degrade.blade]
        b.dispatch_delay_s = degrade.added_latency_s
        if self.tracer is not None:
            self.tracer.emit(
                env.now, "serve", "fleet", "link-degrade",
                blade=b.index,
                added_latency_s=round(degrade.added_latency_s, 9),
            )
        if degrade.duration is None:
            return
        yield env.any_of([env.timeout(degrade.duration), self.stop])
        b.dispatch_delay_s = 0.0
        if self.stop.triggered:
            return
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "link-restore",
                             blade=b.index)

    def _flap_proc(self, flap):
        env = self.env
        yield env.any_of([env.timeout(flap.at), self.stop])
        if self.stop.triggered:
            return
        b = self.blades[flap.blade]
        if not b.alive:
            return
        self.stats.note_crash(b.index)
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "blade-flap",
                             blade=b.index, down_s=round(flap.down_s, 9))
        b.kill()
        self.resilience.note_failure(b.index)
        self._drain_idle_orphans(b)
        self.metrics.gauge("serve.active_blades").set(
            len([x for x in self.blades if x.alive and x.active])
        )
        yield env.any_of([env.timeout(flap.down_s), self.stop])
        if self.stop.triggered:
            return
        b.rejoin()
        b.slow_factor = 1.0
        self.stats.note_rejoin(b.index)
        self.resilience.note_rejoin(b.index)
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "blade-rejoin",
                             blade=b.index)
        env.process(self._blade_loop(b), name=f"{b.name}-rejoin")
        self.metrics.gauge("serve.active_blades").set(
            len([x for x in self.blades if x.alive and x.active])
        )
        if self.frontend.pending and not self.frontend.wake.triggered:
            self.frontend.wake.succeed()

    # -- reporting ---------------------------------------------------------
    def result(self) -> ServeResult:
        makespan = self.env.now
        duration = makespan if makespan > 0 else 1.0
        summary = self.stats.publish(duration)
        summary["lost"] = self.lost_jobs
        per_blade = tuple(
            {
                "blade": b.index,
                "jobs": b.jobs_run,
                "units": b.units_run,
                "busy_s": stable_round(b.busy_s()),
                "utilization": stable_round(
                    b.busy_s() / duration if duration > 0 else 0.0
                ),
                "alive": b.alive,
                "active": b.active,
            }
            for b in self.blades
        )
        job_records = tuple(
            {
                "job_id": j.job_id,
                "source": j.source,
                "tenant": j.tenant,
                "template": j.template.name,
                "variant": j.variant,
                "submit": stable_round(j.submit_time),
                "start": stable_round(j.start_time),
                "finish": stable_round(j.finish_time),
                "latency": stable_round(j.latency),
                "blade": j.blade,
                "failovers": j.failovers,
                "missed_deadline": j.missed_deadline,
                "digest": j.digest,
            }
            for j in sorted(self.stats.completed_jobs,
                            key=lambda j: j.job_id)
        )
        return ServeResult(
            dispatch=self.config.dispatch,
            scheduler=self.config.scheduler,
            seed=self.config.seed,
            duration_s=self.config.duration_s,
            makespan=makespan,
            autoscale=self.config.autoscale,
            summary=summary,
            per_blade=per_blade,
            job_records=job_records,
            autoscaler_events=tuple(
                self.autoscaler.events
            ) if self.autoscaler is not None else (),
            compilations=self.compiler.compilations,
            lost_jobs=self.lost_jobs,
            events_processed=self.env.events_processed,
            breaker_transitions=tuple(
                (stable_round(t), blade, a, b, reason)
                for t, blade, a, b, reason in self.resilience.transitions
            ),
        )


def run_service(
    config: ServeConfig,
    tracer=None,
    metrics=None,
    profiler=None,
) -> ServeResult:
    """Execute one serving run to full drain; deterministic per config.

    Pass a :class:`~repro.obs.profile.Profiler` to wall-time the fleet
    loop (dispatch counts, compile cost, kernel event dispatch);
    profiling never changes the simulated outcome.
    """
    env = Environment(tracer=tracer, metrics=metrics, profiler=profiler)
    if profiler is not None and tracer is not None:
        tracer.profiler = profiler
    service = Service(env, config, tracer=tracer, metrics=metrics)
    service.start()
    if profiler is None:
        env.run_until_complete(service._main)
    else:
        with profiler.section("run.simulate"):
            env.run_until_complete(service._main)
        profiler.set_count("sim.events_processed", env.events_processed)
    return service.result()
