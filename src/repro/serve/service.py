"""The serving loop: tenants -> admission -> dispatch -> blade fleet.

:func:`run_service` is the subsystem's entry point — the serving-layer
analogue of :func:`~repro.core.runner.run_experiment`::

    from repro.serve import ServeConfig, default_tenants, run_service

    cfg = ServeConfig(tenants=default_tenants(), duration_s=3600, seed=7)
    result = run_service(cfg)
    print(result.summary["latency_p99_s"])

One discrete-event environment hosts every moving part: tenant arrival
generators feed the :class:`~repro.serve.admission.FrontEnd`, a
dispatcher drains its priority queue through the configured
:class:`~repro.serve.dispatch.DispatchPolicy` onto
:class:`~repro.serve.fleet.BladeState` queues, blade loops execute
dispatch units (service demand and result digest both come from real
:func:`run_experiment` runs, memoized per bag by the
:class:`~repro.serve.fleet.JobCompiler`), the optional
:class:`~repro.serve.autoscaler.Autoscaler` resizes the active blade
set, and node-level :class:`~repro.serve.fleet.FleetFaultPlan` kills
exercise queued-job failover.  Everything stochastic draws from named
:class:`~repro.sim.rng.RngStreams` substreams of one root seed, so a
run is bit-reproducible end to end: two runs of the same config produce
identical event logs, identical percentiles, identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cell.params import BladeParams
from ..obs.metrics import NULL_REGISTRY, stable_round
from ..sim.engine import Environment
from ..sim.rng import RngStreams
from .admission import DispatchUnit, FrontEnd
from .autoscaler import Autoscaler, AutoscalerConfig
from .dispatch import resolve_dispatch
from .fleet import (
    BladeState,
    FleetFaultPlan,
    JobCompiler,
    scheduler_by_name,
)
from .jobs import Job, JobTemplate, TenantSpec
from .generators import tenant_generators
from .slo import ServeStats

__all__ = ["ServeConfig", "ServeResult", "Service", "run_service",
           "default_tenants"]


def default_tenants(arrival_rate: float = 0.02,
                    n_tenants: int = 3) -> Tuple[TenantSpec, ...]:
    """A standard mixed-tenant population for demos, benches and tests.

    ``arrival_rate`` scales the open-loop tenant; ``n_tenants`` trims
    the mix (1 = open-loop only, 2 = + closed-loop, 3 = + bursty).
    """
    small = JobTemplate("small-bag", bootstraps=2, tasks_per_bootstrap=60,
                        variants=2)
    medium = JobTemplate("medium-bag", bootstraps=3, tasks_per_bootstrap=100,
                         variants=2)
    mix = (
        TenantSpec("genomics", small, arrival="poisson",
                   arrival_rate=arrival_rate, priority=1,
                   deadline_s=900.0),
        TenantSpec("proteomics", medium, arrival="closed", clients=2,
                   think_time_s=180.0),
        TenantSpec("metagenomics", small, arrival="bursty", burst_size=3,
                   burst_interval_s=600.0, rate_limit=0.05, burst=4),
    )
    if not (1 <= n_tenants <= len(mix)):
        raise ValueError(f"n_tenants must be in 1..{len(mix)}")
    return mix[:n_tenants]


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run depends on, in one frozen record."""

    tenants: Tuple[TenantSpec, ...]
    duration_s: float = 3600.0        # arrival horizon; the run drains after
    seed: int = 0
    dispatch: str = "static-block"
    scheduler: str = "mgps"           # blade-level scheduler for job bags
    blade: BladeParams = BladeParams(n_cells=2)
    min_blades: int = 2
    max_blades: int = 4
    autoscale: bool = False
    autoscaler: AutoscalerConfig = AutoscalerConfig()
    queue_capacity: int = 64
    batch_max: int = 1
    dispatch_overhead_s: float = 0.5
    faults: Optional[FleetFaultPlan] = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a serving run needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not (1 <= self.min_blades <= self.max_blades):
            raise ValueError("need 1 <= min_blades <= max_blades")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be >= 0")
        if self.faults is not None:
            for k in self.faults.kills:
                if k.blade >= self.max_blades:
                    raise ValueError(
                        f"fault plan kills blade {k.blade} but the fleet "
                        f"has only {self.max_blades} blades"
                    )


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one serving run — deterministic and JSON-stable."""

    dispatch: str
    scheduler: str
    seed: int
    duration_s: float
    makespan: float                  # simulated time at full drain
    autoscale: bool
    summary: Dict[str, Any]          # the ServeStats ledger
    per_blade: Tuple[Dict[str, Any], ...]
    job_records: Tuple[Dict[str, Any], ...]
    autoscaler_events: Tuple[Tuple[float, str, int], ...]
    compilations: int
    lost_jobs: int
    # Kernel events processed by the run's Environment — deterministic
    # per config, so throughput benchmarks can report events per
    # wall-second for the serving loop too.
    events_processed: int = 0

    def digest_map(self) -> Dict[str, str]:
        """``source -> result digest`` for every completed job.

        Keyed by the job's stable source identity, not its admission
        ordinal: the map is invariant to dispatch policy, blade
        assignment, arrival interleaving and fault timing — two runs of
        the same tenants and seed agree on every key they share.
        """
        return {r["source"]: r["digest"] for r in self.job_records}

    def to_json(self) -> str:
        payload = {
            "dispatch": self.dispatch,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "duration_s": stable_round(self.duration_s),
            "makespan": stable_round(self.makespan),
            "autoscale": self.autoscale,
            "summary": self.summary,
            "per_blade": list(self.per_blade),
            "jobs": list(self.job_records),
            "autoscaler_events": [list(e) for e in self.autoscaler_events],
            "compilations": self.compilations,
            "lost_jobs": self.lost_jobs,
            "events_processed": self.events_processed,
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def summary_text(self) -> str:
        s = self.summary
        lines = [
            f"serving run: dispatch={self.dispatch} scheduler={self.scheduler}"
            f" seed={self.seed}"
            f" autoscale={'on' if self.autoscale else 'off'}",
            f"  horizon {self.duration_s:g} s, drained at "
            f"{self.makespan:.2f} s",
            f"  jobs: {s['arrivals']} offered, {s['admitted']} admitted, "
            f"{s['rejected']} rejected, {s['completed']} completed, "
            f"{self.lost_jobs} lost",
            f"  latency p50/p95/p99: {s['latency_p50_s']:.2f} / "
            f"{s['latency_p95_s']:.2f} / {s['latency_p99_s']:.2f} s",
            f"  goodput {s['goodput_jps'] * 3600:.1f} jobs/h, "
            f"rejection rate {s['rejection_rate']:.1%}, "
            f"deadline misses {s['deadline_misses']}, "
            f"failovers {s['failovers']}",
        ]
        for b in self.per_blade:
            state = ("dead" if not b["alive"]
                     else "active" if b["active"] else "idle")
            lines.append(
                f"  blade{b['blade']}: {b['jobs']} jobs, "
                f"util {b['utilization']:.1%} ({state})"
            )
        if self.autoscaler_events:
            moves = ", ".join(
                f"{d} at {t:.0f}s -> {n}" for t, d, n in self.autoscaler_events
            )
            lines.append(f"  autoscaler: {moves}")
        return "\n".join(lines)


class Service:
    """Wires one serving run together inside an existing environment."""

    def __init__(
        self,
        env: Environment,
        config: ServeConfig,
        tracer=None,
        metrics=None,
    ) -> None:
        self.env = env
        self.config = config
        # A disabled tracer would still pay payload building at every
        # ``if self.tracer is not None`` hot site; normalize it to None
        # so observability-off runs skip the formatting entirely.
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = getattr(env, "profiler", None)
        self.stats = ServeStats(self.metrics)
        self.streams = RngStreams(config.seed).spawn("serve")
        self.compiler = JobCompiler(
            scheduler_by_name(config.scheduler), config.blade, config.seed
        )
        self.policy = resolve_dispatch(config.dispatch).factory()
        self.frontend = FrontEnd(
            env, self.stats, self._make_job,
            queue_capacity=config.queue_capacity,
            batch_max=config.batch_max,
            tracer=tracer,
        )
        n_start = config.min_blades if config.autoscale else config.max_blades
        self.blades = [
            BladeState(env, i, active=(i < n_start), tracer=tracer)
            for i in range(config.max_blades)
        ]
        self.stop = env.event()
        self.arrivals_done = False
        self.lost_jobs = 0
        self._job_seq = 0
        self.autoscaler = (
            Autoscaler(self, config.autoscaler,
                       config.min_blades, config.max_blades)
            if config.autoscale else None
        )
        self.metrics.gauge(
            "serve.queue_capacity", help="admission bound on jobs in system"
        ).set(config.queue_capacity)
        self.metrics.gauge("serve.active_blades").set(n_start)
        self._main = None

    # -- construction helpers ---------------------------------------------
    def _compile(self, template: JobTemplate, variant: int):
        """Compile via the memoizing compiler, wall-timed when profiling.

        Compilation is synchronous (a real :func:`run_experiment` on a
        miss, a dict hit otherwise) so it is safe to wall-time.
        """
        prof = self.profiler
        if prof is None:
            return self.compiler.compile(template, variant)
        return prof.call(
            "serve.compile", self.compiler.compile, template, variant
        )

    def _make_job(
        self, tenant: TenantSpec, variant: int, source: str = ""
    ) -> Job:
        compiled = self._compile(tenant.template, variant)
        job = Job(
            job_id=self._job_seq,
            tenant=tenant.name,
            template=tenant.template,
            variant=variant,
            priority=tenant.priority,
            submit_time=self.env.now,
            source=source or f"{tenant.name}:adhoc:{self._job_seq}",
            deadline=(self.env.now + tenant.deadline_s
                      if tenant.deadline_s is not None else None),
            service_time=compiled.service_time,
            done=self.env.event(),
        )
        self._job_seq += 1
        return job

    def eligible(self) -> List[BladeState]:
        """Alive+active blades; reactivates alive blades in an emergency."""
        out = [b for b in self.blades if b.alive and b.active]
        if not out:
            alive = [b for b in self.blades if b.alive]
            for b in alive:
                b.active = True
            out = alive
        return out

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        env = self.env
        arrival_procs = []
        for tenant in self.config.tenants:
            arrival_procs.extend(tenant_generators(
                env, tenant, self.streams, self.frontend.submit,
                self.config.duration_s,
            ))
        env.process(self._arrivals_watcher(arrival_procs),
                    name="serve-arrivals")
        for b in self.blades:
            env.process(self._blade_loop(b), name=b.name)
        env.process(self._dispatch_loop(), name="serve-dispatcher")
        if self.autoscaler is not None:
            env.process(self.autoscaler.loop(), name="serve-autoscaler")
        if self.config.faults is not None:
            for kill in self.config.faults.kills:
                env.process(self._kill_proc(kill),
                            name=f"kill-blade{kill.blade}")
        self._main = env.process(self._wait_stop(), name="serve-main")

    def _wait_stop(self):
        yield self.stop

    def _arrivals_watcher(self, procs):
        yield self.env.all_of(procs)
        self.arrivals_done = True
        self._check_stop()

    def _check_stop(self) -> None:
        if (self.arrivals_done and self.frontend.in_system <= 0
                and not self.stop.triggered):
            self.stop.succeed()

    # -- dispatch ----------------------------------------------------------
    def _dispatch_loop(self):
        env = self.env
        while True:
            while self.frontend.pending:
                blades = self.eligible()
                if not blades:
                    # Total fleet loss: shed explicitly, never hang.
                    unit = self.frontend.pop_unit()
                    self._lose_unit(unit)
                    continue
                unit = self.frontend.pop_unit()
                blade = self.policy.select(unit, blades)
                self._place(unit, blade)
            if self.stop.triggered:
                return
            wake = self.frontend.wake
            if wake.triggered:
                self.frontend.wake = env.event()
                continue
            yield env.any_of([wake, self.stop])
            if self.stop.triggered:
                return
            self.frontend.wake = env.event()

    def _place(self, unit: DispatchUnit, blade: BladeState) -> None:
        now = self.env.now
        for job in unit.jobs:
            if job.dispatch_time is None:
                job.dispatch_time = now
        blade.push(unit)
        queued = self.frontend.pending + sum(
            b.queue_depth for b in self.blades
        )
        self.stats.note_dispatch(queued)
        if self.profiler is not None:
            self.profiler.count("serve.dispatches")
        if self.tracer is not None:
            self.tracer.emit(
                now, "serve", "dispatcher", "dispatch",
                unit=unit.seq, blade=blade.index,
                jobs=tuple(j.job_id for j in unit.jobs),
            )

    def redispatch(self, units: List[DispatchUnit]) -> None:
        """Re-place orphaned units; kick the dispatcher afterwards."""
        for unit in units:
            blades = self.eligible()
            if not blades:
                self._lose_unit(unit)
                continue
            blade = self.policy.select(unit, blades)
            self._place(unit, blade)
        if self.frontend.pending and not self.frontend.wake.triggered:
            self.frontend.wake.succeed()

    def _lose_unit(self, unit: DispatchUnit) -> None:
        for job in unit.jobs:
            self.lost_jobs += 1
            self.metrics.counter(
                "serve.lost", help="jobs lost to total fleet failure"
            ).inc()
            if self.tracer is not None:
                self.tracer.emit(self.env.now, "serve", "fleet", "lost",
                                 job=job.job_id, tenant=job.tenant)
            self.frontend.job_finished()
            if job.done is not None and not job.done.triggered:
                job.done.succeed()
        self._check_stop()

    # -- blades ------------------------------------------------------------
    def _segment(self, blade: BladeState, duration: float):
        """Busy-wait ``duration`` unless the blade dies; True = died."""
        if blade.death.triggered:
            return True
        timeout = self.env.timeout(duration)
        fired = yield self.env.any_of([timeout, blade.death])
        return fired is blade.death

    def _blade_loop(self, b: BladeState):
        env = self.env
        cfg = self.config
        while True:
            if not b.alive:
                return
            unit = b.pop_next() if b.active else None
            if unit is None and b.active:
                unit = self.policy.steal(b, self.eligible())
                if unit is not None and self.tracer is not None:
                    self.tracer.emit(env.now, "serve", b.name, "steal",
                                     unit=unit.seq, victim=unit.blade)
            if unit is None:
                if self.stop.triggered:
                    return
                if b.wake.triggered:
                    b.wake = env.event()
                yield env.any_of([b.wake, b.death, self.stop])
                continue
            unit.attempts += 1
            unit.blade = b.index
            b.running = unit
            b.units_run += 1
            b.mark_busy()
            b.busy_until = env.now + cfg.dispatch_overhead_s + unit.service_time
            if self.tracer is not None:
                # Unit pickup: closes the blade-queue phase of every job
                # in the unit and opens the dispatch-overhead phase.
                self.tracer.emit(env.now, "serve", b.name, "unit-start",
                                 unit=unit.seq,
                                 jobs=tuple(j.job_id for j in unit.jobs))
            died = yield from self._segment(b, cfg.dispatch_overhead_s)
            idx = 0
            while not died and idx < len(unit.jobs):
                job = unit.jobs[idx]
                job.start_time = env.now
                job.blade = b.index
                if self.tracer is not None:
                    self.tracer.emit(env.now, "serve", b.name, "start",
                                     job=job.job_id, tenant=job.tenant)
                died = yield from self._segment(b, job.service_time)
                if died:
                    break
                self._complete(job, b)
                idx += 1
            b.mark_idle()
            b.running = None
            b.busy_until = env.now
            if died:
                self._on_blade_death(b, unit, idx)
                return

    def _complete(self, job: Job, b: BladeState) -> None:
        compiled = self._compile(job.template, job.variant)
        job.finish_time = self.env.now
        job.digest = compiled.digest
        b.jobs_run += 1
        self.stats.note_completed(job)
        if self.profiler is not None:
            self.profiler.count("serve.jobs_completed")
        self.frontend.job_finished()
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", b.name, "finish",
                job=job.job_id, tenant=job.tenant,
                latency=round(job.latency, 9),
                missed=job.missed_deadline,
            )
        if job.done is not None and not job.done.triggered:
            job.done.succeed()
        self._check_stop()

    def _on_blade_death(self, b: BladeState, unit: DispatchUnit,
                        idx: int) -> None:
        remaining = list(unit.jobs[idx:])
        orphans: List[DispatchUnit] = []
        if remaining:
            for job in remaining:
                job.failovers += 1
                job.start_time = None
                job.blade = None
                self.stats.note_failover(job)
            unit.jobs[:] = remaining
            unit.blade = None
            orphans.append(unit)
        for queued in b.drain():
            for job in queued.jobs:
                job.failovers += 1
                self.stats.note_failover(job)
            queued.blade = None
            orphans.append(queued)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", b.name, "failover",
                jobs=tuple(j.job_id for u in orphans for j in u.jobs),
            )
        self.redispatch(orphans)

    def _kill_proc(self, kill):
        env = self.env
        fired = yield env.any_of([env.timeout(kill.at), self.stop])
        if self.stop.triggered:
            return
        b = self.blades[kill.blade]
        if not b.alive:
            return
        self.metrics.counter(
            "serve.blade_deaths", help="node-level kills delivered"
        ).inc()
        if self.tracer is not None:
            self.tracer.emit(env.now, "serve", "fleet", "blade-kill",
                             blade=b.index)
        b.kill()
        self.metrics.gauge("serve.active_blades").set(
            len([x for x in self.blades if x.alive and x.active])
        )

    # -- reporting ---------------------------------------------------------
    def result(self) -> ServeResult:
        makespan = self.env.now
        duration = makespan if makespan > 0 else 1.0
        summary = self.stats.publish(duration)
        summary["lost"] = self.lost_jobs
        per_blade = tuple(
            {
                "blade": b.index,
                "jobs": b.jobs_run,
                "units": b.units_run,
                "busy_s": stable_round(b.busy_s()),
                "utilization": stable_round(
                    b.busy_s() / duration if duration > 0 else 0.0
                ),
                "alive": b.alive,
                "active": b.active,
            }
            for b in self.blades
        )
        job_records = tuple(
            {
                "job_id": j.job_id,
                "source": j.source,
                "tenant": j.tenant,
                "template": j.template.name,
                "variant": j.variant,
                "submit": stable_round(j.submit_time),
                "start": stable_round(j.start_time),
                "finish": stable_round(j.finish_time),
                "latency": stable_round(j.latency),
                "blade": j.blade,
                "failovers": j.failovers,
                "missed_deadline": j.missed_deadline,
                "digest": j.digest,
            }
            for j in sorted(self.stats.completed_jobs,
                            key=lambda j: j.job_id)
        )
        return ServeResult(
            dispatch=self.config.dispatch,
            scheduler=self.config.scheduler,
            seed=self.config.seed,
            duration_s=self.config.duration_s,
            makespan=makespan,
            autoscale=self.config.autoscale,
            summary=summary,
            per_blade=per_blade,
            job_records=job_records,
            autoscaler_events=tuple(
                self.autoscaler.events
            ) if self.autoscaler is not None else (),
            compilations=self.compiler.compilations,
            lost_jobs=self.lost_jobs,
            events_processed=self.env.events_processed,
        )


def run_service(
    config: ServeConfig,
    tracer=None,
    metrics=None,
    profiler=None,
) -> ServeResult:
    """Execute one serving run to full drain; deterministic per config.

    Pass a :class:`~repro.obs.profile.Profiler` to wall-time the fleet
    loop (dispatch counts, compile cost, kernel event dispatch);
    profiling never changes the simulated outcome.
    """
    env = Environment(tracer=tracer, metrics=metrics, profiler=profiler)
    if profiler is not None and tracer is not None:
        tracer.profiler = profiler
    service = Service(env, config, tracer=tracer, metrics=metrics)
    service.start()
    if profiler is None:
        env.run_until_complete(service._main)
    else:
        with profiler.section("run.simulate"):
            env.run_until_complete(service._main)
        profiler.set_count("sim.events_processed", env.events_processed)
    return service.result()
