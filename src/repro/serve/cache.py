"""Fleet-wide digest-keyed result cache for workflow stages.

Every completed workflow stage is content-addressed: its cache key is
a SHA-256 over everything the stage's results depend on — the workflow
seed, the blade scheduler, the stage's template shape and fan-out, the
bootstop rule in force, and (crucially) the *result digests of its
dependency stages*.  Because upstream digests feed downstream keys,
the keys chain exactly like the result digests themselves do: a repeat
submission of an identical workflow hits on every stage, while any
upstream change invalidates precisely the stages downstream of it.

Entries store the per-job result digests plus the service seconds the
stage cost, so hits can report *wasted work avoided* — simulated
compute the fleet did not have to spend.  Bootstrap stages also store
which replicates actually completed (bootstopping cancels a
timing-dependent suffix), so a warm run reproduces the cold run's
replicate set and therefore its exact consensus and final digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..obs.metrics import NULL_REGISTRY

__all__ = ["CacheEntry", "ResultCache", "content_key"]


def content_key(*parts: Any) -> str:
    """SHA-256 over the stringified parts, unit-separator joined."""
    text = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One completed stage: its result digests and what they cost."""

    key: str
    stage: str
    digests: Tuple[str, ...]
    service_time_s: float
    # Bootstrap stages: the (replicate, digest) pairs that actually
    # completed before bootstop cancelled the rest — replayed verbatim
    # on a warm hit so the consensus is digest-identical.
    replicates: Tuple[Tuple[int, str], ...] = ()
    cancelled: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class ResultCache:
    """In-memory stage cache shared by every workflow of a run."""

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.saved_service_s = 0.0
        self.metrics.counter(
            "serve.dag.cache_hits", help="workflow stages served from cache"
        )
        self.metrics.counter(
            "serve.dag.cache_misses", help="workflow stages actually executed"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[CacheEntry]:
        """Look up one stage key, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.metrics.counter(
                "serve.dag.cache_misses",
                help="workflow stages actually executed",
            ).inc()
            return None
        self.hits += 1
        self.saved_service_s += entry.service_time_s
        self.metrics.counter(
            "serve.dag.cache_hits", help="workflow stages served from cache"
        ).inc()
        self.metrics.gauge(
            "serve.dag.wasted_work_avoided_s",
            help="service seconds short-circuited by stage-cache hits",
        ).set(self.saved_service_s)
        return entry

    def put(self, entry: CacheEntry) -> None:
        self._entries[entry.key] = entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "wasted_work_avoided_s": self.saved_service_s,
        }
