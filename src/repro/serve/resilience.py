"""Fleet resilience: blade health, circuit breakers, hedged dispatch.

The paper's MGPS insight — re-baseline scheduling on *observed* rather
than assumed capacity — applied one level up, across blades instead of
SPEs.  Three mechanisms, all default-off so a plain serving run is
byte-identical with or without this module loaded:

* **Blade health** (:class:`BladeHealth`): an EWMA of each blade's
  observed/expected unit-duration ratio.  The simulator is
  deterministic, so a healthy blade's ratio is exactly 1.0 and any
  sustained excursion is a real straggler, not noise.
* **Circuit breaker** (three states per blade): ``closed`` (normal
  dispatch) → ``open`` (EWMA over ``open_ratio`` or a crash: the blade
  leaves every dispatch-policy candidate set) → ``half-open`` after
  ``cooldown_s`` (exactly one probe unit is dispatched; a healthy probe
  closes the breaker, a slow or dead one re-opens it).  A flapped blade
  rejoins in ``half-open`` — probation, not trust.
* **Hedged dispatch**: when a unit's in-flight time exceeds a
  percentile-based straggler threshold (observed-ratio p95 ×
  ``hedge_ratio`` × the unit's nominal duration), the service clones it
  to a healthy blade.  First completion wins per job and the loser is
  cancelled; results are deduplicated by content digest (the job's
  compiled digest is blade-independent), so ``digest_map`` stays
  bit-identical to the fault-free run.

The service owns the processes; this module owns the state machine and
the arithmetic, and records every breaker transition as
``(time, blade, from, to, reason)`` for tests, chaos invariants and the
HTML report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from .slo import exact_percentile

__all__ = [
    "ResilienceConfig",
    "BladeHealth",
    "FleetResilience",
    "BREAKER_STATES",
    "LEGAL_BREAKER_TRANSITIONS",
    "count_breaker_cycles",
    "transitions_legal",
]

BREAKER_STATES = ("closed", "open", "half-open")

# Every legal edge of the breaker state machine.  Chaos invariants check
# recorded transition logs against this set.
LEGAL_BREAKER_TRANSITIONS = frozenset({
    ("closed", "open"),        # EWMA over threshold, or crash
    ("closed", "half-open"),   # flapped blade rejoins on probation
    ("open", "half-open"),     # cooldown elapsed, probe allowed
    ("half-open", "closed"),   # probe came back healthy
    ("half-open", "open"),     # probe slow or blade died again
})


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the fleet resilience layer (times in simulated seconds).

    Everything defaults *off*: a ``ServeConfig`` without explicit
    resilience settings runs the exact historical serving loop.
    """

    hedging: bool = False
    # Hedge when in-flight time exceeds
    # p95(observed ratios) * hedge_ratio * nominal unit duration.
    hedge_ratio: float = 1.5
    breaker: bool = False
    ewma_alpha: float = 0.5       # weight of the newest ratio sample
    open_ratio: float = 1.4       # EWMA above this opens the breaker
    open_after: int = 2           # samples needed before opening on ratio
    failure_threshold: int = 1    # consecutive crashes that open it
    cooldown_s: float = 120.0     # open -> half-open delay
    probe_ok_ratio: float = 1.2   # probe at or under this closes it
    enforce_deadlines: bool = False

    def __post_init__(self) -> None:
        if self.hedge_ratio <= 1.0:
            raise ValueError("hedge_ratio must be > 1.0")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.open_ratio <= 1.0:
            raise ValueError("open_ratio must be > 1.0")
        if self.open_after < 1:
            raise ValueError("open_after must be >= 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.probe_ok_ratio < 1.0:
            raise ValueError("probe_ok_ratio must be >= 1.0")

    @property
    def enabled(self) -> bool:
        return self.hedging or self.breaker or self.enforce_deadlines

    def with_(self, **kwargs: Any) -> "ResilienceConfig":
        return replace(self, **kwargs)


def count_breaker_cycles(
    transitions: Any,
) -> int:
    """Completed open → half-open → closed recoveries across all blades.

    Works on any transition log shaped ``(time, blade, from, to, reason)``
    — live :class:`FleetResilience` state or a ``ServeResult``'s
    ``breaker_transitions`` tuple alike.
    """
    cycles = 0
    last: Dict[int, Tuple[str, str]] = {}
    for _t, blade, from_state, to_state, _r in transitions:
        prev = last.get(blade)
        if (to_state == "closed" and from_state == "half-open"
                and prev is not None and prev[1] == "half-open"
                and prev[0] == "open"):
            cycles += 1
        last[blade] = (from_state, to_state)
    return cycles


def transitions_legal(transitions: Any) -> bool:
    """True when every edge in the log is a legal breaker transition."""
    return all(
        (a, b) in LEGAL_BREAKER_TRANSITIONS
        for _t, _blade, a, b, _r in transitions
    )


class BladeHealth:
    """Per-blade health ledger: EWMA duration ratio + failure streak."""

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.ewma: Optional[float] = None
        self.samples = 0
        self.consecutive_failures = 0

    def observe(self, ratio: float) -> float:
        self.samples += 1
        self.consecutive_failures = 0
        if self.ewma is None:
            self.ewma = ratio
        else:
            self.ewma = self.alpha * ratio + (1.0 - self.alpha) * self.ewma
        return self.ewma

    def fail(self) -> int:
        self.consecutive_failures += 1
        return self.consecutive_failures

    def reset(self) -> None:
        """Fresh slate after a rejoin: old samples describe the old life."""
        self.ewma = None
        self.samples = 0
        self.consecutive_failures = 0


class FleetResilience:
    """Breaker state machine + hedge thresholds for one serving run.

    Pure bookkeeping: the service calls in at dispatch, completion,
    cancellation, crash and rejoin; this class answers "may blade i
    receive work right now?" and "when should this unit be hedged?".
    """

    def __init__(self, env, config: ResilienceConfig, n_blades: int,
                 stats=None, tracer=None) -> None:
        self.env = env
        self.config = config
        self.stats = stats
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        self.health = {
            i: BladeHealth(config.ewma_alpha) for i in range(n_blades)
        }
        self.state: Dict[int, str] = {i: "closed" for i in range(n_blades)}
        self.opened_at: Dict[int, float] = {}
        self.probe_inflight: Dict[int, bool] = {
            i: False for i in range(n_blades)
        }
        # (time, blade, from_state, to_state, reason)
        self.transitions: List[Tuple[float, int, str, str, str]] = []
        # Observed/expected ratios across all completed units — the
        # population the percentile-based hedge threshold is drawn from.
        self._ratios: List[float] = []
        self.hedges = 0
        self.hedge_wins = 0

    # -- breaker state machine --------------------------------------------
    def _transition(self, blade: int, to_state: str, reason: str) -> None:
        from_state = self.state[blade]
        if from_state == to_state:
            return
        assert (from_state, to_state) in LEGAL_BREAKER_TRANSITIONS, (
            f"illegal breaker transition {from_state} -> {to_state}"
        )
        self.state[blade] = to_state
        self.transitions.append(
            (self.env.now, blade, from_state, to_state, reason)
        )
        if to_state == "open":
            self.opened_at[blade] = self.env.now
            self.probe_inflight[blade] = False
        if to_state != "half-open":
            self.probe_inflight[blade] = False
        if self.stats is not None:
            self.stats.note_breaker(from_state, to_state)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "serve", f"blade{blade}", "breaker",
                state=to_state, was=from_state, reason=reason,
            )

    def admits(self, blade: int) -> bool:
        """May this blade receive a unit right now?

        Lazily promotes ``open`` to ``half-open`` once the cooldown has
        elapsed; a ``half-open`` blade admits exactly one probe unit.
        """
        if not self.config.breaker:
            return True
        state = self.state[blade]
        if state == "open":
            if (self.env.now - self.opened_at.get(blade, 0.0)
                    >= self.config.cooldown_s):
                self._transition(blade, "half-open", "cooldown")
                state = "half-open"
            else:
                return False
        if state == "half-open":
            return not self.probe_inflight[blade]
        return True

    def is_probe_dispatch(self, blade: int) -> bool:
        """True when the next unit placed on ``blade`` is the probe."""
        return self.config.breaker and self.state[blade] == "half-open"

    def note_probe_dispatched(self, blade: int) -> None:
        self.probe_inflight[blade] = True
        if self.stats is not None:
            self.stats.note_probe()

    # -- health feed -------------------------------------------------------
    def note_unit_done(self, blade: int, ratio: float,
                       probe: bool = False) -> None:
        """A unit finished on ``blade`` at ``ratio`` = observed/expected."""
        self._ratios.append(ratio)
        health = self.health[blade]
        ewma = health.observe(ratio)
        if not self.config.breaker:
            return
        if probe or (self.state[blade] == "half-open"
                     and self.probe_inflight[blade]):
            self.probe_inflight[blade] = False
            if ratio <= self.config.probe_ok_ratio:
                health.reset()
                self._transition(blade, "closed", "probe-healthy")
            else:
                self._transition(blade, "open", "probe-slow")
            return
        if (self.state[blade] == "closed"
                and health.samples >= self.config.open_after
                and ewma is not None and ewma > self.config.open_ratio):
            self._transition(blade, "open", f"ewma-ratio {ewma:.2f}")

    def note_unit_cancelled(self, blade: int, ratio_floor: float,
                            probe: bool = False) -> None:
        """A hedge loser was cancelled after ``ratio_floor`` × expected.

        The elapsed-time ratio at cancellation is a lower bound on what
        the unit would have cost, and it already exceeds the hedge
        threshold — feed it so stragglers whose work is always rescued
        by hedges still trip the breaker.
        """
        self.note_unit_done(blade, ratio_floor, probe=probe)

    def note_failure(self, blade: int) -> None:
        """Blade crashed mid-unit (kill or flap)."""
        streak = self.health[blade].fail()
        if not self.config.breaker:
            return
        if self.state[blade] == "half-open":
            self._transition(blade, "open", "probe-died")
        elif (self.state[blade] == "closed"
                and streak >= self.config.failure_threshold):
            self._transition(blade, "open", f"{streak} crash(es)")

    def note_rejoin(self, blade: int) -> None:
        """A flapped blade came back: probation, not trust."""
        self.health[blade].reset()
        if not self.config.breaker:
            return
        if self.state[blade] == "open":
            self._transition(blade, "half-open", "rejoin")
        elif self.state[blade] == "closed":
            self._transition(blade, "half-open", "rejoin")

    # -- hedging -----------------------------------------------------------
    def hedge_threshold_s(self, expected_s: float) -> float:
        """In-flight time past which ``expected_s`` of work is a straggler.

        Percentile-based: p95 of every observed duration ratio so far
        (1.0 until the first unit completes — the simulator's healthy
        baseline) times ``hedge_ratio`` times the nominal duration.
        """
        p95 = exact_percentile(self._ratios, 95) if self._ratios else 1.0
        return max(p95, 1.0) * self.config.hedge_ratio * expected_s

    def note_hedge(self) -> None:
        self.hedges += 1
        if self.stats is not None:
            self.stats.note_hedge()

    def note_hedge_win(self) -> None:
        self.hedge_wins += 1
        if self.stats is not None:
            self.stats.note_hedge_win()

    # -- reporting ---------------------------------------------------------
    def breaker_cycles(self) -> int:
        """Completed open → half-open → closed recoveries, all blades."""
        return count_breaker_cycles(self.transitions)

    def transitions_legal(self) -> bool:
        return transitions_legal(self.transitions)
