"""Front-end admission control: token buckets, bounded queue, batching.

Every submitted job passes through two gates before it may wait for a
blade:

1. a **per-tenant token bucket** (``rate_limit`` tokens/second refill,
   ``burst`` depth, lazily refilled from simulated time) that sheds
   tenants exceeding their contracted rate, and
2. a **bounded system queue**: when the number of admitted-but-unfinished
   jobs reaches ``queue_capacity`` the front-end sheds load instead of
   letting latency grow without bound.

Both sheds are *explicit*: each is recorded with a reason
(``rate-limit`` / ``queue-full``) in the :class:`~repro.serve.slo
.ServeStats` ledger, never silently dropped.

Admitted jobs wait in a priority heap ordered by
:meth:`~repro.serve.jobs.Job.order_key` (priority desc, deadline asc,
FIFO).  When the dispatcher pulls, the front-end may *batch* up to
``batch_max`` queued jobs sharing one ``(template, variant)`` bag into a
single :class:`DispatchUnit`, amortizing per-dispatch overhead for small
jobs.  Batch composition happens here — upstream of dispatch policy and
faults — so a job's digest never depends on which blade ran it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..sim.engine import Environment
from .jobs import Job, TenantSpec
from .slo import ServeStats

__all__ = ["TokenBucket", "DispatchUnit", "FrontEnd"]


class TokenBucket:
    """Lazily refilled token bucket; one token per job."""

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        if self.rate == float("inf"):
            return True
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class DispatchUnit:
    """What actually travels to a blade: one job or a same-bag batch.

    ``seq`` is the dispatch sequence number (round-robin key); members
    share a single ``(template, variant)`` bag so the blade executes
    them back-to-back under one dispatch overhead charge.

    The hedging fields are only populated by the resilience layer: a
    hedged unit and its ``twin`` share the *same* Job objects, so first
    completion wins per job; when one copy drains its jobs the loser's
    ``cancelled`` flag is raised and the blade loop drops it at the next
    segment boundary (a queued loser is removed outright).  ``probe``
    marks the single unit a half-open circuit breaker admits.
    """

    seq: int
    jobs: List[Job]
    blade: Optional[int] = None
    attempts: int = 0
    hedge_of: Optional[int] = None        # seq of the primary, for clones
    twin: Optional["DispatchUnit"] = None  # the other copy, while both live
    cancelled: bool = False                # hedge loser, drop don't run
    probe: bool = False                    # breaker half-open probe unit

    @property
    def template(self):
        return self.jobs[0].template

    @property
    def variant(self) -> int:
        return self.jobs[0].variant

    @property
    def service_time(self) -> float:
        return sum(j.service_time for j in self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)


class FrontEnd:
    """Admission control + the central priority queue the dispatcher drains."""

    def __init__(
        self,
        env: Environment,
        stats: ServeStats,
        make_job: Callable[..., Job],
        queue_capacity: int = 64,
        batch_max: int = 1,
        tracer=None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.env = env
        self.stats = stats
        self.make_job = make_job
        self.queue_capacity = queue_capacity
        self.batch_max = batch_max
        self.tracer = tracer
        self.in_system = 0       # admitted, not yet finished
        self._heap: List[Tuple[Tuple[float, float, int], Job]] = []
        self._seq = 0            # FIFO tie-breaker
        self._unit_seq = 0       # dispatch units formed so far
        self._buckets = {}
        self.wake = env.event()  # re-armed by the dispatcher loop
        # Free list of finished DispatchUnits: at serving scale (10^4+
        # jobs) unit records dominate dispatch-path allocation, so the
        # blade loop returns clean units here and pop_unit reuses them
        # (object *and* jobs list) instead of allocating.
        self._unit_pool: List[DispatchUnit] = []

    # -- intake ------------------------------------------------------------
    def submit(
        self, tenant: TenantSpec, variant: int, source: str = "",
        template=None,
    ) -> Optional[Job]:
        """Admit or shed one request; returns the Job when admitted.

        ``template`` overrides the tenant's default job template — the
        workflow engine uses this to submit different pipeline stages
        under one workflow tenant.
        """
        now = self.env.now
        self.stats.note_arrival(tenant.name)
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = self._buckets[tenant.name] = TokenBucket(
                tenant.rate_limit, tenant.burst
            )
        if not bucket.try_take(now):
            self._reject(now, tenant, "rate-limit")
            return None
        if self.in_system >= self.queue_capacity:
            self._reject(now, tenant, "queue-full")
            return None
        job = self.make_job(tenant, variant, source, template)
        self.in_system += 1
        self._seq += 1
        heapq.heappush(self._heap, (job.order_key(self._seq), job))
        self.stats.note_admitted(job)
        if self.tracer is not None:
            self.tracer.emit(now, "serve", "frontend", "admit",
                             job=job.job_id, tenant=tenant.name,
                             variant=variant,
                             template=job.template.name)
        if not self.wake.triggered:
            self.wake.succeed()
        return job

    def _reject(self, now: float, tenant: TenantSpec, reason: str) -> None:
        self.stats.note_rejected(now, tenant.name, reason)
        if self.tracer is not None:
            self.tracer.emit(now, "serve", "frontend", "reject",
                             tenant=tenant.name, reason=reason)

    def job_finished(self) -> None:
        """Release one unit of system capacity."""
        self.in_system -= 1

    def new_unit_seq(self) -> int:
        """Claim the next dispatch-unit sequence number (hedge clones)."""
        self._unit_seq += 1
        return self._unit_seq - 1

    # -- outflow -----------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._heap)

    def recycle_unit(self, unit: DispatchUnit) -> None:
        """Return a finished unit to the free list for :meth:`pop_unit`.

        Callers must guarantee nothing else references the unit (no live
        twin, no hedge watch, not queued anywhere).
        """
        if len(self._unit_pool) >= 64:
            return
        unit.jobs.clear()
        unit.blade = None
        unit.attempts = 0
        unit.hedge_of = None
        unit.twin = None
        unit.cancelled = False
        unit.probe = False
        self._unit_pool.append(unit)

    def pop_unit(self) -> Optional[DispatchUnit]:
        """Form the next dispatch unit, batching same-bag jobs if allowed.

        Workflow-cancelled jobs are deleted lazily here: they stay in
        the heap (a heap cannot remove an arbitrary member cheaply) but
        are skipped at pop time, so a drained fan-out never dispatches.
        Returns None when every queued job turned out to be cancelled.
        """
        head = None
        while self._heap:
            _, candidate = heapq.heappop(self._heap)
            if not candidate.cancelled:
                head = candidate
                break
        if head is None:
            return None
        if self._unit_pool:
            unit = self._unit_pool.pop()
        else:
            unit = DispatchUnit(seq=0, jobs=[])
        jobs = unit.jobs
        jobs.append(head)
        if self.batch_max > 1:
            keep = []
            for entry in sorted(self._heap):
                job = entry[1]
                if job.cancelled:
                    continue
                if (len(jobs) < self.batch_max
                        and job.template is head.template
                        and job.variant == head.variant):
                    jobs.append(job)
                else:
                    keep.append(entry)
            if len(jobs) > 1:
                self._heap = keep
                heapq.heapify(self._heap)
        self._unit_seq += 1
        self.stats.note_batch(len(jobs))
        unit.seq = self._unit_seq - 1
        if self.tracer is not None:
            # Unit formation: the causal layer uses this to time the
            # admission-queue phase and the windowed sampler uses the
            # residual depth for its frontend queue series.
            self.tracer.emit(self.env.now, "serve", "frontend", "unit",
                             unit=unit.seq,
                             jobs=tuple(j.job_id for j in jobs),
                             queued=len(self._heap))
        return unit
