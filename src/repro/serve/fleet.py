"""The blade fleet: compiled jobs, per-blade state, node-level faults.

A serving fleet multiplexes many small jobs over blades that each behave
exactly like the single-blade simulator: a job's service demand and its
result digest come from an actual :func:`~repro.core.runner
.run_experiment` run of its bootstrap bag under the configured
scheduler.  Because jobs are drawn from a small template × variant
space, the :class:`JobCompiler` memoizes one blade-level run per
distinct bag and every request referencing that bag reuses the makespan
and digest — the serving simulation stays cheap no matter how many
thousands of requests stream through.

:class:`BladeState` is the passive per-node record (queue, liveness,
activation, busy accounting); the serving loops in
:mod:`repro.serve.service` drive it.  :class:`FleetFaultPlan` declares
node-level kills (whole blades dying mid-stream), the fleet analogue of
the SPE-level :class:`~repro.faults.FaultPlan`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cell.params import BladeParams
from ..core.runner import run_experiment
from ..core.schedulers import SchedulerSpec, edtlp, linux, mgps
from ..sim.engine import Environment
from ..sim.events import Event
from ..workloads.traces import Workload
from .admission import DispatchUnit
from .jobs import JobTemplate, job_seed

__all__ = [
    "CompiledJob",
    "JobCompiler",
    "BladeState",
    "BladeKill",
    "FleetFaultPlan",
    "scheduler_by_name",
    "available_blade_schedulers",
]

_SCHEDULERS = {"linux": linux, "edtlp": edtlp, "mgps": mgps}


def scheduler_by_name(name: str) -> SchedulerSpec:
    """Resolve a blade-level scheduler spec by registry name."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        known = ", ".join(sorted(_SCHEDULERS))
        raise ValueError(
            f"unknown blade scheduler {name!r}; known schedulers: {known}"
        ) from None


def available_blade_schedulers() -> List[str]:
    """Every blade-level scheduler name accepted by ServeConfig."""
    return sorted(_SCHEDULERS)


@dataclass(frozen=True)
class CompiledJob:
    """One (template, variant) bag, executed once and memoized."""

    template: str
    variant: int
    service_time: float   # paper-scale makespan of the bag on one blade
    digest: str           # ResultLedger run digest — the job's "answer"
    bootstraps: int


class JobCompiler:
    """Memoizing bridge from job templates to blade-level runs.

    The digest attached to a compiled job is rank/blade/order
    independent (see :class:`~repro.core.results.ResultLedger`), which
    is what makes "same digest under any dispatch policy or fault plan"
    a checkable invariant rather than a hope.
    """

    def __init__(
        self,
        spec: SchedulerSpec,
        blade: BladeParams,
        root_seed: int,
    ) -> None:
        self.spec = spec
        self.blade = blade
        self.root_seed = root_seed
        self._cache: Dict[Tuple[str, int], CompiledJob] = {}
        self.compilations = 0

    def compile(self, template: JobTemplate, variant: int) -> CompiledJob:
        key = (template.name, variant)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        wl = Workload(
            bootstraps=template.bootstraps,
            tasks_per_bootstrap=template.tasks_per_bootstrap,
            seed=job_seed(self.root_seed, template.name, variant),
        )
        result = run_experiment(self.spec, wl, blade=self.blade,
                                seed=self.root_seed)
        compiled = CompiledJob(
            template=template.name,
            variant=variant,
            service_time=result.makespan,
            digest=result.result_digest,
            bootstraps=result.bootstraps_completed,
        )
        self._cache[key] = compiled
        self.compilations += 1
        return compiled


class BladeState:
    """Passive state of one fleet node.

    ``alive`` goes false forever when a :class:`BladeKill` fires;
    ``active`` toggles with the autoscaler.  ``busy_s(now)`` includes
    the currently open service segment so utilization sampling never
    misses in-progress work.
    """

    def __init__(self, env: Environment, index: int, active: bool = True,
                 tracer=None) -> None:
        self.env = env
        self.index = index
        # Same normalization as the Service: a disabled tracer would
        # still pay payload building per push, so collapse it to None.
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        self.alive = True
        self.active = active
        self.queue: List[DispatchUnit] = []
        self.running: Optional[DispatchUnit] = None
        self.busy_until = 0.0     # absolute time the running unit finishes
        self.units_run = 0
        self.jobs_run = 0
        self.wake: Event = env.event()
        self.death: Event = env.event()
        self._busy_acc = 0.0
        self._seg_start: Optional[float] = None

    @property
    def name(self) -> str:
        return f"blade{self.index}"

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def backlog_s(self) -> float:
        """Residual running time plus queued service seconds."""
        residual = max(0.0, self.busy_until - self.env.now)
        return residual + sum(u.service_time for u in self.queue)

    # -- busy accounting ---------------------------------------------------
    def mark_busy(self) -> None:
        if self._seg_start is None:
            self._seg_start = self.env.now

    def mark_idle(self) -> None:
        if self._seg_start is not None:
            self._busy_acc += self.env.now - self._seg_start
            self._seg_start = None

    def busy_s(self, now: Optional[float] = None) -> float:
        total = self._busy_acc
        if self._seg_start is not None:
            total += (self.env.now if now is None else now) - self._seg_start
        return total

    # -- queue ops ---------------------------------------------------------
    def push(self, unit: DispatchUnit) -> None:
        unit.blade = self.index
        self.queue.append(unit)
        if self.tracer is not None:
            # Arrival-at-blade record: gives the windowed sampler an
            # exact per-blade queue-depth step function.
            self.tracer.emit(self.env.now, "serve", self.name, "enqueue",
                             unit=unit.seq, depth=len(self.queue))
        if not self.wake.triggered:
            self.wake.succeed()

    def pop_next(self) -> Optional[DispatchUnit]:
        return self.queue.pop(0) if self.queue else None

    def steal_newest(self) -> Optional[DispatchUnit]:
        return self.queue.pop() if self.queue else None

    def drain(self) -> List[DispatchUnit]:
        """Take every queued unit (for failover / deactivation)."""
        units, self.queue = self.queue, []
        return units

    def kill(self) -> None:
        self.alive = False
        self.active = False
        if not self.death.triggered:
            self.death.succeed()


@dataclass(frozen=True)
class BladeKill:
    """One node-level fault: blade ``blade`` dies at time ``at``."""

    blade: int
    at: float

    def __post_init__(self) -> None:
        if self.blade < 0:
            raise ValueError("blade index must be >= 0")
        if self.at < 0:
            raise ValueError("kill time must be >= 0")


@dataclass(frozen=True)
class FleetFaultPlan:
    """Declarative node-fault schedule for a serving run.

    The fleet analogue of :class:`~repro.faults.FaultPlan`: a blade that
    dies takes its running and queued work with it, and the serving
    layer must fail all of it over to surviving blades with digests
    unchanged.
    """

    kills: Tuple[BladeKill, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for k in self.kills:
            if k.blade in seen:
                raise ValueError(f"blade {k.blade} is killed twice")
            seen.add(k.blade)

    def to_json(self) -> str:
        return json.dumps(
            {"kills": [{"blade": k.blade, "at": k.at} for k in self.kills]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetFaultPlan":
        data = json.loads(text)
        unknown = set(data) - {"kills"}
        if unknown:
            raise ValueError(
                f"unknown fleet fault plan keys: {sorted(unknown)}"
            )
        kills = []
        for entry in data.get("kills", ()):
            bad = set(entry) - {"blade", "at"}
            if bad:
                raise ValueError(f"unknown blade kill keys: {sorted(bad)}")
            kills.append(BladeKill(blade=int(entry["blade"]),
                                   at=float(entry["at"])))
        return cls(kills=tuple(kills))

    def describe(self) -> str:
        if not self.kills:
            return "no node faults"
        parts = [f"blade{k.blade}@{k.at:g}s" for k in self.kills]
        return "kill " + ", ".join(parts)
