"""The blade fleet: compiled jobs, per-blade state, node-level faults.

A serving fleet multiplexes many small jobs over blades that each behave
exactly like the single-blade simulator: a job's service demand and its
result digest come from an actual :func:`~repro.core.runner
.run_experiment` run of its bootstrap bag under the configured
scheduler.  Because jobs are drawn from a small template × variant
space, the :class:`JobCompiler` memoizes one blade-level run per
distinct bag and every request referencing that bag reuses the makespan
and digest — the serving simulation stays cheap no matter how many
thousands of requests stream through.

:class:`BladeState` is the passive per-node record (queue, liveness,
activation, busy accounting); the serving loops in
:mod:`repro.serve.service` drive it.  :class:`FleetFaultPlan` declares
node-level faults, the fleet analogue of the SPE-level
:class:`~repro.faults.FaultPlan`:

* :class:`BladeKill` — a blade dies permanently at time T;
* :class:`BladeSlow` — the straggler case: a blade's service times are
  multiplied by ``factor`` (with optional seeded lognormal jitter) from
  time T, optionally recovering after ``duration`` seconds;
* :class:`BladeFlap` — a blade crashes at T (drain + requeue, like a
  kill) but rejoins ``down_s`` seconds later and must be re-admitted;
* :class:`LinkDegrade` — the front-end→blade dispatch path gains
  ``added_latency_s`` seconds per unit from time T, optionally
  recovering after ``duration``.

Plans carry their own ``seed``; any random draw (slow-factor jitter) is
taken from a named :class:`~repro.sim.rng.RngStreams` substream keyed
by fault kind and blade, so the same plan replays the exact same fault
sequence — chaos runs are diffable, never flaky.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..cell.params import BladeParams
from ..core.runner import run_experiment
from ..core.schedulers import SchedulerSpec, edtlp, linux, mgps
from ..sim.engine import Environment
from ..sim.events import Event
from ..workloads.traces import Workload
from .admission import DispatchUnit
from .jobs import JobTemplate, job_seed

__all__ = [
    "CompiledJob",
    "JobCompiler",
    "BladeState",
    "BladeKill",
    "BladeSlow",
    "BladeFlap",
    "LinkDegrade",
    "FleetFaultPlan",
    "scheduler_by_name",
    "available_blade_schedulers",
]

_SCHEDULERS = {"linux": linux, "edtlp": edtlp, "mgps": mgps}


def scheduler_by_name(name: str) -> SchedulerSpec:
    """Resolve a blade-level scheduler spec by registry name."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        known = ", ".join(sorted(_SCHEDULERS))
        raise ValueError(
            f"unknown blade scheduler {name!r}; known schedulers: {known}"
        ) from None


def available_blade_schedulers() -> List[str]:
    """Every blade-level scheduler name accepted by ServeConfig."""
    return sorted(_SCHEDULERS)


@dataclass(frozen=True)
class CompiledJob:
    """One (template, variant) bag, executed once and memoized."""

    template: str
    variant: int
    service_time: float   # paper-scale makespan of the bag on one blade
    digest: str           # ResultLedger run digest — the job's "answer"
    bootstraps: int


class JobCompiler:
    """Memoizing bridge from job templates to blade-level runs.

    The digest attached to a compiled job is rank/blade/order
    independent (see :class:`~repro.core.results.ResultLedger`), which
    is what makes "same digest under any dispatch policy or fault plan"
    a checkable invariant rather than a hope.
    """

    def __init__(
        self,
        spec: SchedulerSpec,
        blade: BladeParams,
        root_seed: int,
    ) -> None:
        self.spec = spec
        self.blade = blade
        self.root_seed = root_seed
        self._cache: Dict[Tuple[str, int], CompiledJob] = {}
        self.compilations = 0

    def compile(self, template: JobTemplate, variant: int) -> CompiledJob:
        key = (template.name, variant)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        wl = Workload(
            bootstraps=template.bootstraps,
            tasks_per_bootstrap=template.tasks_per_bootstrap,
            seed=job_seed(self.root_seed, template.name, variant),
        )
        result = run_experiment(self.spec, wl, blade=self.blade,
                                seed=self.root_seed)
        compiled = CompiledJob(
            template=template.name,
            variant=variant,
            service_time=result.makespan,
            digest=result.result_digest,
            bootstraps=result.bootstraps_completed,
        )
        self._cache[key] = compiled
        self.compilations += 1
        return compiled


class BladeState:
    """Passive state of one fleet node.

    ``alive`` goes false when a :class:`BladeKill` or :class:`BladeFlap`
    fires (:meth:`rejoin` reverses a flap); ``active`` toggles with the
    autoscaler.  ``busy_s(now)`` includes the currently open service
    segment so utilization sampling never misses in-progress work.
    ``slow_factor`` and ``dispatch_delay_s`` are the live fault state a
    :class:`BladeSlow` / :class:`LinkDegrade` imposes on the node.
    """

    def __init__(self, env: Environment, index: int, active: bool = True,
                 tracer=None) -> None:
        self.env = env
        self.index = index
        # Same normalization as the Service: a disabled tracer would
        # still pay payload building per push, so collapse it to None.
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        self.alive = True
        self.active = active
        # FIFO of queued units; deque so the head pop the blade loop
        # performs per unit is O(1) at any backlog depth.
        self.queue: Deque[DispatchUnit] = deque()
        self.running: Optional[DispatchUnit] = None
        self.busy_until = 0.0     # absolute time the running unit finishes
        self.units_run = 0
        self.jobs_run = 0
        self.slow_factor = 1.0        # BladeSlow: service-time multiplier
        self.dispatch_delay_s = 0.0   # LinkDegrade: extra per-unit latency
        self.wake: Event = env.event()
        self.death: Event = env.event()
        self._busy_acc = 0.0
        self._seg_start: Optional[float] = None

    @property
    def name(self) -> str:
        return f"blade{self.index}"

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def backlog_s(self) -> float:
        """Residual running time plus queued service seconds."""
        residual = max(0.0, self.busy_until - self.env.now)
        return residual + sum(u.service_time for u in self.queue)

    # -- busy accounting ---------------------------------------------------
    def mark_busy(self) -> None:
        if self._seg_start is None:
            self._seg_start = self.env.now

    def mark_idle(self) -> None:
        if self._seg_start is not None:
            self._busy_acc += self.env.now - self._seg_start
            self._seg_start = None

    def busy_s(self, now: Optional[float] = None) -> float:
        total = self._busy_acc
        if self._seg_start is not None:
            total += (self.env.now if now is None else now) - self._seg_start
        return total

    # -- queue ops ---------------------------------------------------------
    def push(self, unit: DispatchUnit) -> None:
        unit.blade = self.index
        self.queue.append(unit)
        if self.tracer is not None:
            # Arrival-at-blade record: gives the windowed sampler an
            # exact per-blade queue-depth step function.
            self.tracer.emit(self.env.now, "serve", self.name, "enqueue",
                             unit=unit.seq, depth=len(self.queue))
        if not self.wake.triggered:
            self.wake.succeed()

    def pop_next(self) -> Optional[DispatchUnit]:
        return self.queue.popleft() if self.queue else None

    def steal_newest(self) -> Optional[DispatchUnit]:
        return self.queue.pop() if self.queue else None

    def drain(self) -> List[DispatchUnit]:
        """Take every queued unit (for failover / deactivation)."""
        units = list(self.queue)
        self.queue.clear()
        return units

    def purge_cancelled(self) -> int:
        """Drop queued units with no runnable work left; returns count.

        Workflow cancellation marks *jobs*, not units.  A queued unit
        whose members are all finished, aborted or cancelled would still
        charge dispatch overhead at pickup, so the cancel path sweeps it
        out of the queue here.  Mixed units survive — the blade loop's
        per-job guards skip their dead members.
        """
        if not self.queue:
            return 0
        keep = [
            u for u in self.queue
            if any(j.finish_time is None and not j.aborted and not j.cancelled
                   for j in u.jobs)
        ]
        removed = len(self.queue) - len(keep)
        if removed:
            self.queue.clear()
            self.queue.extend(keep)
        return removed

    def kill(self) -> None:
        self.alive = False
        self.active = False
        if not self.death.triggered:
            self.death.succeed()

    def rejoin(self) -> None:
        """Bring a flapped blade back: fresh liveness and fresh events.

        The old ``death`` event stays triggered for whoever was watching
        the crash; the rejoined node needs untriggered ``death``/``wake``
        events before its new blade loop starts.
        """
        self.alive = True
        self.active = True
        self.death = self.env.event()
        self.wake = self.env.event()


@dataclass(frozen=True)
class BladeKill:
    """One node-level fault: blade ``blade`` dies at time ``at``."""

    blade: int
    at: float

    def __post_init__(self) -> None:
        if self.blade < 0:
            raise ValueError("blade index must be >= 0")
        if self.at < 0:
            raise ValueError("kill time must be >= 0")


@dataclass(frozen=True)
class BladeSlow:
    """The straggler fault: blade service times stretch by ``factor``.

    From time ``at`` every service segment on the blade takes ``factor``
    times its nominal duration (optionally perturbed once by a seeded
    lognormal draw of sigma ``jitter``); when ``duration`` is set the
    blade recovers to nominal speed at ``at + duration``.
    """

    blade: int
    at: float
    factor: float
    jitter: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.blade < 0:
            raise ValueError("blade index must be >= 0")
        if self.at < 0:
            raise ValueError("slow time must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"slow factor must be >= 1.0, got {self.factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("slow duration must be positive when set")


@dataclass(frozen=True)
class BladeFlap:
    """Crash at ``at``, rejoin ``down_s`` seconds later.

    The crash behaves exactly like a kill (running and queued work is
    requeued to survivors); the rejoin re-admits the node, which the
    resilience layer treats as probation (half-open breaker).
    """

    blade: int
    at: float
    down_s: float

    def __post_init__(self) -> None:
        if self.blade < 0:
            raise ValueError("blade index must be >= 0")
        if self.at < 0:
            raise ValueError("flap time must be >= 0")
        if self.down_s <= 0:
            raise ValueError("down_s must be positive")


@dataclass(frozen=True)
class LinkDegrade:
    """Front-end→blade dispatch path gains ``added_latency_s`` per unit.

    Models a degraded interconnect: every unit picked up by the blade
    pays the extra latency on top of the configured dispatch overhead.
    Recovers at ``at + duration`` when ``duration`` is set.
    """

    blade: int
    at: float
    added_latency_s: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.blade < 0:
            raise ValueError("blade index must be >= 0")
        if self.at < 0:
            raise ValueError("degrade time must be >= 0")
        if self.added_latency_s <= 0:
            raise ValueError("added_latency_s must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("degrade duration must be positive when set")


def _parse_entries(kind: str, cls, fields: Dict[str, Any], entries):
    """Build fault dataclasses from JSON dicts with known-key errors."""
    out = []
    for entry in entries:
        bad = set(entry) - set(fields)
        if bad:
            known = ", ".join(sorted(fields))
            raise ValueError(
                f"unknown {kind} key {sorted(bad)[0]!r}; "
                f"known keys: {known}"
            )
        kwargs = {
            name: conv(entry[name])
            for name, conv in fields.items() if name in entry
        }
        out.append(cls(**kwargs))
    return tuple(out)


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


@dataclass(frozen=True)
class FleetFaultPlan:
    """Declarative node-fault schedule for a serving run.

    The fleet analogue of :class:`~repro.faults.FaultPlan`: kills and
    flaps take a blade's running and queued work with them and the
    serving layer must fail all of it over with digests unchanged;
    slows and degrades stretch the timeline without touching results.
    ``seed`` feeds the per-fault RNG substreams (slow-factor jitter).
    """

    kills: Tuple[BladeKill, ...] = ()
    slows: Tuple[BladeSlow, ...] = ()
    flaps: Tuple[BladeFlap, ...] = ()
    degrades: Tuple[LinkDegrade, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))
        object.__setattr__(self, "slows", tuple(self.slows))
        object.__setattr__(self, "flaps", tuple(self.flaps))
        object.__setattr__(self, "degrades", tuple(self.degrades))
        for kind, faults in (("killed", self.kills), ("slowed", self.slows),
                             ("flapped", self.flaps),
                             ("degraded", self.degrades)):
            seen = set()
            for f in faults:
                if f.blade in seen:
                    raise ValueError(f"blade {f.blade} is {kind} twice")
                seen.add(f.blade)
        overlap = ({k.blade for k in self.kills}
                   & {f.blade for f in self.flaps})
        if overlap:
            raise ValueError(
                f"blade {sorted(overlap)[0]} is both killed and flapped; "
                f"a kill is permanent"
            )

    @property
    def blades(self) -> Tuple[int, ...]:
        """Every blade index any fault in the plan touches, sorted."""
        return tuple(sorted(
            {f.blade for group in (self.kills, self.slows, self.flaps,
                                   self.degrades) for f in group}
        ))

    @property
    def is_null(self) -> bool:
        return not (self.kills or self.slows or self.flaps or self.degrades)

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "kills": [{"blade": k.blade, "at": k.at} for k in self.kills],
            "slows": [
                {"blade": s.blade, "at": s.at, "factor": s.factor,
                 "jitter": s.jitter, "duration": s.duration}
                for s in self.slows
            ],
            "flaps": [
                {"blade": f.blade, "at": f.at, "down_s": f.down_s}
                for f in self.flaps
            ],
            "degrades": [
                {"blade": d.blade, "at": d.at,
                 "added_latency_s": d.added_latency_s,
                 "duration": d.duration}
                for d in self.degrades
            ],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetFaultPlan":
        data = json.loads(text)
        known = {"seed", "kills", "slows", "flaps", "degrades"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fleet fault kind {sorted(unknown)[0]!r}; "
                f"known kinds: {', '.join(sorted(known - {'seed'}))} "
                f"(plus the plan-level 'seed')"
            )
        kills = _parse_entries(
            "blade kill", BladeKill,
            {"blade": int, "at": float}, data.get("kills", ()),
        )
        slows = _parse_entries(
            "blade slow", BladeSlow,
            {"blade": int, "at": float, "factor": float, "jitter": float,
             "duration": _opt_float},
            data.get("slows", ()),
        )
        flaps = _parse_entries(
            "blade flap", BladeFlap,
            {"blade": int, "at": float, "down_s": float},
            data.get("flaps", ()),
        )
        degrades = _parse_entries(
            "link degrade", LinkDegrade,
            {"blade": int, "at": float, "added_latency_s": float,
             "duration": _opt_float},
            data.get("degrades", ()),
        )
        return cls(kills=kills, slows=slows, flaps=flaps, degrades=degrades,
                   seed=int(data.get("seed", 0)))

    def describe(self) -> str:
        if self.is_null:
            return "no node faults"
        parts = []
        for k in self.kills:
            parts.append(f"kill blade{k.blade}@{k.at:g}s")
        for s in self.slows:
            span = f" for {s.duration:g}s" if s.duration is not None else ""
            parts.append(
                f"slow blade{s.blade}@{s.at:g}s x{s.factor:g}{span}"
            )
        for f in self.flaps:
            parts.append(
                f"flap blade{f.blade}@{f.at:g}s down {f.down_s:g}s"
            )
        for d in self.degrades:
            span = f" for {d.duration:g}s" if d.duration is not None else ""
            parts.append(
                f"degrade link blade{d.blade}@{d.at:g}s "
                f"+{d.added_latency_s:g}s{span}"
            )
        return "; ".join(parts)
