"""SLO accounting: latency percentiles, goodput, rejections, deadlines.

:class:`ServeStats` is the single bookkeeper the serving layer feeds:
the front-end reports arrivals/admissions/rejections, blades report
dispatches, starts, completions and failovers.  It maintains live
counters and histograms on the run's :class:`~repro.obs.metrics
.MetricsRegistry` (so monitors and ``repro stats --fail-on`` see them)
and, at end of run, publishes summary gauges —
``serve.latency_p99_s``, ``serve.rejection_rate``,
``serve.deadline_miss_rate``, ``serve.goodput_jps`` and per-tenant
labeled variants.

Percentiles here are *exact* (nearest-rank over the recorded
latencies), not the bucketed interpolation the histogram offers — SLO
reports and the bench gate want numbers that do not move when a bucket
boundary does.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY, labeled
from .jobs import Job

__all__ = ["exact_percentile", "ServeStats"]

# Latency buckets (simulated seconds): service times are tens of
# seconds, sojourns under load reach into the thousands.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(0, 5) for m in (1, 2, 5)
)
DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


def exact_percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile ``p`` in [0, 100]; 0.0 for no samples."""
    if not (0.0 <= p <= 100.0):
        raise ValueError("percentile must be within [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(p / 100.0 * len(ordered))))
    return ordered[rank - 1]


class ServeStats:
    """Accumulates the serving run's SLO ledger.

    All times are simulated seconds.  The instance is also the bridge
    into the metrics registry: counters are incremented as events
    happen, summary gauges are written once by :meth:`publish`.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.arrivals = 0
        self.admitted = 0
        self.rejected = 0
        self.completed_jobs: List[Job] = []
        self.rejections: List[Tuple[float, str, str]] = []  # (t, tenant, why)
        self.failovers = 0
        self.batches = 0
        self.batched_jobs = 0
        self._latency_hist = self.metrics.histogram(
            "serve.latency_s", buckets=LATENCY_BUCKETS,
            help="submit-to-finish job sojourn time",
        )
        self._depth_hist = self.metrics.histogram(
            "serve.queue_depth", buckets=DEPTH_BUCKETS,
            help="jobs waiting (front-end + blade queues) at each dispatch",
        )
        # Pre-register the headline counters so ``repro stats --fail-on``
        # and the monitor can resolve them on runs where they stay 0.
        self.metrics.counter(
            "serve.arrivals", help="jobs offered by all tenants"
        )
        self.metrics.counter(
            "serve.admitted", help="jobs accepted past admission control"
        )
        self.metrics.counter(
            "serve.rejected", help="jobs shed by admission control"
        )
        self.metrics.counter(
            "serve.completed", help="jobs finished with a verified digest"
        )
        self.metrics.counter(
            "serve.deadline_misses",
            help="completed jobs that finished past their deadline",
        )
        self.metrics.counter(
            "serve.failovers", help="job executions re-queued off dead blades"
        )
        # Fleet-resilience counters (all zero unless the resilience
        # layer or the richer fault kinds are in play).
        self.metrics.counter(
            "serve.dispatched_units", help="dispatch units placed on blades"
        )
        self.metrics.counter(
            "serve.deadline_aborts",
            help="jobs shed because their deadline became unreachable",
        )
        self.metrics.counter(
            "serve.cancelled",
            help="admitted jobs cancelled before running (workflow bootstop)",
        )
        self.metrics.counter(
            "serve.hedges", help="speculative duplicate dispatches issued"
        )
        self.metrics.counter(
            "serve.hedge_wins", help="hedge clones that finished first"
        )
        self.metrics.counter(
            "serve.breaker_opens",
            help="circuit breaker closed/half-open -> open",
        )
        self.metrics.counter(
            "serve.breaker_closes", help="circuit breaker half-open -> closed"
        )
        self.metrics.counter(
            "serve.breaker_probes", help="probe units sent to half-open blades"
        )
        self.metrics.counter(
            "serve.blade_crashes", help="flap crashes delivered to blades"
        )
        self.metrics.counter(
            "serve.blade_rejoins", help="flapped blades re-admitted"
        )
        self.deadline_aborts = 0
        self.cancelled = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.blade_crashes = 0
        self.blade_rejoins = 0

    # -- event feed --------------------------------------------------------
    def note_arrival(self, tenant: str) -> None:
        self.arrivals += 1
        self.metrics.counter(
            "serve.arrivals", help="jobs offered by all tenants"
        ).inc()

    def note_admitted(self, job: Job) -> None:
        self.admitted += 1
        self.metrics.counter(
            "serve.admitted", help="jobs accepted past admission control"
        ).inc()

    def note_rejected(self, now: float, tenant: str, reason: str) -> None:
        self.rejected += 1
        self.rejections.append((now, tenant, reason))
        self.metrics.counter(
            "serve.rejected", help="jobs shed by admission control"
        ).inc()
        self.metrics.counter(
            labeled("serve.rejected", reason=reason, tenant=tenant)
        ).inc()

    def note_dispatch(self, queued: int) -> None:
        self._depth_hist.observe(queued)
        self.metrics.counter(
            "serve.dispatched_units", help="dispatch units placed on blades"
        ).inc()

    def note_batch(self, size: int) -> None:
        if size > 1:
            self.batches += 1
            self.batched_jobs += size

    def note_failover(self, job: Job) -> None:
        self.failovers += 1
        self.metrics.counter(
            "serve.failovers", help="job executions re-queued off dead blades"
        ).inc()

    def note_deadline_abort(self, job: Job) -> None:
        self.deadline_aborts += 1
        self.metrics.counter(
            "serve.deadline_aborts",
            help="jobs shed because their deadline became unreachable",
        ).inc()

    def note_cancelled(self, job: Job) -> None:
        self.cancelled += 1
        self.metrics.counter(
            "serve.cancelled",
            help="admitted jobs cancelled before running (workflow bootstop)",
        ).inc()

    def note_hedge(self) -> None:
        self.hedges += 1
        self.metrics.counter(
            "serve.hedges", help="speculative duplicate dispatches issued"
        ).inc()

    def note_hedge_win(self) -> None:
        self.hedge_wins += 1
        self.metrics.counter(
            "serve.hedge_wins", help="hedge clones that finished first"
        ).inc()

    def note_probe(self) -> None:
        self.metrics.counter(
            "serve.breaker_probes", help="probe units sent to half-open blades"
        ).inc()

    def note_breaker(self, from_state: str, to_state: str) -> None:
        if to_state == "open":
            self.breaker_opens += 1
            self.metrics.counter(
                "serve.breaker_opens",
                help="circuit breaker closed/half-open -> open",
            ).inc()
        elif to_state == "closed":
            self.breaker_closes += 1
            self.metrics.counter(
                "serve.breaker_closes",
                help="circuit breaker half-open -> closed",
            ).inc()

    def note_crash(self, blade: int) -> None:
        self.blade_crashes += 1
        self.metrics.counter(
            "serve.blade_crashes", help="flap crashes delivered to blades"
        ).inc()

    def note_rejoin(self, blade: int) -> None:
        self.blade_rejoins += 1
        self.metrics.counter(
            "serve.blade_rejoins", help="flapped blades re-admitted"
        ).inc()

    def note_completed(self, job: Job) -> None:
        self.completed_jobs.append(job)
        self.metrics.counter(
            "serve.completed", help="jobs finished with a verified digest"
        ).inc()
        self._latency_hist.observe(job.latency)
        if job.missed_deadline:
            self.metrics.counter(
                "serve.deadline_misses",
                help="completed jobs that finished past their deadline",
            ).inc()

    # -- aggregation -------------------------------------------------------
    def _tenant_names(self) -> List[str]:
        names = {j.tenant for j in self.completed_jobs}
        names.update(t for _, t, _ in self.rejections)
        return sorted(names)

    def tenant_summary(self, tenant: str, duration: float) -> Dict[str, Any]:
        jobs = [j for j in self.completed_jobs if j.tenant == tenant]
        lat = [j.latency for j in jobs]
        rejected = sum(1 for _, t, _ in self.rejections if t == tenant)
        offered = len(jobs) + rejected
        missed = sum(1 for j in jobs if j.missed_deadline)
        good = len(jobs) - missed
        return {
            "completed": len(jobs),
            "rejected": rejected,
            "deadline_misses": missed,
            "latency_p50_s": exact_percentile(lat, 50),
            "latency_p95_s": exact_percentile(lat, 95),
            "latency_p99_s": exact_percentile(lat, 99),
            "rejection_rate": rejected / offered if offered else 0.0,
            "deadline_miss_rate": missed / len(jobs) if jobs else 0.0,
            "goodput_jps": good / duration if duration > 0 else 0.0,
        }

    def summary(self, duration: float) -> Dict[str, Any]:
        """The run's SLO ledger as one deterministic dict."""
        lat = [j.latency for j in self.completed_jobs]
        missed = sum(1 for j in self.completed_jobs if j.missed_deadline)
        good = len(lat) - missed
        out: Dict[str, Any] = {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": len(lat),
            "deadline_misses": missed,
            "deadline_aborts": self.deadline_aborts,
            "cancelled": self.cancelled,
            "failovers": self.failovers,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "blade_crashes": self.blade_crashes,
            "blade_rejoins": self.blade_rejoins,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "latency_p50_s": exact_percentile(lat, 50),
            "latency_p95_s": exact_percentile(lat, 95),
            "latency_p99_s": exact_percentile(lat, 99),
            "rejection_rate": (
                self.rejected / self.arrivals if self.arrivals else 0.0
            ),
            "deadline_miss_rate": missed / len(lat) if lat else 0.0,
            "goodput_jps": good / duration if duration > 0 else 0.0,
            "tenants": {
                t: self.tenant_summary(t, duration)
                for t in self._tenant_names()
            },
        }
        return out

    def publish(self, duration: float) -> Dict[str, Any]:
        """Write end-of-run summary gauges; returns the summary dict."""
        s = self.summary(duration)
        gauges = (
            "latency_p50_s", "latency_p95_s", "latency_p99_s",
            "rejection_rate", "deadline_miss_rate", "goodput_jps",
        )
        for key in gauges:
            self.metrics.gauge(f"serve.{key}").set(s[key])
        for tenant, ts in s["tenants"].items():
            for key in gauges:
                self.metrics.gauge(
                    labeled(f"serve.{key}", tenant=tenant)
                ).set(ts[key])
        return s
