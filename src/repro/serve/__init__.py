"""Online serving layer: a multi-tenant job service over a blade fleet.

The offline experiments answer "how fast does one bag of bootstraps
finish?".  This package asks the production question on top of the same
simulator: many tenants *stream* phylogenetic jobs at a fleet of Cell
blades, and the operator cares about admission, tail latency, deadlines,
elasticity and node failure — not just makespan.

Layers (client to metal):

* :mod:`~repro.serve.generators` — open-loop Poisson, closed-loop
  think-time and bursty tenants (:class:`TenantSpec`,
  :class:`JobTemplate`);
* :mod:`~repro.serve.admission` — token buckets, the bounded system
  queue and priority/deadline ordering (:class:`FrontEnd`);
* :mod:`~repro.serve.dispatch` — the blade-selection policy registry
  (static-block, least-loaded, join-shortest-queue, work-stealing);
* :mod:`~repro.serve.fleet` — per-blade state, memoized job compilation
  through :func:`~repro.core.runner.run_experiment`, and node-level
  fault plans (:class:`FleetFaultPlan`);
* :mod:`~repro.serve.autoscaler` — the MGPS-style utilization feedback
  loop resizing the active blade set;
* :mod:`~repro.serve.slo` — per-tenant latency percentiles, goodput,
  rejection and deadline-miss accounting;
* :mod:`~repro.serve.service` — :func:`run_service`, tying it together.
"""

from .admission import DispatchUnit, FrontEnd, TokenBucket
from .autoscaler import Autoscaler, AutoscalerConfig
from .dispatch import (
    DispatchInfo,
    DispatchPolicy,
    available_dispatch_policies,
    block_partition,
    register_dispatch,
    resolve_dispatch,
)
from .fleet import (
    BladeKill,
    BladeState,
    CompiledJob,
    FleetFaultPlan,
    JobCompiler,
    scheduler_by_name,
)
from .jobs import Job, JobTemplate, TenantSpec, job_seed
from .service import (
    ServeConfig,
    ServeResult,
    Service,
    default_tenants,
    run_service,
)
from .slo import ServeStats, exact_percentile

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BladeKill",
    "BladeState",
    "CompiledJob",
    "DispatchInfo",
    "DispatchPolicy",
    "DispatchUnit",
    "FleetFaultPlan",
    "FrontEnd",
    "Job",
    "JobCompiler",
    "JobTemplate",
    "ServeConfig",
    "ServeResult",
    "ServeStats",
    "Service",
    "TenantSpec",
    "TokenBucket",
    "available_dispatch_policies",
    "block_partition",
    "default_tenants",
    "exact_percentile",
    "job_seed",
    "register_dispatch",
    "resolve_dispatch",
    "run_service",
    "scheduler_by_name",
]
