"""Online serving layer: a multi-tenant job service over a blade fleet.

The offline experiments answer "how fast does one bag of bootstraps
finish?".  This package asks the production question on top of the same
simulator: many tenants *stream* phylogenetic jobs at a fleet of Cell
blades, and the operator cares about admission, tail latency, deadlines,
elasticity and node failure — not just makespan.

Layers (client to metal):

* :mod:`~repro.serve.generators` — open-loop Poisson, closed-loop
  think-time and bursty tenants (:class:`TenantSpec`,
  :class:`JobTemplate`);
* :mod:`~repro.serve.admission` — token buckets, the bounded system
  queue and priority/deadline ordering (:class:`FrontEnd`);
* :mod:`~repro.serve.dispatch` — the blade-selection policy registry
  (static-block, least-loaded, join-shortest-queue, work-stealing);
* :mod:`~repro.serve.fleet` — per-blade state, memoized job compilation
  through :func:`~repro.core.runner.run_experiment`, and node-level
  fault plans (:class:`FleetFaultPlan`: kills, slowdowns, flaps,
  link degradation);
* :mod:`~repro.serve.resilience` — blade health EWMAs, the per-blade
  circuit breaker and hedged-dispatch thresholds
  (:class:`ResilienceConfig`, :class:`FleetResilience`);
* :mod:`~repro.serve.autoscaler` — the MGPS-style utilization feedback
  loop resizing the active blade set;
* :mod:`~repro.serve.slo` — per-tenant latency percentiles, goodput,
  rejection and deadline-miss accounting;
* :mod:`~repro.serve.service` — :func:`run_service`, tying it together;
* :mod:`~repro.serve.dag` — the workflow tier above jobs:
  :class:`WorkflowSpec` pipelines with fan-out/fan-in, autoMRE-style
  bootstopping (:mod:`~repro.serve.bootstop`) and the digest-keyed
  stage cache (:mod:`~repro.serve.cache`), run by :func:`run_dag`;
* :mod:`~repro.serve.chaos` — the seeded chaos soak harness
  (:func:`run_chaos`) asserting zero loss and digest invariance under
  randomized fault plans.
"""

from .admission import DispatchUnit, FrontEnd, TokenBucket
from .autoscaler import Autoscaler, AutoscalerConfig
from .bootstop import BootstopConfig, BootstopMonitor
from .cache import CacheEntry, ResultCache, content_key
from .dag import (
    DagConfig,
    DagResult,
    StageSpec,
    WorkflowEngine,
    WorkflowSpec,
    raxml_workflow,
    replicate_tree,
    run_dag,
)
from .dispatch import (
    DispatchInfo,
    DispatchPolicy,
    available_dispatch_policies,
    block_partition,
    register_dispatch,
    resolve_dispatch,
)
from .chaos import (
    ChaosConfig,
    ChaosReport,
    chaos_tenants,
    random_fleet_fault_plan,
    run_chaos,
)
from .fleet import (
    BladeFlap,
    BladeKill,
    BladeSlow,
    BladeState,
    CompiledJob,
    FleetFaultPlan,
    JobCompiler,
    LinkDegrade,
    scheduler_by_name,
)
from .jobs import Job, JobTemplate, TenantSpec, job_seed
from .resilience import (
    BREAKER_STATES,
    FleetResilience,
    LEGAL_BREAKER_TRANSITIONS,
    ResilienceConfig,
    count_breaker_cycles,
)
from .service import (
    ServeConfig,
    ServeResult,
    Service,
    default_tenants,
    run_service,
)
from .slo import ServeStats, exact_percentile

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BREAKER_STATES",
    "BladeFlap",
    "BladeKill",
    "BladeSlow",
    "BladeState",
    "BootstopConfig",
    "BootstopMonitor",
    "CacheEntry",
    "ChaosConfig",
    "ChaosReport",
    "CompiledJob",
    "DagConfig",
    "DagResult",
    "DispatchInfo",
    "DispatchPolicy",
    "DispatchUnit",
    "FleetFaultPlan",
    "FleetResilience",
    "FrontEnd",
    "Job",
    "JobCompiler",
    "JobTemplate",
    "LEGAL_BREAKER_TRANSITIONS",
    "LinkDegrade",
    "ResilienceConfig",
    "ResultCache",
    "ServeConfig",
    "ServeResult",
    "ServeStats",
    "Service",
    "StageSpec",
    "TenantSpec",
    "TokenBucket",
    "WorkflowEngine",
    "WorkflowSpec",
    "available_dispatch_policies",
    "block_partition",
    "chaos_tenants",
    "content_key",
    "count_breaker_cycles",
    "default_tenants",
    "exact_percentile",
    "job_seed",
    "random_fleet_fault_plan",
    "raxml_workflow",
    "register_dispatch",
    "replicate_tree",
    "resolve_dispatch",
    "run_chaos",
    "run_dag",
    "run_service",
    "scheduler_by_name",
]
