"""MGPS-style fleet autoscaler.

The paper's MGPS scheduler watches a sliding window of off-load events
to estimate the task parallelism ``U`` actually exposed to one blade and
re-partitions SPEs accordingly.  This module lifts the same feedback
loop one level up: sample the fleet's per-blade utilization over a
sliding window and grow or shrink the *active blade set* between
``min_blades`` and ``max_blades``.

* mean windowed utilization above ``high_watermark`` → activate one more
  blade (capacity is saturating);
* below ``low_watermark`` → deactivate the highest-indexed active blade
  and re-dispatch anything queued on it (capacity is idling).

After every decision the window clears, so one burst cannot trigger a
staircase of reactions before its effect is even measurable — the same
hysteresis discipline MGPS applies to SPE re-partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Feedback-loop knobs (times in simulated seconds)."""

    interval_s: float = 60.0     # sampling period
    window: int = 3              # samples per decision window
    high_watermark: float = 0.75  # mean util above this -> scale up
    low_watermark: float = 0.25   # mean util below this -> scale down

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not (0.0 <= self.low_watermark < self.high_watermark <= 1.0):
            raise ValueError(
                "need 0 <= low_watermark < high_watermark <= 1"
            )


class Autoscaler:
    """Samples blade utilization and toggles blade activation.

    The service owns the blades; the autoscaler only flips ``active``
    flags and reports transitions.  ``events`` records every decision as
    ``(time, direction, n_active)`` for tests and the run report.
    """

    def __init__(self, service, config: AutoscalerConfig,
                 min_blades: int, max_blades: int) -> None:
        if not (1 <= min_blades <= max_blades):
            raise ValueError("need 1 <= min_blades <= max_blades")
        self.service = service
        self.config = config
        self.min_blades = min_blades
        self.max_blades = max_blades
        self.events: List[Tuple[float, str, int]] = []
        self._window: List[float] = []
        self._last_busy = {}
        self._last_t = 0.0

    # -- helpers -----------------------------------------------------------
    def _active(self):
        return [b for b in self.service.blades if b.alive and b.active]

    def _sample(self, now: float) -> float:
        """Mean busy fraction of active blades since the last sample."""
        span = now - self._last_t
        active = self._active()
        if span <= 0 or not active:
            return 0.0
        fractions = []
        for b in active:
            busy = b.busy_s(now)
            prev = self._last_busy.get(b.index, busy - min(busy, span))
            fractions.append(min(1.0, max(0.0, (busy - prev) / span)))
        return sum(fractions) / len(fractions)

    def _remember(self, now: float) -> None:
        self._last_t = now
        self._last_busy = {
            b.index: b.busy_s(now) for b in self.service.blades
        }

    # -- the loop ----------------------------------------------------------
    def loop(self):
        """Simulation process: sample, decide, repeat until stop."""
        env = self.service.env
        self._remember(env.now)
        while not self.service.stop.triggered:
            tick = env.timeout(self.config.interval_s)
            fired = yield env.any_of([tick, self.service.stop])
            if fired is self.service.stop or self.service.stop.triggered:
                return
            now = env.now
            self._window.append(self._sample(now))
            self._remember(now)
            if len(self._window) < self.config.window:
                continue
            mean = sum(self._window) / len(self._window)
            acted = False
            if mean > self.config.high_watermark:
                acted = self._scale_up(now, mean)
            elif mean < self.config.low_watermark:
                acted = self._scale_down(now, mean)
            # An acting decision clears the window (hysteresis); an
            # inert one just slides it by one sample.
            if not acted:
                del self._window[0]

    def _note(self, now: float, direction: str, mean: float) -> None:
        n = len(self._active())
        self.events.append((now, direction, n))
        svc = self.service
        svc.metrics.gauge(
            "serve.active_blades", help="blades currently accepting dispatch"
        ).set(n)
        svc.metrics.counter(f"serve.scale_{direction}s").inc()
        if svc.tracer is not None:
            svc.tracer.emit(now, "serve", "autoscaler", f"scale-{direction}",
                            active=n, mean_util=round(mean, 6))

    def _scale_up(self, now: float, mean: float) -> bool:
        inactive = [b for b in self.service.blades
                    if b.alive and not b.active]
        if not inactive or len(self._active()) >= self.max_blades:
            return False
        blade = min(inactive, key=lambda b: b.index)
        blade.active = True
        self._window.clear()
        self._note(now, "up", mean)
        # A freshly activated blade starts pulling work immediately.
        if not blade.wake.triggered:
            blade.wake.succeed()
        return True

    def _scale_down(self, now: float, mean: float) -> bool:
        active = self._active()
        if len(active) <= self.min_blades:
            return False
        blade = max(active, key=lambda b: b.index)
        blade.active = False
        self._window.clear()
        orphans = blade.drain()
        self._note(now, "down", mean)
        self.service.redispatch(orphans)
        return True
