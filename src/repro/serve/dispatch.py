"""Fleet dispatch policies and their registry.

Mirrors :mod:`repro.core.runtime.policy` one level up: a
:class:`DispatchPolicy` decides *which blade* a dispatch unit goes to
(and, for work-stealing, which queue an idle blade may raid), exactly as
a :class:`~repro.core.runtime.policy.SchedulingPolicy` decides which
SPEs a task uses inside one blade.  Policies register by name so the
serving layer, the offline cluster driver and the CLI all select them
declaratively::

    from repro.serve import DispatchPolicy, register_dispatch

    class Weighted(DispatchPolicy):
        name = "weighted"
        def select(self, unit, blades):
            return min(blades, key=lambda b: b.backlog_s / (1 + b.index))

    register_dispatch("weighted", Weighted,
                      description="backlog weighted by blade index")

Each policy also provides an *offline* ``partition`` used by
:func:`repro.core.cluster.run_cluster_experiment` to split a one-shot
bootstrap bag across blades; ``static-block`` reproduces the historical
contiguous block distribution bit-for-bit.

This module is deliberately dependency-free (no imports from
``repro.core``) so the cluster driver can reach the registry without an
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fleet import BladeState
    from .service import DispatchUnit

__all__ = [
    "DispatchPolicy",
    "DispatchInfo",
    "register_dispatch",
    "resolve_dispatch",
    "available_dispatch_policies",
    "block_partition",
]


def block_partition(n_jobs: int, n_blades: int) -> List[List[int]]:
    """Contiguous blocks, earlier blades take the remainder.

    The historical ``distribute_bootstraps`` layout: sizes differ by at
    most one and job order is preserved within each blade.
    """
    if n_jobs < 1 or n_blades < 1:
        raise ValueError("need positive totals")
    if n_blades > n_jobs:
        raise ValueError("more blades than jobs")
    base, extra = divmod(n_jobs, n_blades)
    out: List[List[int]] = []
    start = 0
    for i in range(n_blades):
        size = base + (1 if i < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


def _cyclic_partition(n_jobs: int, n_blades: int) -> List[List[int]]:
    if n_jobs < 1 or n_blades < 1:
        raise ValueError("need positive totals")
    if n_blades > n_jobs:
        raise ValueError("more blades than jobs")
    return [list(range(i, n_jobs, n_blades)) for i in range(n_blades)]


class DispatchPolicy:
    """Base dispatch policy: round-robin, no stealing.

    ``select`` receives the unit being dispatched and the list of
    *eligible* blades (alive and active), already sorted by blade index;
    it must return one of them.  ``steal`` is consulted when a blade
    runs dry; returning a unit moves it from its current queue to the
    thief.  ``partition`` is the offline equivalent of ``select`` for a
    one-shot bag of ``n_jobs``.
    """

    name = "dispatch"
    description = ""

    def select(self, unit: "DispatchUnit",
               blades: List["BladeState"]) -> "BladeState":
        return blades[unit.seq % len(blades)]

    def steal(self, thief: "BladeState",
              blades: List["BladeState"]) -> Optional["DispatchUnit"]:
        """Unit taken from another blade's queue, or None."""
        return None

    def partition(self, n_jobs: int, n_blades: int) -> List[List[int]]:
        """Offline split of job indices 0..n_jobs-1 over blades."""
        return _cyclic_partition(n_jobs, n_blades)


class StaticBlockDispatch(DispatchPolicy):
    """The one-shot cluster layout, extended to online arrivals.

    Offline it is the contiguous block distribution (bit-identical to
    the historical ``distribute_bootstraps``); online — where the total
    is unknown — it degenerates to load-blind round-robin over the
    active blade set.
    """

    name = "static-block"
    description = ("load-blind static assignment (contiguous blocks "
                   "offline, round-robin online)")

    def partition(self, n_jobs: int, n_blades: int) -> List[List[int]]:
        return block_partition(n_jobs, n_blades)


class LeastLoadedDispatch(DispatchPolicy):
    """Send each unit to the blade with the least backlog *seconds*."""

    name = "least-loaded"
    description = "minimize queued + residual service seconds per blade"

    def select(self, unit, blades):
        return min(blades, key=lambda b: (b.backlog_s, b.index))


class JoinShortestQueueDispatch(DispatchPolicy):
    """Send each unit to the blade with the fewest queued units."""

    name = "join-shortest-queue"
    description = "classic JSQ: minimize queue length, size-blind"

    def select(self, unit, blades):
        return min(blades, key=lambda b: (b.queue_depth, b.index))


class WorkStealingDispatch(DispatchPolicy):
    """Round-robin placement; idle blades raid the longest queue."""

    name = "work-stealing"
    description = ("round-robin placement, idle blades steal the newest "
                   "unit from the deepest queue")

    def steal(self, thief, blades):
        victims = [b for b in blades if b is not thief and b.queue_depth > 0]
        if not victims:
            return None
        victim = max(victims, key=lambda b: (b.queue_depth, -b.index))
        return victim.steal_newest()


@dataclass(frozen=True)
class DispatchInfo:
    """One registry entry: how to build a policy and how to describe it."""

    name: str
    factory: Callable[[], DispatchPolicy]
    description: str = ""


_REGISTRY: Dict[str, DispatchInfo] = {}


def register_dispatch(
    name: str,
    factory: Callable[[], DispatchPolicy],
    description: str = "",
    replace: bool = False,
) -> Callable[[], DispatchPolicy]:
    """Register ``factory`` under ``name``; returns the factory."""
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"dispatch policy {name!r} is already registered; "
            f"pass replace=True to override it"
        )
    _REGISTRY[name] = DispatchInfo(
        name=name, factory=factory, description=description
    )
    return factory


def resolve_dispatch(name: str) -> DispatchInfo:
    """Look up a registered policy; unknown names list every known one."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown dispatch policy {name!r}; known policies: {known}"
        )
    return _REGISTRY[name]


def available_dispatch_policies() -> List[DispatchInfo]:
    """Every registered dispatch policy, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


for _cls in (StaticBlockDispatch, LeastLoadedDispatch,
             JoinShortestQueueDispatch, WorkStealingDispatch):
    register_dispatch(_cls.name, _cls, description=_cls.description)
