"""Seeded chaos soak: randomized fleet fault plans, hard invariants.

The chaos harness is the resilience layer's oracle.  It draws a batch
of randomized-but-seeded :class:`~repro.serve.fleet.FleetFaultPlan`\\ s
(each fully reproducible from ``(seed, plan index)``), runs the same
open-loop serving workload once fault-free and once under every plan
with hedging and the circuit breaker enabled, and asserts invariants
that must hold no matter what the faults did:

* **no lost jobs** — every admitted job completes;
* **digest invariance** — the faulty run's ``source -> digest`` map is
  *bit-identical* to the fault-free run's (hedging dedup, failover and
  stragglers may move work around, never change results);
* **conservation** — admitted == completed + lost + deadline aborts;
* **bounded tail inflation** — faulty p99 latency stays within
  ``p99_inflation`` × clean p99 + ``p99_slack_s``;
* **breaker sanity** — every recorded transition is a legal edge of the
  breaker state machine.

Across the whole batch the harness also checks *liveness* of the
mechanisms themselves: at least one hedge fired and at least one full
open → half-open → closed breaker recovery completed — a soak in which
the defenses never engage proves nothing.

Workload note: only open-loop tenants (poisson / bursty) are used, so
the submitted job population is identical across fault scenarios and
full digest-map equality is a valid invariant (closed-loop tenants
would submit different jobs when latency shifts).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import stable_round
from ..sim.rng import RngStreams
from .fleet import BladeFlap, BladeKill, BladeSlow, FleetFaultPlan, LinkDegrade
from .jobs import JobTemplate, TenantSpec
from .resilience import ResilienceConfig, transitions_legal
from .service import ServeConfig, ServeResult, run_service

__all__ = [
    "CHAOS_MIXES",
    "ChaosConfig",
    "ChaosPlanOutcome",
    "ChaosReport",
    "chaos_tenants",
    "random_fleet_fault_plan",
    "run_chaos",
]

# Fault mixes the generator knows how to draw.
#   storm      — the works: a kill and/or flap plus stragglers and a
#                degraded link (needs >= 3 blades so the fleet survives).
#   stragglers — timing-only faults: slowdowns and link degradation,
#                no crashes (valid on any fleet size).
CHAOS_MIXES = ("storm", "stragglers")


def chaos_tenants(arrival_rate: float = 0.05) -> Tuple[TenantSpec, ...]:
    """Open-loop tenant mix whose submissions never depend on latency."""
    small = JobTemplate("small-bag", bootstraps=2, tasks_per_bootstrap=60,
                        variants=2)
    medium = JobTemplate("medium-bag", bootstraps=3, tasks_per_bootstrap=100,
                         variants=2)
    return (
        TenantSpec("genomics", small, arrival="poisson",
                   arrival_rate=arrival_rate, priority=1, deadline_s=900.0),
        TenantSpec("proteomics", medium, arrival="poisson",
                   arrival_rate=arrival_rate / 2),
        TenantSpec("metagenomics", small, arrival="bursty", burst_size=3,
                   burst_interval_s=600.0),
    )


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos soak: how many plans, over what workload, what bounds."""

    plans: int = 20
    seed: int = 0
    mix: str = "storm"
    duration_s: float = 2400.0
    arrival_rate: float = 0.05
    blades: int = 4
    dispatch: str = "least-loaded"
    scheduler: str = "mgps"
    # Tail bound: faulty p99 <= clean p99 * inflation + slack.
    p99_inflation: float = 10.0
    p99_slack_s: float = 120.0
    resilience: ResilienceConfig = ResilienceConfig(hedging=True,
                                                    breaker=True)

    def __post_init__(self) -> None:
        if self.plans < 1:
            raise ValueError("a chaos soak needs at least one plan")
        if self.mix not in CHAOS_MIXES:
            raise ValueError(
                f"unknown chaos mix {self.mix!r}; "
                f"known mixes: {', '.join(sorted(CHAOS_MIXES))}"
            )
        if self.mix == "storm" and self.blades < 3:
            raise ValueError("the storm mix needs at least 3 blades")
        if self.blades < 2:
            raise ValueError("chaos needs at least 2 blades")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.p99_inflation < 1.0:
            raise ValueError("p99_inflation must be >= 1.0")
        if self.p99_slack_s < 0:
            raise ValueError("p99_slack_s must be >= 0")


def random_fleet_fault_plan(seed: int, n_blades: int, horizon_s: float,
                            mix: str = "storm") -> FleetFaultPlan:
    """Draw one randomized, fully seeded fault plan.

    The same ``(seed, n_blades, horizon_s, mix)`` always yields the
    same plan.  Every plan contains at least one *recovering* slowdown
    (bounded duration ending well before the arrival horizon closes),
    so the breaker gets the chance to complete a full
    open → half-open → closed cycle while work still flows.
    """
    if mix not in CHAOS_MIXES:
        raise ValueError(
            f"unknown chaos mix {mix!r}; "
            f"known mixes: {', '.join(sorted(CHAOS_MIXES))}"
        )
    rng = RngStreams(seed).spawn("chaos-plan").stream(mix)
    blades = list(range(n_blades))

    def pick_blade() -> int:
        i = int(rng.integers(0, len(blades)))
        return blades.pop(i)

    slows: List[BladeSlow] = []
    degrades: List[LinkDegrade] = []
    kills: List[BladeKill] = []
    flaps: List[BladeFlap] = []

    # The guaranteed straggler: slow enough to trip the breaker and the
    # hedge threshold, recovering by ~0.75 of the horizon.
    slows.append(BladeSlow(
        blade=pick_blade(),
        at=float(rng.uniform(0.15, 0.40)) * horizon_s,
        factor=float(rng.uniform(1.8, 3.5)),
        duration=float(rng.uniform(0.20, 0.35)) * horizon_s,
    ))
    if rng.uniform() < 0.5:
        degrades.append(LinkDegrade(
            blade=pick_blade(),
            at=float(rng.uniform(0.10, 0.50)) * horizon_s,
            added_latency_s=float(rng.uniform(2.0, 8.0)),
            duration=float(rng.uniform(0.15, 0.30)) * horizon_s,
        ))
    if mix == "storm":
        # Crashes ride along; blades are drawn without replacement so a
        # kill and a flap never hit the same node (the plan forbids it).
        if rng.uniform() < 0.5 and len(blades) > 2:
            kills.append(BladeKill(
                blade=pick_blade(),
                at=float(rng.uniform(0.30, 0.70)) * horizon_s,
            ))
        if len(blades) > 1:
            flaps.append(BladeFlap(
                blade=pick_blade(),
                at=float(rng.uniform(0.20, 0.50)) * horizon_s,
                down_s=float(rng.uniform(0.10, 0.20)) * horizon_s,
            ))
    elif len(blades) > 0 and rng.uniform() < 0.5:
        # stragglers mix: maybe a second, milder slowdown.
        slows.append(BladeSlow(
            blade=pick_blade(),
            at=float(rng.uniform(0.30, 0.60)) * horizon_s,
            factor=float(rng.uniform(1.5, 2.2)),
            duration=float(rng.uniform(0.10, 0.25)) * horizon_s,
        ))
    return FleetFaultPlan(kills=tuple(kills), slows=tuple(slows),
                          flaps=tuple(flaps), degrades=tuple(degrades),
                          seed=seed)


@dataclass
class ChaosPlanOutcome:
    """Verdict for one plan of the soak."""

    index: int
    plan: FleetFaultPlan
    ok: bool
    violations: Tuple[str, ...]
    completed: int
    lost: int
    deadline_aborts: int
    hedges: int
    hedge_wins: int
    breaker_cycles: int
    p99_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "plan": json.loads(self.plan.to_json()),
            "describe": self.plan.describe(),
            "ok": self.ok,
            "violations": list(self.violations),
            "completed": self.completed,
            "lost": self.lost,
            "deadline_aborts": self.deadline_aborts,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "breaker_cycles": self.breaker_cycles,
            "p99_s": stable_round(self.p99_s),
        }


@dataclass
class ChaosReport:
    """The whole soak: per-plan verdicts plus batch-level liveness."""

    config: ChaosConfig
    clean_p99_s: float
    clean_completed: int
    outcomes: List[ChaosPlanOutcome] = field(default_factory=list)

    @property
    def total_hedges(self) -> int:
        return sum(o.hedges for o in self.outcomes)

    @property
    def total_breaker_cycles(self) -> int:
        return sum(o.breaker_cycles for o in self.outcomes)

    @property
    def failures(self) -> List[ChaosPlanOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def liveness_violations(self) -> List[str]:
        out = []
        if self.total_hedges < 1:
            out.append("no hedge fired across the whole soak")
        if self.total_breaker_cycles < 1:
            out.append("no breaker completed an open -> half-open -> "
                       "closed cycle across the whole soak")
        return out

    @property
    def ok(self) -> bool:
        return not self.failures and not self.liveness_violations

    def to_json(self) -> str:
        payload = {
            "plans": self.config.plans,
            "seed": self.config.seed,
            "mix": self.config.mix,
            "duration_s": stable_round(self.config.duration_s),
            "blades": self.config.blades,
            "dispatch": self.config.dispatch,
            "clean_p99_s": stable_round(self.clean_p99_s),
            "clean_completed": self.clean_completed,
            "total_hedges": self.total_hedges,
            "total_hedge_wins": sum(o.hedge_wins for o in self.outcomes),
            "total_breaker_cycles": self.total_breaker_cycles,
            "failed_plans": len(self.failures),
            "liveness_violations": self.liveness_violations,
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def summary_text(self) -> str:
        lines = [
            f"chaos soak: {self.config.plans} plans, mix={self.config.mix},"
            f" seed={self.config.seed}, {self.config.blades} blades,"
            f" dispatch={self.config.dispatch}",
            f"  fault-free baseline: {self.clean_completed} jobs,"
            f" p99 {self.clean_p99_s:.2f} s",
            f"  hedges {self.total_hedges}"
            f" (wins {sum(o.hedge_wins for o in self.outcomes)}),"
            f" breaker cycles {self.total_breaker_cycles}",
        ]
        for o in self.outcomes:
            status = "ok" if o.ok else "FAIL"
            lines.append(
                f"  plan {o.index:2d} [{status}] {o.plan.describe() or '-'}:"
                f" {o.completed} jobs, lost {o.lost},"
                f" hedges {o.hedges}, cycles {o.breaker_cycles},"
                f" p99 {o.p99_s:.2f} s"
            )
            for v in o.violations:
                lines.append(f"      violation: {v}")
        for v in self.liveness_violations:
            lines.append(f"  liveness violation: {v}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def chaos_serve_config(config: ChaosConfig,
                       plan: Optional[FleetFaultPlan] = None) -> ServeConfig:
    """The ServeConfig one soak run uses (faulty when ``plan`` given)."""
    return ServeConfig(
        tenants=chaos_tenants(config.arrival_rate),
        duration_s=config.duration_s,
        seed=config.seed,
        dispatch=config.dispatch,
        scheduler=config.scheduler,
        min_blades=config.blades,
        max_blades=config.blades,
        # Large enough that queue-full shedding never fires: admission
        # must be timing-independent for digest equality to be exact.
        queue_capacity=4096,
        faults=plan,
        resilience=config.resilience,
    )


def check_plan_invariants(config: ChaosConfig, clean: ServeResult,
                          faulty: ServeResult) -> Tuple[str, ...]:
    """Every invariant violation one faulty run exhibits, as text."""
    violations: List[str] = []
    s = faulty.summary
    if faulty.lost_jobs != 0:
        violations.append(f"lost {faulty.lost_jobs} job(s)")
    admitted = s["admitted"]
    accounted = (s["completed"] + s["cancelled"] + faulty.lost_jobs
                 + s["deadline_aborts"])
    if admitted != accounted:
        violations.append(
            f"conservation broken: admitted {admitted} != completed "
            f"{s['completed']} + cancelled {s['cancelled']} + lost "
            f"{faulty.lost_jobs} + aborted {s['deadline_aborts']}"
        )
    clean_map = clean.digest_map()
    faulty_map = faulty.digest_map()
    if faulty_map != clean_map:
        missing = sorted(set(clean_map) - set(faulty_map))[:3]
        extra = sorted(set(faulty_map) - set(clean_map))[:3]
        changed = sorted(
            k for k in set(clean_map) & set(faulty_map)
            if clean_map[k] != faulty_map[k]
        )[:3]
        violations.append(
            f"digest divergence: missing={missing} extra={extra} "
            f"changed={changed}"
        )
    bound = (clean.summary["latency_p99_s"] * config.p99_inflation
             + config.p99_slack_s)
    if s["latency_p99_s"] > bound:
        violations.append(
            f"p99 {s['latency_p99_s']:.2f} s exceeds bound {bound:.2f} s"
        )
    if not transitions_legal(faulty.breaker_transitions):
        violations.append("illegal breaker transition recorded")
    return tuple(violations)


def run_chaos(config: ChaosConfig, progress=None) -> ChaosReport:
    """Run the soak: one fault-free reference + ``config.plans`` plans."""
    from .resilience import count_breaker_cycles

    clean = run_service(chaos_serve_config(config))
    report = ChaosReport(
        config=config,
        clean_p99_s=clean.summary["latency_p99_s"],
        clean_completed=clean.summary["completed"],
    )
    for p in range(config.plans):
        plan = random_fleet_fault_plan(
            seed=config.seed * 10_000 + p,
            n_blades=config.blades,
            horizon_s=config.duration_s,
            mix=config.mix,
        )
        faulty = run_service(chaos_serve_config(config, plan))
        violations = check_plan_invariants(config, clean, faulty)
        s = faulty.summary
        outcome = ChaosPlanOutcome(
            index=p,
            plan=plan,
            ok=not violations,
            violations=violations,
            completed=s["completed"],
            lost=faulty.lost_jobs,
            deadline_aborts=s["deadline_aborts"],
            hedges=s["hedges"],
            hedge_wins=s["hedge_wins"],
            breaker_cycles=count_breaker_cycles(faulty.breaker_transitions),
            p99_s=s["latency_p99_s"],
        )
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report
