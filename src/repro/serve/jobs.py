"""Jobs, job templates and tenants — the units the serving layer moves.

A *job* is one phylogenetic analysis request: a bootstrap bag compiled
through :mod:`repro.workloads.traces` and executed on one blade of the
fleet by the existing :func:`~repro.core.runner.run_experiment` runtime.
Jobs belonging to the same tenant draw from a small set of *templates*
(bag shapes) and *variants* (distinct trace seeds per shape), so the
fleet executes a realistic mix while the per-(template, variant) blade
runs stay cacheable — the simulation compiles each distinct bag exactly
once no matter how many requests reference it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["JobTemplate", "TenantSpec", "Job", "job_seed"]


def job_seed(root_seed: int, template: str, variant: int) -> int:
    """Stable trace seed for one (template, variant) bag.

    SHA-256 based, mirroring :class:`~repro.sim.rng.RngStreams`: the
    mapping survives process boundaries and Python versions.
    """
    digest = hashlib.sha256(
        f"{root_seed}:job:{template}:{variant}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:6], "little")


@dataclass(frozen=True)
class JobTemplate:
    """One bag shape: how much work a job of this class carries."""

    name: str
    bootstraps: int = 2
    tasks_per_bootstrap: int = 60
    variants: int = 2  # distinct trace bags compiled for this shape

    def __post_init__(self) -> None:
        if self.bootstraps < 1:
            raise ValueError("a job template needs at least one bootstrap")
        if self.tasks_per_bootstrap < 4:
            raise ValueError("tasks_per_bootstrap must be >= 4")
        if self.variants < 1:
            raise ValueError("a job template needs at least one variant")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: who submits jobs, how fast, and with what SLO.

    ``arrival`` selects the workload generator:

    * ``"poisson"`` — open-loop Poisson arrivals at ``arrival_rate``
      jobs per simulated second;
    * ``"closed"`` — ``clients`` closed-loop clients, each submitting
      one job, waiting for its completion, thinking for an exponential
      ``think_time_s``, and repeating;
    * ``"bursty"`` — bursts of ``burst_size`` back-to-back submissions
      separated by exponential gaps of mean ``burst_interval_s``.

    ``rate_limit``/``burst`` parameterize the front-end token bucket;
    ``deadline_s`` is a relative completion deadline (None = no SLO
    deadline, jobs only count toward goodput when one exists).
    """

    name: str
    template: JobTemplate
    arrival: str = "poisson"
    arrival_rate: float = 0.05       # poisson: jobs / simulated second
    clients: int = 2                 # closed loop
    think_time_s: float = 30.0       # closed loop
    burst_size: int = 4              # bursty
    burst_interval_s: float = 120.0  # bursty
    priority: int = 0                # larger = served first
    deadline_s: Optional[float] = None
    rate_limit: float = float("inf")  # token bucket refill, jobs / second
    burst: int = 8                    # token bucket depth

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "closed", "bursty"):
            raise ValueError(
                f"unknown arrival model {self.arrival!r}; "
                f"known models: bursty, closed, poisson"
            )
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.clients < 1:
            raise ValueError("closed-loop tenants need at least one client")
        if self.think_time_s < 0:
            raise ValueError("think_time_s must be non-negative")
        if self.burst_size < 1 or self.burst_interval_s <= 0:
            raise ValueError("bursts need burst_size >= 1 and a positive gap")
        if self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if self.burst < 1:
            raise ValueError("token bucket depth must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")


@dataclass
class Job:
    """One submitted request, tracked through its whole lifecycle."""

    job_id: int
    tenant: str
    template: JobTemplate
    variant: int
    priority: int
    submit_time: float
    # Stable identity: "{tenant}:{client}:{k}" for the k-th submission
    # of one generator loop.  Unlike job_id (global admission order,
    # which shifts when timing does), the source key and its variant are
    # fixed by the RNG streams alone — so digests compared across runs,
    # dispatch policies or fault scenarios are keyed by source.
    source: str = ""
    deadline: Optional[float] = None   # absolute simulated time
    # filled in as the job moves through the system:
    service_time: float = 0.0
    dispatch_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    blade: Optional[int] = None
    failovers: int = 0
    aborted: bool = False    # shed by deadline enforcement, never completed
    cancelled: bool = False  # workflow bootstop: admitted, never needed
    digest: str = ""
    done: object = field(default=None, repr=False)  # sim Event for closed loops

    @property
    def latency(self) -> float:
        """Submit-to-finish sojourn time (simulated seconds)."""
        if self.finish_time is None:
            raise RuntimeError(f"job {self.job_id} has not finished")
        return self.finish_time - self.submit_time

    @property
    def missed_deadline(self) -> bool:
        return (
            self.deadline is not None
            and self.finish_time is not None
            and self.finish_time > self.deadline
        )

    def order_key(self, seq: int) -> Tuple[float, float, int]:
        """Heap key: highest priority first, earliest deadline, FIFO."""
        deadline = self.deadline if self.deadline is not None else float("inf")
        return (-float(self.priority), deadline, seq)
