"""Workload generators: how tenants put jobs into the front-end.

Three arrival models, all driven by named :class:`~repro.sim.rng.RngStreams`
substreams so a single root seed makes every arrival time, template
variant, and think time bit-reproducible:

* **open-loop Poisson** — exponential inter-arrival gaps at the tenant's
  ``arrival_rate``; the tenant keeps submitting whether or not the fleet
  keeps up, which is what exposes saturation and shedding.
* **closed-loop think-time** — ``clients`` concurrent clients, each
  waiting for its previous job to *finish* before thinking (exponential
  mean ``think_time_s``) and submitting the next; load self-throttles as
  latency grows.
* **bursty** — quiet gaps (exponential mean ``burst_interval_s``)
  punctuated by ``burst_size`` back-to-back submissions, the adversarial
  pattern for token buckets and bounded queues.

Generators never talk to blades: they hand jobs to the front-end
``submit`` callback and the admission layer decides their fate.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from ..sim.engine import Environment
from ..sim.events import Event
from .jobs import Job, TenantSpec

__all__ = ["tenant_generators"]

# submit(tenant, variant, source) -> the admitted Job, or None when
# shed.  ``source`` is the job's stable identity: the k-th submission of
# one generator loop keeps the same source (and, because variants come
# from that loop's private RNG stream, the same variant) no matter how
# the rest of the run times out.
SubmitFn = Callable[[TenantSpec, int, str], Optional[Job]]


def _pick_variant(rng: np.random.Generator, tenant: TenantSpec) -> int:
    return int(rng.integers(tenant.template.variants))


def _open_loop(
    env: Environment,
    tenant: TenantSpec,
    rng: np.random.Generator,
    submit: SubmitFn,
    horizon: float,
) -> Generator[Event, None, int]:
    """Poisson arrivals until the horizon; returns jobs offered."""
    offered = 0
    while True:
        gap = float(rng.exponential(1.0 / tenant.arrival_rate))
        if env.now + gap >= horizon:
            return offered
        yield env.timeout(gap)
        submit(tenant, _pick_variant(rng, tenant),
               f"{tenant.name}:open:{offered}")
        offered += 1


def _closed_loop_client(
    env: Environment,
    tenant: TenantSpec,
    rng: np.random.Generator,
    submit: SubmitFn,
    horizon: float,
    client: int,
) -> Generator[Event, None, int]:
    """One think-submit-wait client; returns jobs offered."""
    offered = 0
    # Desynchronize clients: an initial think so a tenant's clients do
    # not all submit at t=0 in lockstep.
    yield env.timeout(float(rng.exponential(max(tenant.think_time_s, 1e-9))))
    while env.now < horizon:
        job = submit(tenant, _pick_variant(rng, tenant),
                     f"{tenant.name}:client{client}:{offered}")
        offered += 1
        if job is not None:
            yield job.done
        think = float(rng.exponential(max(tenant.think_time_s, 1e-9)))
        if env.now + think >= horizon:
            return offered
        yield env.timeout(think)
    return offered


def _bursty(
    env: Environment,
    tenant: TenantSpec,
    rng: np.random.Generator,
    submit: SubmitFn,
    horizon: float,
) -> Generator[Event, None, int]:
    """Exponential quiet gaps, then burst_size submissions at once."""
    offered = 0
    while True:
        gap = float(rng.exponential(tenant.burst_interval_s))
        if env.now + gap >= horizon:
            return offered
        yield env.timeout(gap)
        for _ in range(tenant.burst_size):
            submit(tenant, _pick_variant(rng, tenant),
                   f"{tenant.name}:burst:{offered}")
            offered += 1


def tenant_generators(
    env: Environment,
    tenant: TenantSpec,
    streams,
    submit: SubmitFn,
    horizon: float,
):
    """Start this tenant's arrival processes; returns the Process list.

    Each client/loop draws from its own named substream
    (``arrivals:{tenant}:{k}``) so adding a client, or changing how one
    consumes randomness, never perturbs the others — the common-random-
    numbers discipline the rest of the simulator follows.
    """
    if tenant.arrival == "poisson":
        rng = streams.stream(f"arrivals:{tenant.name}:0")
        return [env.process(
            _open_loop(env, tenant, rng, submit, horizon),
            name=f"arrivals:{tenant.name}",
        )]
    if tenant.arrival == "closed":
        procs = []
        for k in range(tenant.clients):
            rng = streams.stream(f"arrivals:{tenant.name}:{k}")
            procs.append(env.process(
                _closed_loop_client(env, tenant, rng, submit, horizon, k),
                name=f"arrivals:{tenant.name}:{k}",
            ))
        return procs
    if tenant.arrival == "bursty":
        rng = streams.stream(f"arrivals:{tenant.name}:0")
        return [env.process(
            _bursty(env, tenant, rng, submit, horizon),
            name=f"arrivals:{tenant.name}",
        )]
    raise ValueError(f"unknown arrival model {tenant.arrival!r}")
