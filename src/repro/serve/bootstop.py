"""autoMRE-style bootstopping: stop the bootstrap fan-out early.

RAxML's autoMRE criterion keeps adding bootstrap replicates only while
they still move the majority-rule support values; once the split
frequencies stabilize, the remaining replicates carry no information
and can be cancelled.  :class:`BootstopMonitor` is the serving-layer
version of that rule: the workflow engine feeds it each completed
replicate tree (in completion order — deterministic per run) and it
answers "has the consensus converged?".

The rule, concretely: every ``check_every`` replicates past
``min_replicates``, compute :func:`~repro.phylo.consensus
.split_frequencies` over all replicates seen so far and compare with
the previous checkpoint.  When the largest absolute support change
stays at or below ``threshold`` for ``stable_checks`` consecutive
checkpoints, the monitor declares convergence and the engine cancels
every replicate that has not started running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..phylo.consensus import split_frequencies
from ..phylo.tree import Tree

__all__ = ["BootstopConfig", "BootstopMonitor"]

Split = FrozenSet[int]


@dataclass(frozen=True)
class BootstopConfig:
    """Parameters of the convergence rule.

    ``min_replicates`` is the smallest sample the rule may judge from;
    ``check_every`` spaces the checkpoints; ``threshold`` is the
    largest per-split support drift (absolute frequency change between
    checkpoints) still counted as stable; ``stable_checks`` is how many
    consecutive stable checkpoints convergence requires.
    """

    min_replicates: int = 20
    check_every: int = 5
    threshold: float = 0.05
    stable_checks: int = 2

    def __post_init__(self) -> None:
        if self.min_replicates < 2:
            raise ValueError("min_replicates must be >= 2")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if not (0.0 < self.threshold < 1.0):
            raise ValueError("threshold must be in (0, 1)")
        if self.stable_checks < 1:
            raise ValueError("stable_checks must be >= 1")

    def describe(self) -> str:
        return (f"min={self.min_replicates} every={self.check_every} "
                f"thr={self.threshold:g} stable={self.stable_checks}")


class BootstopMonitor:
    """Streaming convergence monitor over completed bootstrap replicates.

    Feed trees with :meth:`add`; it returns True exactly once, on the
    replicate that makes the support values convergent.  ``history``
    records ``(n_replicates, max_delta)`` per checkpoint (the first
    checkpoint has no predecessor and records ``inf``), so reports can
    show the convergence trajectory.
    """

    def __init__(self, config: Optional[BootstopConfig] = None) -> None:
        self.config = config if config is not None else BootstopConfig()
        self.trees: List[Tree] = []
        self.converged = False
        self.converged_at: Optional[int] = None
        self.history: List[Tuple[int, float]] = []
        self._prev: Optional[Dict[Split, float]] = None
        self._stable = 0

    @property
    def replicates_seen(self) -> int:
        return len(self.trees)

    def add(self, tree: Tree) -> bool:
        """Record one completed replicate; True iff convergence is new."""
        if self.converged:
            return False
        self.trees.append(tree)
        n = len(self.trees)
        c = self.config
        if n < c.min_replicates or (n - c.min_replicates) % c.check_every:
            return False
        freqs = split_frequencies(self.trees)
        if self._prev is None:
            # First checkpoint: nothing to diff against yet.
            self.history.append((n, float("inf")))
            self._prev = freqs
            return False
        keys = set(freqs) | set(self._prev)
        delta = max(
            (abs(freqs.get(k, 0.0) - self._prev.get(k, 0.0)) for k in keys),
            default=0.0,
        )
        self.history.append((n, delta))
        self._prev = freqs
        if delta <= c.threshold:
            self._stable += 1
        else:
            self._stable = 0
        if self._stable >= c.stable_checks:
            self.converged = True
            self.converged_at = n
            return True
        return False
