"""repro — Dynamic Multigrain Parallelization on the Cell Broadband Engine.

A faithful, simulator-based reproduction of Blagojevic et al., PPoPP 2007:
the EDTLP event-driven task scheduler, the LLP work-sharing loop runtime,
and the adaptive MGPS policy, evaluated on a discrete-event Cell BE model
driven by RAxML-like workloads.

Quickstart::

    from repro import Workload, edtlp, linux, mgps, run_experiment

    wl = Workload(bootstraps=8, tasks_per_bootstrap=500)
    base = run_experiment(linux(), wl)
    ours = run_experiment(mgps(), wl)
    print(f"MGPS is {ours.speedup_over(base):.2f}x faster than the OS scheduler")
"""

from .cell import BladeParams, CellMachine, CellParams, DEFAULT_BLADE, DEFAULT_CELL
from .core import (
    LLPConfig,
    OracleSelector,
    ScheduleResult,
    SchedulerSpec,
    edtlp,
    linux,
    mgps,
    run_bsp_experiment,
    run_cluster_experiment,
    run_experiment,
    run_sweep,
    static_hybrid,
)
from .obs import (
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
    write_trace_jsonl,
)
from .serve import (
    FleetFaultPlan,
    JobTemplate,
    ServeConfig,
    ServeResult,
    TenantSpec,
    default_tenants,
    run_service,
)
from .sim import Tracer
from .workloads import BSPWorkload, FixedTraceWorkload, RAXML_42SC, RaxmlProfile, Workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Workload",
    "RaxmlProfile",
    "RAXML_42SC",
    "CellParams",
    "BladeParams",
    "DEFAULT_CELL",
    "DEFAULT_BLADE",
    "CellMachine",
    "SchedulerSpec",
    "linux",
    "edtlp",
    "static_hybrid",
    "mgps",
    "run_experiment",
    "run_sweep",
    "run_bsp_experiment",
    "run_cluster_experiment",
    "ScheduleResult",
    "LLPConfig",
    "OracleSelector",
    "BSPWorkload",
    "FixedTraceWorkload",
    "FleetFaultPlan",
    "JobTemplate",
    "ServeConfig",
    "ServeResult",
    "TenantSpec",
    "default_tenants",
    "run_service",
    "Tracer",
    "MetricsRegistry",
    "SpanRecorder",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "write_trace_jsonl",
]
