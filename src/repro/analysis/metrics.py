"""Derived metrics over schedule results and observability registries.

Two families live here: pure functions over :class:`ScheduleResult`
records (speedup, efficiency, crossover) and readers over a run's
:class:`~repro.obs.metrics.MetricsRegistry`.  The registry readers
*consume* what the runtime already measured — window utilization ``U``,
context switches, granularity outcomes, chunk sizes, off-load latencies
— instead of recomputing them from raw trace records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.results import ScheduleResult

__all__ = [
    "speedup",
    "efficiency",
    "scaling_efficiency",
    "crossover",
    "best_scheduler",
    "registry_value",
    "offload_latency_percentiles",
    "llp_chunk_profile",
    "scheduler_summary",
    "render_scheduler_summary",
]


def speedup(baseline: ScheduleResult, improved: ScheduleResult) -> float:
    """baseline/improved makespan ratio (>1 means ``improved`` is faster)."""
    if improved.makespan <= 0:
        raise ValueError("improved makespan must be positive")
    return baseline.makespan / improved.makespan


def efficiency(result: ScheduleResult, serial_seconds: float) -> float:
    """Parallel efficiency vs a serial estimate on the result's SPEs.

    ``serial_seconds`` is one worker's total time; efficiency 1.0 means
    perfect scaling over the SPEs that were busy.
    """
    if result.makespan <= 0:
        raise ValueError("makespan must be positive")
    n = max(1, len(result.per_spe_busy))
    return serial_seconds / (result.makespan * n)


def scaling_efficiency(results: Sequence[ScheduleResult]) -> List[float]:
    """Throughput of each result relative to the first, per bootstrap.

    For a perfectly scalable scheduler the values stay at 1.0 as the
    bootstrap count grows.
    """
    if not results:
        return []
    base = results[0].makespan / results[0].bootstraps
    return [base / (r.makespan / r.bootstraps) for r in results]


def crossover(
    xs: Sequence[int],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> int:
    """First x where series_a stops beating series_b (-1 if never).

    Used to locate the EDTLP-LLP -> EDTLP crossover points of Figures
    7-9.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("series must have equal lengths")
    for x, a, b in zip(xs, series_a, series_b):
        if a > b:
            return x
    return -1


def best_scheduler(results_by_name: Dict[str, ScheduleResult]) -> str:
    """Name of the scheduler with the smallest makespan."""
    if not results_by_name:
        raise ValueError("no results")
    return min(results_by_name.items(), key=lambda kv: kv[1].makespan)[0]


# -- registry readers ---------------------------------------------------------

def registry_value(registry, name: str, default: float = 0.0) -> float:
    """Scalar value of a counter/gauge in ``registry`` (or ``default``)."""
    inst = registry.get(name)
    if inst is None:
        return default
    return float(inst.value)


def offload_latency_percentiles(
    registry, percentiles: Sequence[float] = (50, 90, 99)
) -> Dict[str, float]:
    """Off-load latency percentiles (microseconds) from the registry."""
    hist = registry.get("runtime.offload_latency_us")
    if hist is None or hist.count == 0:
        return {f"p{p:g}": 0.0 for p in percentiles}
    return {f"p{p:g}": hist.percentile(p) for p in percentiles}


def llp_chunk_profile(registry) -> Dict[str, float]:
    """Distribution of LLP chunk sizes (iterations per SPE) measured
    by the loop runtime."""
    hist = registry.get("llp.chunk_size")
    if hist is None or hist.count == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "count": hist.count,
        "mean": hist.mean,
        "p50": hist.percentile(50),
        "p90": hist.percentile(90),
        "max": hist.max,
    }


def scheduler_summary(registry) -> Dict[str, float]:
    """The paper's decision-relevant numbers, read from a run registry.

    Everything here was recorded at the decision point that produced it
    (MGPS window, granularity test, LLP split, off-load completion);
    nothing is re-derived from trace records.
    """
    v = lambda name: registry_value(registry, name)
    summary = {
        "makespan_s": v("run.makespan_s"),
        "spe_utilization": v("run.spe_utilization"),
        "spe_idle_ratio": 1.0 - v("run.spe_utilization"),
        "ppe_occupancy": v("run.ppe_occupancy"),
        "ppe_context_switches": v("ppe.context_switches"),
        "offloads": v("runtime.offloads"),
        "ppe_fallbacks": v("runtime.ppe_fallbacks"),
        "offload_waits": v("runtime.offload_waits"),
        "granularity_accept": v("granularity.accept"),
        "granularity_reject": v("granularity.reject"),
        "mgps_u_estimate": v("mgps.u_estimate"),
        "mgps_window_utilization": v("mgps.window_utilization"),
        "mgps_decisions": v("mgps.decisions"),
        "mgps_mode_switches": v("mgps.mode_switches"),
        "llp_invocations": v("llp.invocations"),
    }
    for key, value in offload_latency_percentiles(registry).items():
        summary[f"offload_latency_{key}_us"] = value
    for key, value in llp_chunk_profile(registry).items():
        summary[f"llp_chunk_{key}"] = value
    return summary


def render_scheduler_summary(registry, title: Optional[str] = None) -> str:
    """Human-readable scheduler summary (the ``repro stats`` header)."""
    s = scheduler_summary(registry)
    lines = [title or "scheduler summary"]
    lines.append(
        f"  makespan {s['makespan_s']:.2f} s, SPE utilization "
        f"{s['spe_utilization']:.1%}, PPE occupancy {s['ppe_occupancy']:.1%}"
    )
    lines.append(
        f"  off-loads {s['offloads']:.0f} (waits {s['offload_waits']:.0f}, "
        f"PPE fallbacks {s['ppe_fallbacks']:.0f}), "
        f"PPE context switches {s['ppe_context_switches']:.0f}"
    )
    lines.append(
        f"  granularity accept/reject "
        f"{s['granularity_accept']:.0f}/{s['granularity_reject']:.0f}"
    )
    lines.append(
        f"  MGPS window utilization U={s['mgps_u_estimate']:.0f} "
        f"({s['mgps_window_utilization']:.1%} of SPEs), "
        f"{s['mgps_decisions']:.0f} decisions, "
        f"{s['mgps_mode_switches']:.0f} mode switches"
    )
    lines.append(
        f"  LLP invocations {s['llp_invocations']:.0f}, chunk size "
        f"p50={s['llp_chunk_p50']:.0f} p90={s['llp_chunk_p90']:.0f} "
        f"(of {s['llp_chunk_count']:.0f} chunks)"
    )
    lines.append(
        f"  off-load latency p50={s['offload_latency_p50_us']:.1f} us, "
        f"p90={s['offload_latency_p90_us']:.1f} us, "
        f"p99={s['offload_latency_p99_us']:.1f} us"
    )
    return "\n".join(lines)
