"""Derived metrics over schedule results."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.results import ScheduleResult

__all__ = [
    "speedup",
    "efficiency",
    "scaling_efficiency",
    "crossover",
    "best_scheduler",
]


def speedup(baseline: ScheduleResult, improved: ScheduleResult) -> float:
    """baseline/improved makespan ratio (>1 means ``improved`` is faster)."""
    if improved.makespan <= 0:
        raise ValueError("improved makespan must be positive")
    return baseline.makespan / improved.makespan


def efficiency(result: ScheduleResult, serial_seconds: float) -> float:
    """Parallel efficiency vs a serial estimate on the result's SPEs.

    ``serial_seconds`` is one worker's total time; efficiency 1.0 means
    perfect scaling over the SPEs that were busy.
    """
    if result.makespan <= 0:
        raise ValueError("makespan must be positive")
    n = max(1, len(result.per_spe_busy))
    return serial_seconds / (result.makespan * n)


def scaling_efficiency(results: Sequence[ScheduleResult]) -> List[float]:
    """Throughput of each result relative to the first, per bootstrap.

    For a perfectly scalable scheduler the values stay at 1.0 as the
    bootstrap count grows.
    """
    if not results:
        return []
    base = results[0].makespan / results[0].bootstraps
    return [base / (r.makespan / r.bootstraps) for r in results]


def crossover(
    xs: Sequence[int],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> int:
    """First x where series_a stops beating series_b (-1 if never).

    Used to locate the EDTLP-LLP -> EDTLP crossover points of Figures
    7-9.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("series must have equal lengths")
    for x, a, b in zip(xs, series_a, series_b):
        if a > b:
            return x
    return -1


def best_scheduler(results_by_name: Dict[str, ScheduleResult]) -> str:
    """Name of the scheduler with the smallest makespan."""
    if not results_by_name:
        raise ValueError("no results")
    return min(results_by_name.items(), key=lambda kv: kv[1].makespan)[0]
