"""Parallel execution of independent simulation points.

Every experiment point (one scheduler on one workload) builds its own
:class:`~repro.sim.engine.Environment`, so sweeps are embarrassingly
parallel at the host level.  This module fans sweep points out over a
``ProcessPoolExecutor`` while preserving input order and determinism
(each point's seed travels with it; results are identical to the serial
path, just faster on multicore hosts).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..cell.params import BladeParams, DEFAULT_BLADE
from ..core.results import ScheduleResult
from ..core.runner import run_experiment
from ..core.schedulers import SchedulerSpec
from ..workloads.traces import Workload

__all__ = ["run_points", "parallel_sweep"]


def _run_point(
    args: Tuple[SchedulerSpec, int, int, int, BladeParams, int]
) -> ScheduleResult:
    spec, bootstraps, tasks_per_bootstrap, wl_seed, blade, seed = args
    wl = Workload(
        bootstraps=bootstraps,
        tasks_per_bootstrap=tasks_per_bootstrap,
        seed=wl_seed,
    )
    return run_experiment(spec, wl, blade=blade, seed=seed)


def run_points(
    points: Sequence[Tuple[SchedulerSpec, int]],
    tasks_per_bootstrap: int = 300,
    blade: BladeParams = DEFAULT_BLADE,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[ScheduleResult]:
    """Run (spec, bootstraps) points, optionally across processes.

    ``workers=None`` (or 1) runs serially in-process; otherwise a
    process pool executes the points concurrently.  Results come back in
    input order and are bit-identical to the serial path.
    """
    jobs = [
        (spec, b, tasks_per_bootstrap, seed, blade, seed)
        for spec, b in points
    ]
    if workers is None or workers <= 1:
        return [_run_point(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_point, jobs))


def parallel_sweep(
    spec: SchedulerSpec,
    bootstrap_counts: Sequence[int],
    tasks_per_bootstrap: int = 300,
    blade: BladeParams = DEFAULT_BLADE,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[ScheduleResult]:
    """A figure curve (one scheduler, many bootstrap counts), in parallel."""
    return run_points(
        [(spec, b) for b in bootstrap_counts],
        tasks_per_bootstrap=tasks_per_bootstrap,
        blade=blade,
        seed=seed,
        workers=workers,
    )
