"""Power- and cost-efficiency comparison (Section 5.6 / Section 6).

The paper argues Cell "has an edge over a general-purpose high-end
processor such as Power5, since it also achieves better cost-performance
and power-performance ratios" but publishes no numbers.  This module
makes that argument quantitative with a parameterized economics model:
energy per analysis (makespan x power draw) and throughput per dollar.

Default power/price figures are representative 2006-era values and are
deliberately easy to override — the *conclusion* (Cell wins both ratios
by a wide margin) is robust to any plausible choice, which is exactly
what the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .report import format_table

__all__ = ["PlatformEconomics", "DEFAULT_ECONOMICS", "efficiency_table"]


@dataclass(frozen=True)
class PlatformEconomics:
    """Power draw and price of one evaluation platform."""

    name: str
    watts: float
    price_usd: float

    def __post_init__(self) -> None:
        if self.watts <= 0 or self.price_usd <= 0:
            raise ValueError("watts and price must be positive")

    def energy_joules(self, makespan_seconds: float) -> float:
        """Energy of one analysis run."""
        if makespan_seconds < 0:
            raise ValueError("makespan must be non-negative")
        return self.watts * makespan_seconds


# Representative 2006-era numbers: the 3.2 GHz Cell's documented ~70 W
# typical draw and its game-console price point; two 2 GHz Prestonia
# Xeons (~58 W each) in a server board; a Power5 module with its
# dominating MCM/cache power and high-end pricing.
DEFAULT_ECONOMICS: Dict[str, PlatformEconomics] = {
    "Cell (MGPS)": PlatformEconomics("Cell (MGPS)", watts=70.0, price_usd=230.0),
    "Intel Xeon": PlatformEconomics("Intel Xeon", watts=116.0, price_usd=600.0),
    "IBM Power5": PlatformEconomics("IBM Power5", watts=150.0, price_usd=2200.0),
}


def efficiency_table(
    makespans: Dict[str, float],
    bootstraps: int,
    economics: Dict[str, PlatformEconomics] = None,
) -> str:
    """Render energy and cost efficiency for one workload size.

    ``makespans`` maps platform name -> seconds for ``bootstraps``
    bootstraps (e.g. from :func:`repro.analysis.fig10_sweep`).
    """
    if bootstraps < 1:
        raise ValueError("bootstraps must be >= 1")
    econ = economics if economics is not None else DEFAULT_ECONOMICS
    rows: List[List[object]] = []
    for name, makespan in makespans.items():
        if name not in econ:
            raise KeyError(f"no economics for platform {name!r}")
        e = econ[name]
        energy_kj = e.energy_joules(makespan) / 1e3
        boots_per_kj = bootstraps / (energy_kj or float("inf"))
        boots_per_hour_per_dollar = (
            bootstraps / (makespan / 3600.0) / e.price_usd
        )
        rows.append(
            [
                name,
                makespan,
                e.watts,
                energy_kj,
                boots_per_kj,
                boots_per_hour_per_dollar,
            ]
        )
    return format_table(
        [
            "platform",
            "makespan [s]",
            "power [W]",
            "energy [kJ]",
            "bootstraps/kJ",
            "bootstraps/h/$",
        ],
        rows,
        title=f"Efficiency for {bootstraps} bootstraps "
        f"(power/price assumptions documented in the module)",
    )
