"""ASCII timelines of SPE schedules — the Figure 2 view.

The paper's Figure 2 illustrates how the EDTLP scheduler keeps SPEs busy
while the Linux scheduler strands them.  :func:`render_timeline` draws
the same picture from a recorded trace: one row per SPE, time flowing
right, a block per off-loaded task labeled with the owning MPI process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.trace import Tracer

__all__ = ["TaskSpan", "extract_spans", "render_timeline", "utilization_bar"]


@dataclass(frozen=True)
class TaskSpan:
    """One task execution on one SPE."""

    spe: str
    start: float
    end: float
    proc: int
    function: str
    workers: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


def extract_spans(tracer: Tracer) -> List[TaskSpan]:
    """Pair up task_start/task_end records into spans."""
    open_by_spe: Dict[str, Tuple[float, int, str, Tuple[str, ...]]] = {}
    spans: List[TaskSpan] = []
    for rec in tracer.records:
        if rec.category != "spe":
            continue
        if rec.event == "task_start":
            if rec.actor in open_by_spe:
                raise ValueError(f"nested task_start on {rec.actor}")
            open_by_spe[rec.actor] = (
                rec.time,
                rec.get("proc"),
                rec.get("function"),
                tuple(rec.get("workers", ())),
            )
        elif rec.event == "task_end":
            try:
                start, proc, function, workers = open_by_spe.pop(rec.actor)
            except KeyError:
                raise ValueError(f"task_end without task_start on {rec.actor}")
            spans.append(
                TaskSpan(rec.actor, start, rec.time, proc, function, workers)
            )
    return spans


def render_timeline(
    tracer: Tracer,
    width: int = 72,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
    spes: Optional[Sequence[str]] = None,
) -> str:
    """Draw one character row per SPE over [t_start, t_end].

    Each busy cell shows the digit of the owning MPI process (mod 10);
    ``.`` is idle; ``+`` marks a cell where several tasks begin and end
    within one character column.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    spans = extract_spans(tracer)
    if not spans:
        return "(no SPE activity recorded)"
    if t_end is None:
        t_end = max(s.end for s in spans)
    if t_end <= t_start:
        raise ValueError("empty time window")
    if spes is None:
        spes = sorted({s.spe for s in spans})
    scale = width / (t_end - t_start)

    lines = [
        f"SPE timeline  [{t_start * 1e3:.2f} ms .. {t_end * 1e3:.2f} ms]"
        f"  (digit = MPI process, '.' = idle)"
    ]
    for spe in spes:
        row = ["."] * width
        owners_per_cell: Dict[int, set] = {}
        for s in spans:
            if s.spe != spe or s.end < t_start or s.start > t_end:
                continue
            c0 = max(0, int((s.start - t_start) * scale))
            c1 = min(width - 1, int((s.end - t_start) * scale))
            for c in range(c0, c1 + 1):
                owners_per_cell.setdefault(c, set()).add(s.proc)
        for c, owners in owners_per_cell.items():
            row[c] = str(min(owners) % 10) if len(owners) == 1 else "+"
        lines.append(f"{spe:>12s} |{''.join(row)}|")
    return "\n".join(lines)


def utilization_bar(
    tracer: Tracer, makespan: float, width: int = 40
) -> str:
    """Per-SPE utilization bars computed from the trace."""
    spans = extract_spans(tracer)
    busy: Dict[str, float] = {}
    for s in spans:
        busy[s.spe] = busy.get(s.spe, 0.0) + s.duration
    if not busy or makespan <= 0:
        return "(no SPE activity recorded)"
    lines = []
    for spe in sorted(busy):
        frac = min(1.0, busy[spe] / makespan)
        bar = "#" * round(frac * width)
        lines.append(f"{spe:>12s} |{bar:<{width}s}| {frac:5.1%}")
    return "\n".join(lines)
