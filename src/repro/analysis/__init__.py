"""Metrics, report rendering and the per-table/figure experiment harness."""

from .experiments import (
    ExperimentResult,
    PAPER_SEC51,
    PAPER_TABLE1_EDTLP,
    PAPER_TABLE1_LINUX,
    PAPER_TABLE2,
    SWEEP_LARGE,
    SWEEP_SMALL,
    fig10_sweep,
    figure_sweep,
    sec51_offload_experiment,
    table1_experiment,
    table2_experiment,
)
from .efficiency_study import (
    DEFAULT_ECONOMICS,
    PlatformEconomics,
    efficiency_table,
)
from .parallel import parallel_sweep, run_points
from .metrics import (
    best_scheduler,
    crossover,
    efficiency,
    llp_chunk_profile,
    offload_latency_percentiles,
    registry_value,
    render_scheduler_summary,
    scaling_efficiency,
    scheduler_summary,
    speedup,
)
from .report import format_series, format_table, paper_comparison
from .timeline import TaskSpan, extract_spans, render_timeline, utilization_bar

__all__ = [
    "ExperimentResult",
    "sec51_offload_experiment",
    "table1_experiment",
    "table2_experiment",
    "figure_sweep",
    "fig10_sweep",
    "PAPER_TABLE1_EDTLP",
    "PAPER_TABLE1_LINUX",
    "PAPER_TABLE2",
    "PAPER_SEC51",
    "SWEEP_SMALL",
    "SWEEP_LARGE",
    "speedup",
    "efficiency",
    "scaling_efficiency",
    "crossover",
    "best_scheduler",
    "registry_value",
    "offload_latency_percentiles",
    "llp_chunk_profile",
    "scheduler_summary",
    "render_scheduler_summary",
    "format_table",
    "format_series",
    "paper_comparison",
    "render_timeline",
    "utilization_bar",
    "extract_spans",
    "TaskSpan",
    "PlatformEconomics",
    "DEFAULT_ECONOMICS",
    "efficiency_table",
    "parallel_sweep",
    "run_points",
]
