"""One function per paper table/figure: the reproduction harness.

Each function runs the relevant simulation sweep and returns a structured
result carrying both the measured series and the paper's published values
(where the paper gives numbers; figures read off the plots are encoded as
qualitative claims checked by :mod:`tests.test_paper_claims`).  The
benchmark modules under ``benchmarks/`` are thin wrappers that time these
functions and print their tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cell.params import BladeParams
from ..core.results import ScheduleResult
from ..core.runner import run_experiment
from ..core.schedulers import SchedulerSpec, edtlp, linux, mgps, static_hybrid
from ..platforms.machines import POWER5, XEON_2X_HT
from ..workloads.traces import Workload
from .report import format_series

__all__ = [
    "PAPER_TABLE1_EDTLP",
    "PAPER_TABLE1_LINUX",
    "PAPER_TABLE2",
    "PAPER_SEC51",
    "ExperimentResult",
    "sec51_offload_experiment",
    "table1_experiment",
    "table2_experiment",
    "figure_sweep",
    "fig10_sweep",
    "SWEEP_SMALL",
    "SWEEP_LARGE",
]

# -- published numbers -------------------------------------------------------

PAPER_TABLE1_EDTLP = (28.46, 29.36, 32.54, 33.12, 37.27, 38.66, 41.87, 43.32)
PAPER_TABLE1_LINUX = (28.42, 29.23, 56.95, 57.38, 85.88, 86.43, 114.92, 115.51)
PAPER_TABLE2 = (28.71, 20.83, 19.37, 18.28, 18.10, 20.52, 18.27, 24.40)
PAPER_SEC51 = {
    "ppe_only": 38.23,
    "naive_offload": 50.38,
    "optimized_offload": 28.82,
}

# Bootstrap counts sampled for the (a) 1-16 and (b) 1-128 figure panels.
SWEEP_SMALL: Tuple[int, ...] = (1, 2, 4, 6, 8, 10, 12, 14, 16)
SWEEP_LARGE: Tuple[int, ...] = (1, 4, 8, 16, 32, 64, 96, 128)


@dataclass
class ExperimentResult:
    """Measured series plus rendering for one table/figure."""

    name: str
    xs: List[object]
    series: Dict[str, List[float]]
    paper: Dict[str, Sequence[float]] = field(default_factory=dict)
    results: Dict[str, List[ScheduleResult]] = field(default_factory=dict)

    def render(self) -> str:
        return format_series(self.name, "config", self.xs, self.series)


# -- Section 5.1: off-load optimization ---------------------------------------

def sec51_offload_experiment(
    tasks_per_bootstrap: int = 500, seed: int = 0
) -> ExperimentResult:
    """PPE-only vs naive off-load vs optimized off-load (1 bootstrap).

    * PPE-only: off-loading disabled; every kernel runs on the PPE.
    * naive: optimized=False uses the unvectorized SPE kernel times.
    * optimized: the tuned kernels.
    """
    wl = Workload(bootstraps=1, tasks_per_bootstrap=tasks_per_bootstrap, seed=seed)

    # PPE-only: off-loading structurally disabled; every kernel runs its
    # PPE version in place.
    ppe = run_experiment(
        edtlp(n_processes=1, offload_enabled=False, label="ppe-only"),
        wl,
        seed=seed,
    )
    ppe_only = ppe.makespan

    # The naive port always off-loads (no granularity throttling yet --
    # that machinery is what the paper develops *after* observing the
    # 50.38 s regression).
    naive = run_experiment(
        edtlp(n_processes=1, optimized=False, granularity_enabled=False,
              label="naive"),
        wl,
        seed=seed,
    )
    opt = run_experiment(edtlp(n_processes=1, label="optimized"), wl, seed=seed)

    xs = ["ppe-only", "naive-offload", "optimized-offload"]
    measured = [ppe_only, naive.makespan, opt.makespan]
    paper = [
        PAPER_SEC51["ppe_only"],
        PAPER_SEC51["naive_offload"],
        PAPER_SEC51["optimized_offload"],
    ]
    return ExperimentResult(
        name="Section 5.1: SPE off-loading and optimization (1 bootstrap, 42_SC)",
        xs=xs,
        series={"measured": measured, "paper": list(paper)},
    )


# -- Table 1 -------------------------------------------------------------------

def table1_experiment(
    tasks_per_bootstrap: int = 400,
    workers: Sequence[int] = tuple(range(1, 9)),
    seed: int = 0,
) -> ExperimentResult:
    """EDTLP vs the Linux scheduler, w workers = w bootstraps."""
    edtlp_times: List[float] = []
    linux_times: List[float] = []
    results: Dict[str, List[ScheduleResult]] = {"edtlp": [], "linux": []}
    for w in workers:
        wl = Workload(bootstraps=w, tasks_per_bootstrap=tasks_per_bootstrap,
                      seed=seed)
        re = run_experiment(edtlp(n_processes=w), wl, seed=seed)
        rl = run_experiment(linux(n_processes=w), wl, seed=seed)
        edtlp_times.append(re.makespan)
        linux_times.append(rl.makespan)
        results["edtlp"].append(re)
        results["linux"].append(rl)
    return ExperimentResult(
        name="Table 1: EDTLP vs Linux scheduler (42_SC)",
        xs=list(workers),
        series={
            "edtlp": edtlp_times,
            "edtlp(paper)": list(PAPER_TABLE1_EDTLP[: len(workers)]),
            "linux": linux_times,
            "linux(paper)": list(PAPER_TABLE1_LINUX[: len(workers)]),
        },
        paper={"edtlp": PAPER_TABLE1_EDTLP, "linux": PAPER_TABLE1_LINUX},
        results=results,
    )


# -- Table 2 -------------------------------------------------------------------

def table2_experiment(
    tasks_per_bootstrap: int = 400,
    degrees: Sequence[int] = tuple(range(1, 9)),
    seed: int = 0,
) -> ExperimentResult:
    """One bootstrap with loop-level parallelism over k SPEs."""
    times: List[float] = []
    results: Dict[str, List[ScheduleResult]] = {"llp": []}
    for k in degrees:
        wl = Workload(bootstraps=1, tasks_per_bootstrap=tasks_per_bootstrap,
                      seed=seed)
        spec = static_hybrid(k, n_processes=1) if k > 1 else edtlp(n_processes=1)
        r = run_experiment(spec, wl, seed=seed)
        times.append(r.makespan)
        results["llp"].append(r)
    return ExperimentResult(
        name="Table 2: loop-level parallelism across SPEs (1 bootstrap, 42_SC)",
        xs=list(degrees),
        series={
            "llp": times,
            "llp(paper)": list(PAPER_TABLE2[: len(degrees)]),
        },
        paper={"llp": PAPER_TABLE2},
        results=results,
    )


# -- Figures 7, 8, 9 -------------------------------------------------------------

def figure_sweep(
    bootstrap_counts: Sequence[int],
    schedulers: Optional[Dict[str, SchedulerSpec]] = None,
    tasks_per_bootstrap: int = 300,
    n_cells: int = 1,
    seed: int = 0,
    name: str = "figure",
) -> ExperimentResult:
    """The shared engine of Figures 7-9: scheduler curves vs bootstraps.

    Defaults to the four curves the paper plots: MGPS, EDTLP-LLP with 2
    and 4 SPEs per loop, and plain EDTLP.  ``n_cells=2`` reproduces the
    dual-Cell panels of Figure 9.
    """
    if schedulers is None:
        schedulers = {
            "MGPS": mgps(),
            "EDTLP-LLP2": static_hybrid(2),
            "EDTLP-LLP4": static_hybrid(4),
            "EDTLP": edtlp(),
        }
    blade = BladeParams(n_cells=n_cells)
    series: Dict[str, List[float]] = {nm: [] for nm in schedulers}
    results: Dict[str, List[ScheduleResult]] = {nm: [] for nm in schedulers}
    for b in bootstrap_counts:
        wl = Workload(bootstraps=b, tasks_per_bootstrap=tasks_per_bootstrap,
                      seed=seed)
        for nm, spec in schedulers.items():
            r = run_experiment(spec, wl, blade=blade, seed=seed)
            series[nm].append(r.makespan)
            results[nm].append(r)
    return ExperimentResult(
        name=name, xs=list(bootstrap_counts), series=series, results=results
    )


# -- Figure 10 --------------------------------------------------------------------

def fig10_sweep(
    bootstrap_counts: Sequence[int],
    tasks_per_bootstrap: int = 300,
    seed: int = 0,
) -> ExperimentResult:
    """Cell (MGPS) vs dual Hyper-Threaded Xeon vs IBM Power5."""
    cell_times: List[float] = []
    results: Dict[str, List[ScheduleResult]] = {"cell": []}
    for b in bootstrap_counts:
        wl = Workload(bootstraps=b, tasks_per_bootstrap=tasks_per_bootstrap,
                      seed=seed)
        r = run_experiment(mgps(), wl, seed=seed)
        cell_times.append(r.makespan)
        results["cell"].append(r)
    return ExperimentResult(
        name="Figure 10: Cell vs Xeon vs Power5 (42_SC)",
        xs=list(bootstrap_counts),
        series={
            "Intel Xeon": XEON_2X_HT.sweep(bootstrap_counts),
            "IBM Power5": POWER5.sweep(bootstrap_counts),
            "Cell (MGPS)": cell_times,
        },
        results=results,
    )
