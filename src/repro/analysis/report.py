"""Plain-text table and series rendering for benches and examples.

Every benchmark prints its reproduced table/figure through these helpers
so the output is uniform and diff-able against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "paper_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[float]],
) -> str:
    """A 'figure' as a table: one x column, one column per curve."""
    headers = [x_label] + list(series.keys())
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def paper_comparison(
    title: str,
    labels: Sequence[object],
    paper: Sequence[float],
    measured: Sequence[float],
    label_name: str = "config",
) -> str:
    """Three-column comparison: paper value, measured value, ratio."""
    if not (len(labels) == len(paper) == len(measured)):
        raise ValueError("labels, paper and measured must align")
    rows = []
    for l, p, m in zip(labels, paper, measured):
        rows.append([l, p, m, m / p if p else float("nan")])
    return format_table(
        [label_name, "paper [s]", "measured [s]", "ratio"], rows, title=title
    )
