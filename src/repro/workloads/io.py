"""Trace persistence: save and load off-load traces as JSON.

Recorded kernel traces from real inferences (or expensive synthetic
builds) can be stored and replayed later — the usual workflow for
comparing schedulers offline on captured workloads.  The format is
versioned, self-describing JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..cell.local_store import CodeImage
from .taskspec import BootstrapTrace, LoopSpec, OffloadItem, TaskSpec

__all__ = ["trace_to_dict", "trace_from_dict", "save_traces", "load_traces"]

_FORMAT_VERSION = 1


def trace_to_dict(trace: BootstrapTrace) -> dict:
    """Serialize one trace to plain JSON-compatible data."""
    return {
        "version": _FORMAT_VERSION,
        "index": trace.index,
        "tail_ppe": trace.tail_ppe,
        "scale": trace.scale,
        "code_image": {
            "name": trace.code_image.name,
            "variant": trace.code_image.variant,
            "size": trace.code_image.size,
        },
        "llp_image": {
            "name": trace.llp_image.name,
            "variant": trace.llp_image.variant,
            "size": trace.llp_image.size,
        },
        "items": [
            {
                "gap": item.ppe_gap,
                "fn": item.task.function,
                "spe": item.task.spe_time,
                "ppe": item.task.ppe_time,
                "naive": item.task.naive_spe_time,
                "ws": item.task.working_set,
                "key": item.task.data_key,
                "loop": (
                    None
                    if item.task.loop is None
                    else {
                        "iters": item.task.loop.iterations,
                        "cov": item.task.loop.coverage,
                        "red": item.task.loop.reduction,
                        "bpi": item.task.loop.bytes_per_iteration,
                    }
                ),
            }
            for item in trace.items
        ],
    }


def trace_from_dict(data: dict) -> BootstrapTrace:
    """Inverse of :func:`trace_to_dict`."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    items = []
    for it in data["items"]:
        loop = it.get("loop")
        items.append(
            OffloadItem(
                ppe_gap=it["gap"],
                task=TaskSpec(
                    function=it["fn"],
                    spe_time=it["spe"],
                    ppe_time=it["ppe"],
                    naive_spe_time=it["naive"],
                    working_set=it.get("ws", 0),
                    data_key=it.get("key"),
                    loop=(
                        None
                        if loop is None
                        else LoopSpec(
                            iterations=loop["iters"],
                            coverage=loop["cov"],
                            reduction=loop["red"],
                            bytes_per_iteration=loop["bpi"],
                        )
                    ),
                ),
            )
        )
    ci = data["code_image"]
    li = data["llp_image"]
    return BootstrapTrace(
        index=data["index"],
        items=tuple(items),
        tail_ppe=data["tail_ppe"],
        scale=data["scale"],
        code_image=CodeImage(ci["name"], ci["variant"], ci["size"]),
        llp_image=CodeImage(li["name"], li["variant"], li["size"]),
    )


def save_traces(traces: List[BootstrapTrace], path: Union[str, Path]) -> None:
    """Write traces to a JSON file."""
    payload = {
        "version": _FORMAT_VERSION,
        "traces": [trace_to_dict(t) for t in traces],
    }
    Path(path).write_text(json.dumps(payload))


def load_traces(path: Union[str, Path]) -> List[BootstrapTrace]:
    """Read traces back from :func:`save_traces` output."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported trace file version")
    return [trace_from_dict(d) for d in payload["traces"]]
