"""Bulk-synchronous hybrid MPI workloads (the generalization claim).

The paper argues its schedulers "generalize to a broad range of
applications, particularly those written in MPI or in the hybrid
MPI/OpenMP model" (Section 6).  RAxML's bootstraps are embarrassingly
parallel; the harder — and more common — MPI shape is bulk-synchronous:
iterations of local compute (with off-loadable kernels) separated by
barriers, often with *load imbalance* across ranks.

A :class:`BSPWorkload` models exactly that: per (rank, iteration), a run
of off-loads whose count follows per-rank weights.  During each phase's
tail only the overloaded ranks still compute, so task-level parallelism
collapses — the regime where MGPS's loop-level parallelism accelerates
the stragglers and pulls the barrier in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..cell.local_store import CodeImage
from ..sim.rng import RngStreams
from .taskspec import LoopSpec, OffloadItem, TaskSpec

__all__ = ["BSPWorkload"]

US = 1e-6
KB = 1024


@dataclass
class BSPWorkload:
    """An iterative bulk-synchronous workload over ``n_processes`` ranks.

    Attributes
    ----------
    n_processes:
        MPI ranks (each is one software thread on the PPE).
    iterations:
        Outer iterations; a barrier separates consecutive ones.
    tasks_per_iteration:
        Mean off-loads per rank per iteration.
    imbalance:
        Straggler skew: rank 0 carries ``1 + imbalance`` times the load
        of every other rank (0 = perfectly even).  Stragglers are the
        classic BSP pathology: between the straggler's last task and the
        barrier, every other rank idles.
    task_us / gap_us:
        Mean off-loaded kernel duration and PPE gap.
    """

    n_processes: int = 8
    iterations: int = 10
    tasks_per_iteration: int = 50
    imbalance: float = 0.0
    task_us: float = 100.0
    gap_us: float = 8.0
    loop_iterations: int = 228
    loop_coverage: float = 0.7
    seed: int = 0
    scale: float = 1.0
    code_image: CodeImage = field(
        default_factory=lambda: CodeImage("bsp", "serial", 80 * KB)
    )
    llp_image: CodeImage = field(
        default_factory=lambda: CodeImage("bsp", "llp", 84 * KB)
    )

    def __post_init__(self) -> None:
        if self.n_processes < 1 or self.iterations < 1:
            raise ValueError("need at least one process and one iteration")
        if self.tasks_per_iteration < 1:
            raise ValueError("tasks_per_iteration must be >= 1")
        if self.imbalance < 0:
            raise ValueError("imbalance must be non-negative")
        w = np.ones(self.n_processes)
        w[0] += self.imbalance
        self._weights = w
        self._cache: dict = {}

    @property
    def weights(self) -> np.ndarray:
        """Per-rank load weights (1.0 for all but the straggler)."""
        return self._weights.copy()

    def phase_items(self, rank: int, iteration: int) -> Tuple[OffloadItem, ...]:
        """The off-load run of ``rank`` in ``iteration``."""
        if not (0 <= rank < self.n_processes):
            raise IndexError(f"rank {rank} out of range")
        if not (0 <= iteration < self.iterations):
            raise IndexError(f"iteration {iteration} out of range")
        key = (rank, iteration)
        items = self._cache.get(key)
        if items is None:
            rng = RngStreams(self.seed).spawn(f"r{rank}.i{iteration}").stream("t")
            n = max(1, round(self.tasks_per_iteration * self._weights[rank]))
            durations = rng.gamma(6.0, (self.task_us * US) / 6.0, size=n)
            gaps = rng.gamma(2.0, (self.gap_us * US) / 2.0, size=n)
            out: List[OffloadItem] = []
            for d, g in zip(durations, gaps):
                spe_t = float(d)
                out.append(
                    OffloadItem(
                        ppe_gap=float(g),
                        task=TaskSpec(
                            function="bsp_kernel",
                            spe_time=spe_t,
                            ppe_time=spe_t * 1.4,
                            naive_spe_time=spe_t * 2.0,
                            loop=LoopSpec(
                                iterations=self.loop_iterations,
                                coverage=self.loop_coverage,
                                reduction=True,
                                bytes_per_iteration=128,
                            ),
                            working_set=48 * KB,
                            data_key=f"bsp.r{rank}",
                        ),
                    )
                )
            items = tuple(out)
            self._cache[key] = items
        return items

    def total_tasks(self) -> int:
        return sum(
            len(self.phase_items(r, i))
            for r in range(self.n_processes)
            for i in range(self.iterations)
        )

    def serial_estimate(self) -> float:
        """One rank executing everything back to back (SPE times)."""
        return sum(
            item.ppe_gap + item.task.spe_time
            for r in range(self.n_processes)
            for i in range(self.iterations)
            for item in self.phase_items(r, i)
        )
