"""Workload profile constants from the paper.

Everything here is a number the paper states (Sections 3, 5.1–5.3) or a
value derived arithmetically from stated numbers.  The profile describes
RAxML's execution on the 42_SC input (42 organisms x 1167 nucleotides):
the gprof function breakdown, the one-bootstrap anchor timings, task
granularity on the SPEs, and the loop geometry inside off-loaded tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["FunctionProfile", "RaxmlProfile", "RAXML_42SC"]

US = 1e-6
KB = 1024


@dataclass(frozen=True)
class FunctionProfile:
    """Profile of one off-loadable likelihood function.

    Attributes
    ----------
    name:
        Function name in RAxML (``newview``, ``makenewz``, ``evaluate``).
    time_share:
        Fraction of total likelihood (off-loaded) time spent here.
    loop_coverage:
        Fraction of the function body inside its parallelizable for-loops.
    reduction:
        True when the loop ends in a global reduction (``evaluate`` and
        ``makenewz`` accumulate site log-likelihoods / derivatives, which
        serializes at the master SPE).
    bytes_per_iteration:
        Local-store bytes a loop worker must DMA per loop iteration
        (likelihood vectors x1/x2 and the diagptable slice; Figure 3).
    mean_task_us:
        Mean duration of one off-loaded invocation on an SPE, in us.
    """

    name: str
    time_share: float
    loop_coverage: float
    reduction: bool
    bytes_per_iteration: int
    mean_task_us: float

    def __post_init__(self) -> None:
        if not (0.0 < self.time_share <= 1.0):
            raise ValueError(f"bad time_share {self.time_share}")
        if not (0.0 <= self.loop_coverage <= 1.0):
            raise ValueError(f"bad loop_coverage {self.loop_coverage}")
        if self.mean_task_us <= 0:
            raise ValueError("mean_task_us must be positive")


@dataclass(frozen=True)
class RaxmlProfile:
    """End-to-end profile of one RAxML bootstrap on one Cell.

    The anchor timings come straight from the paper:

    * ``ppe_only_seconds`` — 38.23 s before any off-loading (Section 5.1);
    * ``naive_offload_seconds`` — 50.38 s with unoptimized SPE code;
    * ``optimized_seconds`` — 28.46 s fully optimized, EDTLP, 1 worker
      (Table 1, row 1);
    * ``spe_fraction`` — 90% of optimized execution is SPE compute;
    * ``mean_task_us`` / ``mean_gap_us`` — 96 us mean off-loaded task and
      11 us mean PPE compute between off-loads (Section 5.2);
    * ``loop_iterations`` — 228 parallel-loop iterations for 42_SC
      (Section 5.3).
    """

    name: str = "raxml-42SC"
    taxa: int = 42
    sites: int = 1167
    ppe_only_seconds: float = 38.23
    naive_offload_seconds: float = 50.38
    optimized_seconds: float = 28.46
    spe_fraction: float = 0.90
    mean_task_us: float = 96.0
    mean_gap_us: float = 11.0
    task_cv: float = 0.40
    runtime_overhead_us: float = 2.7
    loop_iterations: int = 228
    code_image_kb: int = 117
    llp_image_kb: int = 123
    functions: Tuple[FunctionProfile, ...] = (
        FunctionProfile(
            name="newview",
            time_share=0.768 / 0.9877,
            loop_coverage=0.71,
            reduction=False,
            bytes_per_iteration=144,
            mean_task_us=104.0,
        ),
        FunctionProfile(
            name="makenewz",
            time_share=0.196 / 0.9877,
            loop_coverage=0.68,
            reduction=True,
            bytes_per_iteration=112,
            mean_task_us=88.0,
        ),
        FunctionProfile(
            name="evaluate",
            time_share=0.0237 / 0.9877,
            loop_coverage=0.65,
            reduction=True,
            bytes_per_iteration=96,
            mean_task_us=48.0,
        ),
    )

    def __post_init__(self) -> None:
        total = sum(f.time_share for f in self.functions)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"function time shares sum to {total}, expected 1")
        if not (0.0 < self.spe_fraction < 1.0):
            raise ValueError("spe_fraction must be in (0, 1)")

    # -- derived anchors ----------------------------------------------------
    @property
    def spe_seconds(self) -> float:
        """Total SPE compute per bootstrap (optimized)."""
        return self.optimized_seconds * self.spe_fraction

    @property
    def ppe_seconds(self) -> float:
        """Total PPE compute per bootstrap (the non-off-loaded 10%)."""
        return self.optimized_seconds * (1.0 - self.spe_fraction)

    @property
    def tasks_per_bootstrap_full(self) -> int:
        """Number of off-loads a real (unscaled) bootstrap performs."""
        return round(self.spe_seconds / (self.mean_task_us * US))

    @property
    def ppe_slowdown(self) -> float:
        """t_ppe / t_spe for the off-loadable code.

        On the PPE, the off-loadable portion takes the PPE-only total minus
        the never-off-loaded part.
        """
        offloadable_on_ppe = self.ppe_only_seconds - self.ppe_seconds
        return offloadable_on_ppe / self.spe_seconds

    @property
    def naive_slowdown(self) -> float:
        """Naive (unoptimized) SPE time / optimized SPE time."""
        naive_spe = self.naive_offload_seconds - self.ppe_seconds
        return naive_spe / self.spe_seconds

    def function_by_name(self, name: str) -> FunctionProfile:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function profile named {name!r}")

    def with_(self, **kwargs) -> "RaxmlProfile":
        return replace(self, **kwargs)

    def scaled_to_sites(self, n_sites: int) -> "RaxmlProfile":
        """Profile for an alignment of ``n_sites`` nucleotides.

        Likelihood work is linear in alignment length: task durations,
        the PPE-only/naive/optimized anchors, and the parallel-loop
        iteration counts all scale with ``n_sites / 1167`` (Section 5.3:
        "alignments that have a larger number of nucleotides per organism
        have more loop iterations to distribute across SPEs").  Per-task
        PPE gaps (tree bookkeeping) do not scale, so longer alignments
        also have a better compute-to-dispatch ratio.
        """
        if n_sites < 1:
            raise ValueError("n_sites must be positive")
        f = n_sites / self.sites
        total_scale = (
            self.spe_fraction * f + (1.0 - self.spe_fraction)
        )
        return replace(
            self,
            name=f"{self.name.split('@')[0]}@{n_sites}",
            sites=n_sites,
            ppe_only_seconds=self.ppe_only_seconds
            * ((self.ppe_only_seconds - self.ppe_seconds) * f
               + self.ppe_seconds) / self.ppe_only_seconds,
            naive_offload_seconds=(self.naive_offload_seconds
                                   - self.ppe_seconds) * f
            + self.ppe_seconds,
            optimized_seconds=self.optimized_seconds * total_scale,
            spe_fraction=self.spe_fraction * f / total_scale,
            mean_task_us=self.mean_task_us * f,
            loop_iterations=max(1, round(self.loop_iterations * f)),
            functions=tuple(
                replace(fn, mean_task_us=fn.mean_task_us * f)
                for fn in self.functions
            ),
        )


RAXML_42SC = RaxmlProfile()
