"""Workload models: the RAxML profile, trace generation, synthetic streams."""

from .profiles import FunctionProfile, RAXML_42SC, RaxmlProfile
from .synthetic import (
    bursty_trace,
    fine_grained_trace,
    interleaved_locality_trace,
    mixed_granularity_trace,
    uniform_trace,
)
from .coupled import BSPWorkload
from .io import load_traces, save_traces, trace_from_dict, trace_to_dict
from .taskspec import BootstrapTrace, LoopSpec, OffloadItem, TaskSpec
from .traces import FixedTraceWorkload, TraceBuilder, Workload

__all__ = [
    "RaxmlProfile",
    "FunctionProfile",
    "RAXML_42SC",
    "TaskSpec",
    "LoopSpec",
    "OffloadItem",
    "BootstrapTrace",
    "TraceBuilder",
    "Workload",
    "FixedTraceWorkload",
    "BSPWorkload",
    "save_traces",
    "load_traces",
    "trace_to_dict",
    "trace_from_dict",
    "uniform_trace",
    "fine_grained_trace",
    "mixed_granularity_trace",
    "bursty_trace",
    "interleaved_locality_trace",
]
