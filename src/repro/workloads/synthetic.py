"""Synthetic workloads for stress-testing the schedulers.

The paper evaluates on RAxML only, but argues the policies generalize
(Section 6).  These generators create controlled task streams that stress
specific mechanisms:

* :func:`fine_grained_trace` — tasks below the off-load granularity
  threshold, exercising the EDTLP granularity test and PPE fallback;
* :func:`mixed_granularity_trace` — alternating coarse/fine tasks;
* :func:`bursty_trace` — long PPE phases between off-load bursts,
  exercising MGPS's timer-based adaptation;
* :func:`uniform_trace` — deterministic identical tasks for closed-form
  cross-checking of simulator output against queueing arithmetic.
"""

from __future__ import annotations

from typing import Optional

from ..cell.local_store import CodeImage
from ..sim.rng import RngStreams
from .taskspec import BootstrapTrace, LoopSpec, OffloadItem, TaskSpec

__all__ = [
    "uniform_trace",
    "fine_grained_trace",
    "mixed_granularity_trace",
    "bursty_trace",
    "interleaved_locality_trace",
]

US = 1e-6
KB = 1024

_CODE = CodeImage("synthetic", "serial", 64 * KB)
_LLP_CODE = CodeImage("synthetic", "llp", 68 * KB)

_DEFAULT_LOOP = LoopSpec(
    iterations=200, coverage=0.8, reduction=True, bytes_per_iteration=128
)


def _item(spe_us: float, ppe_us: float, gap_us: float,
          loop: Optional[LoopSpec] = _DEFAULT_LOOP,
          function: str = "synthetic") -> OffloadItem:
    return OffloadItem(
        ppe_gap=gap_us * US,
        task=TaskSpec(
            function=function,
            spe_time=spe_us * US,
            ppe_time=ppe_us * US,
            naive_spe_time=2.0 * spe_us * US,
            loop=loop,
        ),
    )


def _trace(items, index: int = 0, scale: float = 1.0,
           tail_us: float = 10.0) -> BootstrapTrace:
    return BootstrapTrace(
        index=index,
        items=tuple(items),
        tail_ppe=tail_us * US,
        scale=scale,
        code_image=_CODE,
        llp_image=_LLP_CODE,
    )


def uniform_trace(n_tasks: int = 100, spe_us: float = 100.0,
                  ppe_us: float = 140.0, gap_us: float = 10.0,
                  index: int = 0, scale: float = 1.0) -> BootstrapTrace:
    """Identical tasks at a fixed cadence — arithmetic is checkable by hand."""
    return _trace(
        [_item(spe_us, ppe_us, gap_us) for _ in range(n_tasks)],
        index=index, scale=scale,
    )


def fine_grained_trace(n_tasks: int = 100, spe_us: float = 8.0,
                       ppe_us: float = 4.0, gap_us: float = 2.0,
                       index: int = 0) -> BootstrapTrace:
    """Tasks where t_spe exceeds t_ppe: off-loading never pays off.

    A correct granularity test executes these on the PPE after the first
    optimistic off-load of each function.
    """
    return _trace(
        [_item(spe_us, ppe_us, gap_us, function="tiny") for _ in range(n_tasks)],
        index=index,
    )


def mixed_granularity_trace(n_tasks: int = 100, index: int = 0,
                            seed: int = 0) -> BootstrapTrace:
    """Coarse off-loadable tasks interleaved with fine PPE-bound ones."""
    rng = RngStreams(seed).stream("mixed")
    items = []
    for i in range(n_tasks):
        if i % 3 == 2:
            items.append(_item(6.0, 3.0, 2.0, function="tiny"))
        else:
            spe = float(rng.gamma(4.0, 25.0))
            items.append(_item(spe, spe * 1.4, 10.0, function="coarse"))
    return _trace(items, index=index)


def bursty_trace(n_bursts: int = 10, burst_len: int = 20,
                 spe_us: float = 100.0, quiet_us: float = 5000.0,
                 index: int = 0) -> BootstrapTrace:
    """Off-load bursts separated by long PPE-only phases.

    Between bursts no departures occur, so window-based adaptation
    stalls unless the scheduler also adapts on timer interrupts
    (Section 5.4 discusses exactly this case).
    """
    items = []
    for b in range(n_bursts):
        for i in range(burst_len):
            gap = quiet_us if i == 0 and b > 0 else 10.0
            items.append(_item(spe_us, spe_us * 1.4, gap))
    return _trace(items, index=index)


def interleaved_locality_trace(
    n_keys: int = 8,
    tasks_per_key: int = 40,
    working_set_kb: int = 100,
    spe_us: float = 100.0,
    gap_us: float = 10.0,
    index: int = 0,
) -> BootstrapTrace:
    """Round-robin tasks over ``n_keys`` data sets with large working sets.

    The stress case for memory-aware scheduling: consecutive tasks touch
    different data sets, so a single LIFO-reused SPE thrashes its local
    store while locality-aware placement pins each set to its own SPE.
    """
    items = []
    for i in range(n_keys * tasks_per_key):
        base = _item(spe_us, spe_us * 1.4, gap_us)
        items.append(
            OffloadItem(
                ppe_gap=base.ppe_gap,
                task=TaskSpec(
                    function=base.task.function,
                    spe_time=base.task.spe_time,
                    ppe_time=base.task.ppe_time,
                    naive_spe_time=base.task.naive_spe_time,
                    loop=base.task.loop,
                    working_set=working_set_kb * KB,
                    data_key=f"set{i % n_keys}",
                ),
            )
        )
    return _trace(items, index=index)
