"""Bootstrap trace generation from a workload profile.

A real RAxML bootstrap off-loads ~267 k likelihood-function invocations.
Simulating every one of them for 128-bootstrap sweeps is unnecessary: the
off-load stream is statistically stationary, so a compressed trace of
``tasks_per_bootstrap`` off-loads with the same duration distribution,
function mix and PPE-gap structure produces the same scheduling dynamics.
Reported times are multiplied by the compression ratio (``trace.scale``).
The scale-invariance of this construction is verified in
``tests/test_traces.py`` and ``tests/test_scaling_invariance.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..cell.local_store import CodeImage
from ..sim.rng import RngStreams
from .profiles import RaxmlProfile, RAXML_42SC
from .taskspec import BootstrapTrace, LoopSpec, OffloadItem, TaskSpec

__all__ = ["TraceBuilder", "Workload", "FixedTraceWorkload"]

US = 1e-6
KB = 1024


class TraceBuilder:
    """Builds compressed bootstrap traces from a :class:`RaxmlProfile`."""

    def __init__(self, profile: RaxmlProfile = RAXML_42SC, seed: int = 0) -> None:
        self.profile = profile
        self.rng = RngStreams(seed)
        self._code = CodeImage(profile.name, "serial", profile.code_image_kb * KB)
        self._llp_code = CodeImage(profile.name, "llp", profile.llp_image_kb * KB)

    def _function_counts(self, n_tasks: int) -> Dict[str, int]:
        """Apportion ``n_tasks`` across functions by invocation frequency.

        A function's invocation share is its time share divided by its
        mean task length (largest-remainder rounding keeps the total).
        """
        p = self.profile
        weights = np.array(
            [f.time_share / f.mean_task_us for f in p.functions], dtype=float
        )
        weights /= weights.sum()
        raw = weights * n_tasks
        counts = np.floor(raw).astype(int)
        # Largest-remainder: hand leftover tasks to the biggest remainders.
        for i in np.argsort(raw - counts)[::-1][: n_tasks - counts.sum()]:
            counts[i] += 1
        # Every function appears at least once if we have room for it.
        for i in range(len(counts)):
            if counts[i] == 0 and n_tasks >= len(counts):
                counts[i] += 1
                counts[int(np.argmax(counts))] -= 1
        return {f.name: int(c) for f, c in zip(p.functions, counts)}

    def build(self, index: int, tasks_per_bootstrap: int) -> BootstrapTrace:
        """Build the compressed trace of bootstrap ``index``.

        Traces for different indices differ (independent RNG substreams)
        but each index always produces the identical trace, so scheduler
        policies are compared on exactly the same workload (common random
        numbers).
        """
        if tasks_per_bootstrap < 4:
            raise ValueError("tasks_per_bootstrap must be >= 4")
        p = self.profile
        rng = self.rng.spawn(f"bootstrap{index}").stream("tasks")
        scale = p.tasks_per_bootstrap_full / tasks_per_bootstrap

        counts = self._function_counts(tasks_per_bootstrap)
        specs: List[TaskSpec] = []
        # Gamma-distributed durations with the profile's CV, then exact
        # normalization so the trace's total SPE time matches the profile.
        shape = 1.0 / (p.task_cv**2)
        target_total = p.spe_seconds / scale
        durations: List[float] = []
        functions: List[str] = []
        for fprof in p.functions:
            n = counts[fprof.name]
            if n == 0:
                continue
            mean = fprof.mean_task_us * US
            draw = rng.gamma(shape, mean / shape, size=n)
            durations.extend(draw.tolist())
            functions.extend([fprof.name] * n)
        # Normalize totals so each function keeps its time share exactly.
        per_fn_target = {
            f.name: target_total * f.time_share for f in p.functions
        }
        per_fn_total: Dict[str, float] = {}
        for d, f in zip(durations, functions):
            per_fn_total[f] = per_fn_total.get(f, 0.0) + d
        norm = {
            name: per_fn_target[name] / per_fn_total[name]
            for name in per_fn_total
        }

        # Per-bootstrap working set: the likelihood vectors the kernels
        # stream (two CLVs of 2 x 16 B per site), shared across the
        # bootstrap's tasks -- the unit of reuse for locality-aware
        # scheduling.  Long alignments stream through a bounded
        # double-buffered tile (the SPE code's aggregated DMA), so the
        # *resident* set is capped well below the local store.
        working_set = min(32 * p.sites, 96 * KB)
        data_key = f"{p.name}.b{index}"
        order = rng.permutation(len(durations))
        for i in order:
            fname = functions[i]
            fprof = p.function_by_name(fname)
            spe_t = durations[i] * norm[fname]
            specs.append(
                TaskSpec(
                    function=fname,
                    spe_time=spe_t,
                    ppe_time=spe_t * p.ppe_slowdown,
                    naive_spe_time=spe_t * p.naive_slowdown,
                    loop=LoopSpec(
                        iterations=p.loop_iterations,
                        coverage=fprof.loop_coverage,
                        reduction=fprof.reduction,
                        bytes_per_iteration=fprof.bytes_per_iteration,
                    ),
                    working_set=working_set,
                    data_key=data_key,
                )
            )

        # PPE gaps: one before each off-load plus a tail, normalized so
        # that gap + per-off-load runtime overhead (dispatch, signals,
        # completion handling -- which the simulator charges explicitly)
        # reproduces the profile's total PPE time.  The paper's "11 us
        # between consecutive off-loads" includes that scheduler work.
        n = len(specs)
        gaps = rng.gamma(2.0, (p.mean_gap_us * US) / 2.0, size=n + 1)
        gap_budget = p.ppe_seconds / scale - n * p.runtime_overhead_us * US
        if gap_budget <= 0:
            raise ValueError(
                "runtime overhead exceeds the PPE budget; increase "
                "tasks_per_bootstrap or reduce runtime_overhead_us"
            )
        gaps *= gap_budget / gaps.sum()
        items = tuple(
            OffloadItem(ppe_gap=float(g), task=s) for g, s in zip(gaps[:-1], specs)
        )
        return BootstrapTrace(
            index=index,
            items=items,
            tail_ppe=float(gaps[-1]),
            scale=scale,
            code_image=self._code,
            llp_image=self._llp_code,
        )


@dataclass
class Workload:
    """A run of ``bootstraps`` independent tree searches.

    This is the unit the experiment runner consumes: it lazily builds and
    caches one compressed trace per bootstrap.
    """

    bootstraps: int
    tasks_per_bootstrap: int = 1000
    profile: RaxmlProfile = field(default_factory=lambda: RAXML_42SC)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bootstraps < 1:
            raise ValueError("need at least one bootstrap")
        self._builder = TraceBuilder(self.profile, self.seed)
        self._cache: Dict[int, BootstrapTrace] = {}

    def trace(self, index: int) -> BootstrapTrace:
        if not (0 <= index < self.bootstraps):
            raise IndexError(f"bootstrap index {index} out of range")
        tr = self._cache.get(index)
        if tr is None:
            tr = self._builder.build(index, self.tasks_per_bootstrap)
            self._cache[index] = tr
        return tr

    @property
    def scale(self) -> float:
        return self.trace(0).scale

    def serial_estimate(self) -> float:
        """Paper-scale estimate of one worker executing everything."""
        return sum(
            self.trace(i).serial_estimate * self.trace(i).scale
            for i in range(self.bootstraps)
        )


@dataclass
class FixedTraceWorkload:
    """A workload over explicitly provided traces.

    Used to schedule synthetic task streams and kernel logs recorded from
    real inferences (see :func:`repro.phylo.trace_from_kernel_log`).
    """

    traces: List["BootstrapTrace"]

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValueError("need at least one trace")

    @property
    def bootstraps(self) -> int:
        return len(self.traces)

    def trace(self, index: int) -> "BootstrapTrace":
        return self.traces[index]

    @property
    def scale(self) -> float:
        return self.traces[0].scale

    def serial_estimate(self) -> float:
        return sum(t.serial_estimate * t.scale for t in self.traces)
