"""Task and trace data structures handed to the schedulers.

A *task spec* is one off-loadable function invocation with everything the
runtime needs to decide and to simulate: the optimized SPE duration, the
PPE fallback duration, the naive (unoptimized) SPE duration, and the loop
geometry for loop-level parallelization.  A *bootstrap trace* is the
sequence of off-loads one RAxML bootstrap performs, interleaved with PPE
compute gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cell.local_store import CodeImage

__all__ = ["LoopSpec", "TaskSpec", "OffloadItem", "BootstrapTrace"]


@dataclass(frozen=True)
class LoopSpec:
    """Geometry of the parallelizable loop(s) inside an off-loaded task."""

    iterations: int
    coverage: float            # fraction of the task's SPE time inside the loop
    reduction: bool            # global reduction at loop end
    bytes_per_iteration: int   # worker DMA traffic per iteration

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("loop needs at least one iteration")
        if not (0.0 <= self.coverage <= 1.0):
            raise ValueError("coverage must be within [0, 1]")
        if self.bytes_per_iteration < 0:
            raise ValueError("bytes_per_iteration must be non-negative")


@dataclass(frozen=True)
class TaskSpec:
    """One off-loadable function invocation.

    ``working_set`` / ``data_key`` support the memory-aware scheduling
    extension (the paper's stated future work): tasks of the same
    ``data_key`` (e.g. one bootstrap's likelihood vectors) can reuse data
    already resident in an SPE's local store and skip the input DMA.
    """

    function: str
    spe_time: float            # optimized serial SPE duration (t_spe), seconds
    ppe_time: float            # duration if executed on the PPE (t_ppe)
    naive_spe_time: float      # unoptimized SPE duration
    loop: Optional[LoopSpec] = None
    working_set: int = 0       # local-store bytes of input data
    data_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.spe_time <= 0 or self.ppe_time <= 0 or self.naive_spe_time <= 0:
            raise ValueError("task durations must be positive")
        if self.working_set < 0:
            raise ValueError("working_set must be non-negative")

    @property
    def parallelizable(self) -> bool:
        return self.loop is not None and self.loop.coverage > 0


@dataclass(frozen=True)
class OffloadItem:
    """One step of a bootstrap: PPE compute then an off-load request."""

    ppe_gap: float
    task: TaskSpec

    def __post_init__(self) -> None:
        if self.ppe_gap < 0:
            raise ValueError("ppe_gap must be non-negative")


@dataclass(frozen=True)
class BootstrapTrace:
    """The off-load sequence of one bootstrap (or one tree inference).

    ``scale`` is the trace-compression ratio: a real bootstrap performs
    ``scale`` times as many off-loads as this trace contains; reported
    times are multiplied by it.  ``code_image`` / ``llp_image`` are the
    SPE modules the tasks require (serial and loop-parallel variants).
    """

    index: int
    items: Tuple[OffloadItem, ...]
    tail_ppe: float
    scale: float
    code_image: CodeImage
    llp_image: CodeImage

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a bootstrap trace needs at least one off-load")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.tail_ppe < 0:
            raise ValueError("tail_ppe must be non-negative")

    @property
    def n_tasks(self) -> int:
        return len(self.items)

    @property
    def total_spe_time(self) -> float:
        return sum(i.task.spe_time for i in self.items)

    @property
    def total_ppe_time(self) -> float:
        return sum(i.ppe_gap for i in self.items) + self.tail_ppe

    @property
    def serial_estimate(self) -> float:
        """Estimated single-SPE, single-worker duration of this trace."""
        return self.total_spe_time + self.total_ppe_time
