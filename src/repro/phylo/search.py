"""Hill-climbing topology search (RAxML-style, NNI move set).

RAxML's "rapid hill climbing" applies topology moves and keeps those that
improve the likelihood, interleaved with branch-length optimization.  We
implement the classic NNI hill climb: evaluate the NNI neighbourhood,
take the best improving move, re-optimize branch lengths, repeat until no
move improves.  Greedy and deterministic given the starting tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .likelihood import LikelihoodEngine
from .tree import Tree

__all__ = ["SearchResult", "hill_climb"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one tree search."""

    tree: Tree
    loglik: float
    rounds: int
    moves_accepted: int
    moves_evaluated: int


def _score_candidate(
    engine: LikelihoodEngine, candidate: Tree, pivot_id: int
) -> float:
    """Score a topology candidate with lazy local branch optimization.

    RAxML-style: re-fit only the branches adjacent to the move before
    scoring, otherwise improving moves look bad under their inherited
    branch lengths.
    """
    engine.invalidate()
    engine.full_traversal(candidate)
    pivot = candidate.find(pivot_id)
    for local in (pivot, *pivot.children):
        if local.parent is not None:
            engine.makenewz(candidate, local)
            engine.refresh_ancestors(candidate, local)
    return engine.evaluate(candidate, full=False)


def hill_climb(
    engine: LikelihoodEngine,
    start: Tree,
    max_rounds: int = 10,
    branch_passes: int = 1,
    min_improvement: float = 1e-6,
    move_set: str = "nni",
    max_spr_moves: Optional[int] = None,
) -> SearchResult:
    """Greedy topology search from ``start``; returns the best tree found.

    Each round: optimize all branch lengths, score every candidate move
    (with lazy local branch re-optimization), apply the best improving
    one.  Stops when no move improves the log-likelihood by at least
    ``min_improvement`` or after ``max_rounds`` rounds.

    ``move_set`` selects the neighbourhood: ``"nni"`` (fast, the
    default), ``"spr"`` (RAxML's richer subtree-prune-and-regraft moves,
    O(n^2) candidates — cap with ``max_spr_moves``), or ``"both"``.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    if move_set not in ("nni", "spr", "both"):
        raise ValueError(f"unknown move_set {move_set!r}")
    current = start.copy()
    current_lik = engine.optimize_branches(current, passes=branch_passes)
    accepted = 0
    evaluated = 0
    rounds = 0

    for rounds in range(1, max_rounds + 1):
        best_apply = None
        best_lik = current_lik

        if move_set in ("nni", "both"):
            for branch_id, variant in current.nni_neighbourhood():
                candidate = current.copy()
                candidate.nni(candidate.find(branch_id), variant)
                lik = _score_candidate(engine, candidate, branch_id)
                evaluated += 1
                if lik > best_lik + min_improvement:
                    best_lik = lik
                    best_apply = ("nni", branch_id, variant)

        if move_set in ("spr", "both"):
            for sub_id, tgt_id in current.spr_neighbourhood(max_spr_moves):
                candidate = current.copy()
                sub = candidate.find(sub_id)
                pivot_id = sub.parent.id
                candidate.spr(sub, candidate.find(tgt_id))
                lik = _score_candidate(engine, candidate, pivot_id)
                evaluated += 1
                if lik > best_lik + min_improvement:
                    best_lik = lik
                    best_apply = ("spr", sub_id, tgt_id)

        if best_apply is None:
            break
        kind, a, b = best_apply
        if kind == "nni":
            current.nni(current.find(a), b)
        else:
            current.spr(current.find(a), current.find(b))
        engine.invalidate()
        current_lik = engine.optimize_branches(current, passes=branch_passes)
        accepted += 1

    engine.invalidate()
    return SearchResult(
        tree=current,
        loglik=current_lik,
        rounds=rounds,
        moves_accepted=accepted,
        moves_evaluated=evaluated,
    )
