"""The likelihood kernels: ``newview``, ``evaluate``, ``makenewz``.

These are the three functions that consume 98.77% of RAxML's time
(Section 5.1) and that the paper off-loads to SPEs.  The implementation
is a real, working Felsenstein-pruning engine:

* :meth:`LikelihoodEngine.newview` — conditional likelihood vector (CLV)
  of an internal node from its children (76.8% of runtime in the paper);
* :meth:`LikelihoodEngine.evaluate` — the log-likelihood at the root
  (2.37%);
* :meth:`LikelihoodEngine.makenewz` — Newton-Raphson branch-length
  optimization using analytic first and second derivatives (19.6%).

All kernels are vectorized over site patterns and Gamma rate categories
(the inner ``for`` loops of Figure 3 become NumPy contractions), with
numerical underflow scaling for deep trees.  Every invocation is counted
and sized so a real inference can be replayed as an off-load trace
through the Cell simulator (see :mod:`repro.phylo.raxml`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .alignment import Alignment
from .models import SubstitutionModel, discrete_gamma_rates
from .tree import Node, Tree

__all__ = ["KernelLog", "LikelihoodEngine"]

_SCALE_THRESHOLD = 1e-100
_SCALE_FACTOR = 1e100
_LOG_SCALE = np.log(_SCALE_FACTOR)

MIN_BRANCH = 1e-6
MAX_BRANCH = 10.0


@dataclass
class KernelLog:
    """Counts and records kernel invocations for trace replay."""

    newview_calls: int = 0
    evaluate_calls: int = 0
    makenewz_calls: int = 0
    makenewz_iterations: int = 0
    record: bool = False
    events: List[Tuple[str, int]] = field(default_factory=list)

    def note(self, kernel: str, patterns: int) -> None:
        if kernel == "newview":
            self.newview_calls += 1
        elif kernel == "evaluate":
            self.evaluate_calls += 1
        elif kernel == "makenewz":
            self.makenewz_calls += 1
        else:
            raise ValueError(f"unknown kernel {kernel!r}")
        if self.record:
            self.events.append((kernel, patterns))

    @property
    def total_calls(self) -> int:
        return self.newview_calls + self.evaluate_calls + self.makenewz_calls


class LikelihoodEngine:
    """Felsenstein-pruning likelihood for one alignment and model."""

    def __init__(
        self,
        alignment: Alignment,
        model: SubstitutionModel,
        n_rate_categories: int = 4,
        alpha: float = 0.5,
        category_rates=None,
        pattern_categories=None,
    ) -> None:
        """Build an engine for ``alignment`` under ``model``.

        Two rate-heterogeneity modes:

        * **GAMMA** (default): ``n_rate_categories`` discrete-Gamma
          categories with shape ``alpha``; the likelihood is the mean
          over categories (a mixture).
        * **CAT** (RAxML's per-site rate categories, the mode its HPC
          runs use): pass ``category_rates`` (K rates) and
          ``pattern_categories`` (one category index per site pattern);
          each pattern is evaluated under *its own* rate instead of the
          mixture.  Fit both with :func:`repro.phylo.cat.fit_cat`.
        """
        self.alignment = alignment
        self.model = model
        if pattern_categories is not None and category_rates is None:
            raise ValueError("pattern_categories requires category_rates")
        if category_rates is not None:
            self.rates = np.asarray(category_rates, dtype=float)
            if self.rates.ndim != 1 or len(self.rates) < 1:
                raise ValueError("category_rates must be a 1-D array")
            if np.any(self.rates <= 0):
                raise ValueError("category rates must be positive")
        else:
            if n_rate_categories < 1:
                raise ValueError("need at least one rate category")
            self.rates = (
                discrete_gamma_rates(alpha, n_rate_categories)
                if n_rate_categories > 1
                else np.ones(1)
            )
        if pattern_categories is not None:
            cat = np.asarray(pattern_categories, dtype=np.int64)
            if cat.shape != (alignment.n_patterns,):
                raise ValueError(
                    "pattern_categories needs one entry per pattern"
                )
            if cat.min() < 0 or cat.max() >= len(self.rates):
                raise ValueError("pattern category index out of range")
            self._pattern_cat = cat
        else:
            self._pattern_cat = None
        self._arange = np.arange(alignment.n_patterns)
        self.n_rates = len(self.rates)
        self.log = KernelLog()

        n = model.n_states
        if alignment.n_states != n:
            raise ValueError(
                f"alignment alphabet has {alignment.n_states} states but "
                f"the model has {n}"
            )
        self.n_states = n
        # Tip CLVs: indicator vectors for observed states, all-ones for
        # gaps/ambiguity (code == n: "could be any state"), shared across
        # rate categories.  Shape per taxon: (patterns, n_states).
        lookup = np.vstack([np.eye(n), np.ones((1, n))])
        self._tip_clv = lookup[alignment.patterns]  # (taxa, patterns, n)
        # Node CLV cache: node_id -> (clv[patterns, rates, 4], logscale[patterns])
        self._clv: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # -- rate mixing ------------------------------------------------------
    def _mix(self, per_rate: np.ndarray) -> np.ndarray:
        """Reduce per-(pattern, rate) values to per-pattern values.

        GAMMA: mean over the mixture.  CAT: select each pattern's own
        category.
        """
        if self._pattern_cat is None:
            return per_rate.mean(axis=1)
        return per_rate[self._arange, self._pattern_cat]

    # -- transition matrices ------------------------------------------------
    def _pmatrices(self, t: float) -> np.ndarray:
        """P(r * t) for every rate category; shape (rates, 4, 4)."""
        return self.model.transition_matrices(self.rates * t)

    # -- CLV plumbing ---------------------------------------------------------
    def _child_contribution(self, child: Node) -> Tuple[np.ndarray, np.ndarray]:
        """(patterns, rates, 4) partial for ``child`` seen from its parent."""
        p = self._pmatrices(child.length)  # (R, 4, 4)
        if child.is_leaf:
            tip = self._tip_clv[child.taxon]  # (S, 4)
            contrib = np.einsum("rxy,sy->srx", p, tip)
            scale = np.zeros(self.alignment.n_patterns)
        else:
            clv, scale = self._clv[child.id]
            contrib = np.einsum("rxy,sry->srx", p, clv)
        return contrib, scale

    def newview(self, node: Node) -> None:
        """Compute the CLV of ``node`` from its (already valid) children.

        This is the dominant kernel: one dense 4x4 contraction per child
        per rate category per site pattern.
        """
        if node.is_leaf:
            raise ValueError("newview is only defined for internal nodes")
        if not node.children:
            raise ValueError("internal node with no children")
        clv: Optional[np.ndarray] = None
        scale_total = np.zeros(self.alignment.n_patterns)
        for child in node.children:
            contrib, scale = self._child_contribution(child)
            clv = contrib if clv is None else clv * contrib
            scale_total += scale
        # Underflow scaling: lift patterns whose max CLV entry collapsed.
        peak = clv.max(axis=(1, 2))
        tiny = peak < _SCALE_THRESHOLD
        if np.any(tiny):
            clv[tiny] *= _SCALE_FACTOR
            scale_total[tiny] += 1.0
        self._clv[node.id] = (clv, scale_total)
        self.log.note("newview", self.alignment.n_patterns)

    def full_traversal(self, tree: Tree) -> None:
        """Recompute every internal CLV in postorder."""
        self._clv.clear()
        for node in tree.postorder():
            if not node.is_leaf:
                self.newview(node)

    def invalidate(self) -> None:
        """Drop cached CLVs (topology changed)."""
        self._clv.clear()

    def refresh_ancestors(self, tree: Tree, node: Node) -> int:
        """Recompute only the CLVs invalidated by changing the branch
        above ``node`` (its ancestors, bottom-up).

        This is how RAxML amortizes branch-length optimization: a branch
        change leaves every CLV outside the root path valid.  Requires a
        prior :meth:`full_traversal`.  Returns the number of ``newview``
        calls performed.
        """
        chain: List[Node] = []
        cur = node.parent
        while cur is not None:
            chain.append(cur)
            cur = cur.parent
        for ancestor in chain:  # already bottom-up (parent before root)
            self.newview(ancestor)
        return len(chain)

    # -- evaluate --------------------------------------------------------------
    def evaluate(self, tree: Tree, full: bool = True) -> float:
        """Log-likelihood of ``tree`` (natural log).

        With ``full=True`` the CLVs are recomputed first; pass False when
        the caller has kept them valid (e.g. inside ``makenewz``).
        """
        if full:
            self.full_traversal(tree)
        clv, scale = self._clv[tree.root.id]
        # Stationary frequencies at the root; GAMMA mixes the rate
        # categories, CAT selects each pattern's own.
        per_rate = np.einsum("srx,x->sr", clv, self.model.frequencies)
        site_lik = np.clip(self._mix(per_rate), 1e-300, None)
        loglik = float(
            np.dot(self.alignment.weights, np.log(site_lik) - scale * _LOG_SCALE)
        )
        self.log.note("evaluate", self.alignment.n_patterns)
        return loglik

    # -- edge views (for branch-length optimization) ---------------------------
    def _edge_vectors(self, tree: Tree, node: Node) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(down, up, logscale) for the branch above ``node``.

        ``down`` is the CLV of the subtree below ``node`` (S, R, 4);
        ``up`` is the conditional likelihood of everything else, as a
        function of the state at the parent endpoint, with the stationary
        frequencies already folded in.  The branch's own P-matrix is NOT
        included, so ``L(t) = sum_s w_s log( mean_r up . P(rt) . down )``.
        """
        # Down vector.
        if node.is_leaf:
            down = np.repeat(
                self._tip_clv[node.taxon][:, None, :], self.n_rates, axis=1
            )
            down_scale = np.zeros(self.alignment.n_patterns)
        else:
            down, down_scale = self._clv[node.id]

        # Up vector: walk from the root towards node's parent.
        path: List[Node] = []
        cur = node.parent
        while cur is not None:
            path.append(cur)
            cur = cur.parent
        path.reverse()  # root ... parent(node)

        s_patterns = self.alignment.n_patterns
        up = np.ones((s_patterns, self.n_rates, self.n_states))
        up *= self.model.frequencies[None, None, :]
        up_scale = np.zeros(s_patterns)
        target_child: Optional[Node] = None
        for i, anc in enumerate(path):
            target_child = path[i + 1] if i + 1 < len(path) else node
            # Fold in every child of `anc` except the one on the path.
            for child in anc.children:
                if child is target_child:
                    continue
                contrib, scale = self._child_contribution(child)
                up = up * contrib
                up_scale += scale
            if target_child is not node:
                # Cross the branch from anc to the next node on the path.
                p = self._pmatrices(target_child.length)
                up = np.einsum("srx,rxy->sry", up, p)
                peak = up.max(axis=(1, 2))
                tiny = peak < _SCALE_THRESHOLD
                if np.any(tiny):
                    up[tiny] *= _SCALE_FACTOR
                    up_scale[tiny] += 1.0
        return down, up, down_scale + up_scale

    def edge_loglik(self, tree: Tree, node: Node, t: float) -> float:
        """Log-likelihood as a function of the length of ``node``'s branch."""
        down, up, logscale = self._edge_vectors(tree, node)
        p = self._pmatrices(t)
        site = self._mix(np.einsum("srx,rxy,sry->sr", up, p, down))
        site = np.clip(site, 1e-300, None)
        return float(
            np.dot(self.alignment.weights, np.log(site) - logscale * _LOG_SCALE)
        )

    # -- makenewz ---------------------------------------------------------------
    def makenewz(
        self,
        tree: Tree,
        node: Node,
        max_iterations: int = 16,
        tolerance: float = 1e-8,
    ) -> float:
        """Newton-Raphson optimization of the branch above ``node``.

        Returns the optimized length (also written back to the node).
        Requires valid CLVs (run :meth:`full_traversal` first).  Mirrors
        RAxML's ``makenewz``: analytic dL/dt and d2L/dt2 from the spectral
        decomposition, with step clamping into [MIN_BRANCH, MAX_BRANCH].
        """
        if node.parent is None:
            raise ValueError("the root has no branch to optimize")
        down, up, _ = self._edge_vectors(tree, node)
        w = self.alignment.weights
        t = float(np.clip(node.length, MIN_BRANCH, MAX_BRANCH))

        for _ in range(max_iterations):
            self.log.makenewz_iterations += 1
            p, d1, d2 = self.model.transition_derivatives(t, self.rates)
            site = self._mix(np.einsum("srx,rxy,sry->sr", up, p, down))
            dsite = self._mix(np.einsum("srx,rxy,sry->sr", up, d1, down))
            d2site = self._mix(np.einsum("srx,rxy,sry->sr", up, d2, down))
            site = np.clip(site, 1e-300, None)
            # d/dt log L = sum w * dsite/site ; second derivative likewise.
            g = float(np.dot(w, dsite / site))
            h = float(np.dot(w, d2site / site - (dsite / site) ** 2))
            if abs(g) < tolerance:
                break
            step = -g / h if h < 0 else g  # fall back to gradient ascent
            new_t = t + step
            if not np.isfinite(new_t):
                break
            # Clamp and damp: halve steps that leave the domain.
            while new_t <= MIN_BRANCH or new_t >= MAX_BRANCH:
                step *= 0.5
                new_t = t + step
                if abs(step) < tolerance:
                    new_t = float(np.clip(t + step, MIN_BRANCH, MAX_BRANCH))
                    break
            if abs(new_t - t) < tolerance:
                t = new_t
                break
            t = new_t

        node.length = t
        self.log.note("makenewz", self.alignment.n_patterns)
        return t

    def optimize_branches(self, tree: Tree, passes: int = 1) -> float:
        """Optimize every branch ``passes`` times; returns final loglik.

        Between branches only the invalidated root-path CLVs are
        recomputed (:meth:`refresh_ancestors`), so one pass costs
        O(n log n) ``newview`` calls instead of O(n^2).
        """
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.full_traversal(tree)
        for _ in range(passes):
            for node in tree.branches():
                self.makenewz(tree, node)
                # Only the ancestors of the changed branch are stale.
                self.refresh_ancestors(tree, node)
        return self.evaluate(tree, full=False)
