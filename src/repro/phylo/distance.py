"""Distance-based methods: pairwise distances and neighbor joining.

RAxML seeds its searches from non-random trees when possible; a
neighbor-joining (Saitou & Nei 1987) topology over Jukes-Cantor distances
is the classic cheap starting tree and typically slashes the number of
hill-climbing rounds.  Both pieces are implemented here:
:func:`jc_distance_matrix` (vectorized over the compressed alignment) and
:func:`neighbor_joining`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .alignment import Alignment
from .tree import Node, Tree

__all__ = ["p_distance_matrix", "jc_distance_matrix", "neighbor_joining"]

_MAX_DIST = 5.0  # saturation cap for undefined JC corrections


def p_distance_matrix(alignment: Alignment) -> np.ndarray:
    """Proportion of differing sites for every taxon pair.

    Weighted by pattern multiplicities; symmetric with a zero diagonal.
    Sites where either sequence has a gap are excluded pairwise; a pair
    with no comparable sites gets the saturation distance.
    """
    pat = alignment.patterns  # (taxa, patterns)
    w = alignment.weights
    gap = alignment.alphabet.gap_code
    valid = (pat[:, None, :] != gap) & (pat[None, :, :] != gap)
    diff = ((pat[:, None, :] != pat[None, :, :]) & valid).astype(float)
    comparable = (valid.astype(float) * w[None, None, :]).sum(axis=2)
    hits = (diff * w[None, None, :]).sum(axis=2)
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(comparable > 0, hits / np.maximum(comparable, 1e-300), 1.0)
    np.fill_diagonal(p, 0.0)
    return p


def jc_distance_matrix(alignment: Alignment) -> np.ndarray:
    """Jukes-Cantor corrected evolutionary distances.

    For an ``n``-state alphabet, d = -(n-1)/n ln(1 - n p/(n-1));
    saturated pairs are capped at ``_MAX_DIST`` substitutions/site.
    """
    n = alignment.n_states
    c = (n - 1.0) / n
    p = p_distance_matrix(alignment)
    arg = 1.0 - p / c
    with np.errstate(divide="ignore", invalid="ignore"):
        d = -c * np.log(np.clip(arg, 1e-12, None))
    d[arg <= 0] = _MAX_DIST
    np.fill_diagonal(d, 0.0)
    return np.minimum(d, _MAX_DIST)


def neighbor_joining(distances: np.ndarray,
                     n_taxa: Optional[int] = None) -> Tree:
    """Build an unrooted NJ tree from a distance matrix.

    Standard Saitou-Nei agglomeration with the Q-criterion; negative
    branch-length estimates are clamped to a small positive value (the
    usual practical fix).  The final three lineages join at the
    trifurcating root.
    """
    d = np.array(distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("distance matrix must be square")
    if not np.allclose(d, d.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    n = d.shape[0] if n_taxa is None else n_taxa
    if n < 3:
        raise ValueError("neighbor joining needs at least 3 taxa")

    next_id = n
    nodes: List[Node] = [Node(i, taxon=i) for i in range(n)]
    active = list(range(n))  # indices into the (growing) matrix
    # Grow d as clusters are added; simplest correct bookkeeping.
    size = d.shape[0]

    def grow(matrix: np.ndarray) -> np.ndarray:
        out = np.zeros((matrix.shape[0] + 1, matrix.shape[1] + 1))
        out[: matrix.shape[0], : matrix.shape[1]] = matrix
        return out

    while len(active) > 3:
        m = len(active)
        sub = d[np.ix_(active, active)]
        totals = sub.sum(axis=1)
        q = (m - 2) * sub - totals[:, None] - totals[None, :]
        np.fill_diagonal(q, np.inf)
        i_s, j_s = np.unravel_index(np.argmin(q), q.shape)
        a, b = active[i_s], active[j_s]

        # Branch lengths from the joined pair to the new internal node.
        d_ab = d[a, b]
        la = 0.5 * d_ab + (totals[i_s] - totals[j_s]) / (2 * (m - 2))
        lb = d_ab - la
        la, lb = max(la, 1e-8), max(lb, 1e-8)

        parent = Node(next_id)
        next_id += 1
        na, nb = nodes[a], nodes[b]
        na.length, nb.length = la, lb
        parent.add_child(na)
        parent.add_child(nb)
        nodes.append(parent)

        # Distances from the new cluster to the remaining ones.
        d = grow(d)
        new = d.shape[0] - 1
        for k in active:
            if k in (a, b):
                continue
            d[new, k] = d[k, new] = 0.5 * (d[a, k] + d[b, k] - d_ab)
        active = [k for k in active if k not in (a, b)] + [new]

    # Join the last three at the trifurcating root.
    x, y, z = active
    root = Node(next_id)
    lx = max(0.5 * (d[x, y] + d[x, z] - d[y, z]), 1e-8)
    ly = max(0.5 * (d[x, y] + d[y, z] - d[x, z]), 1e-8)
    lz = max(0.5 * (d[x, z] + d[y, z] - d[x, y]), 1e-8)
    for idx, length in ((x, lx), (y, ly), (z, lz)):
        nodes[idx].length = length
        root.add_child(nodes[idx])
    return Tree(root, n)
