"""Model-parameter estimation: kappa and the Gamma shape alpha.

ML programs alternate topology/branch optimization with model-parameter
refits.  Both free parameters of our default setup are optimized here by
golden-section search on the log-likelihood (robust, derivative-free,
and deterministic): the HKY transition/transversion ratio ``kappa`` and
the among-site rate-heterogeneity shape ``alpha``.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .alignment import Alignment
from .likelihood import LikelihoodEngine
from .models import hky
from .tree import Tree

__all__ = ["golden_section_maximize", "optimize_kappa", "optimize_alpha"]

_PHI = (np.sqrt(5.0) - 1.0) / 2.0


def golden_section_maximize(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> Tuple[float, float]:
    """Maximize a unimodal ``fn`` on [lo, hi]; returns (x*, fn(x*))."""
    if not (lo < hi):
        raise ValueError("need lo < hi")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    a, b = lo, hi
    c = b - _PHI * (b - a)
    d = a + _PHI * (b - a)
    fc, fd = fn(c), fn(d)
    for _ in range(max_iterations):
        if b - a < tolerance:
            break
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - _PHI * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _PHI * (b - a)
            fd = fn(d)
    x = (a + b) / 2
    return x, fn(x)


def optimize_kappa(
    alignment: Alignment,
    tree: Tree,
    frequencies,
    n_rate_categories: int = 1,
    alpha: float = 0.5,
    bounds: Tuple[float, float] = (0.5, 20.0),
    tolerance: float = 1e-2,
) -> Tuple[float, float]:
    """ML estimate of the HKY kappa on a fixed tree.

    Returns ``(kappa, loglik)``.
    """

    def loglik(kappa: float) -> float:
        engine = LikelihoodEngine(
            alignment, hky(frequencies, kappa), n_rate_categories, alpha
        )
        return engine.evaluate(tree)

    return golden_section_maximize(loglik, *bounds, tolerance=tolerance)


def optimize_alpha(
    alignment: Alignment,
    tree: Tree,
    model,
    n_rate_categories: int = 4,
    bounds: Tuple[float, float] = (0.05, 10.0),
    tolerance: float = 1e-2,
) -> Tuple[float, float]:
    """ML estimate of the Gamma shape parameter on a fixed tree.

    Returns ``(alpha, loglik)``.  Searches in log-space because the
    likelihood surface is heavily right-skewed in alpha.
    """

    def loglik_log(log_alpha: float) -> float:
        engine = LikelihoodEngine(
            alignment, model, n_rate_categories, float(np.exp(log_alpha))
        )
        return engine.evaluate(tree)

    x, ll = golden_section_maximize(
        loglik_log, float(np.log(bounds[0])), float(np.log(bounds[1])),
        tolerance=tolerance,
    )
    return float(np.exp(x)), ll
