"""Phylogenetic tree structure and topology moves.

Trees are unrooted binary trees represented with a rooting at an internal
trifurcating node (the standard ML-program convention): every node except
the root has a parent branch with a length; leaves carry taxon indices.
Provides random topology generation, postorder traversal, Newick output,
cloning, and nearest-neighbor-interchange (NNI) moves — the move set of
RAxML-style hill-climbing searches.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Node", "Tree"]


class Node:
    """One tree node; ``taxon`` is None for internal nodes."""

    __slots__ = ("id", "parent", "children", "length", "taxon")

    def __init__(
        self,
        node_id: int,
        taxon: Optional[int] = None,
        length: float = 0.0,
    ) -> None:
        self.id = node_id
        self.parent: Optional["Node"] = None
        self.children: List["Node"] = []
        self.length = length  # branch to the parent
        self.taxon = taxon

    @property
    def is_leaf(self) -> bool:
        return self.taxon is not None

    def add_child(self, child: "Node") -> None:
        child.parent = self
        self.children.append(child)

    def detach(self) -> None:
        """Remove this node from its parent's child list."""
        if self.parent is None:
            raise ValueError("cannot detach the root")
        self.parent.children.remove(self)
        self.parent = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"leaf:{self.taxon}" if self.is_leaf else "internal"
        return f"<Node {self.id} {kind} len={self.length:.4f}>"


class Tree:
    """An unrooted binary tree over ``n_taxa`` leaves."""

    def __init__(self, root: Node, n_taxa: int) -> None:
        self.root = root
        self.n_taxa = n_taxa
        self._next_id = max(n.id for n in self.postorder()) + 1

    # -- construction -----------------------------------------------------
    @staticmethod
    def random_topology(
        n_taxa: int,
        rng: np.random.Generator,
        mean_branch: float = 0.1,
    ) -> "Tree":
        """Random unrooted topology by stepwise addition.

        Starts from a 3-leaf star and repeatedly attaches the next taxon
        to a uniformly random branch — every unrooted topology has
        positive probability, matching how RAxML draws distinct random
        starting trees for multiple inferences.
        """
        if n_taxa < 3:
            raise ValueError("need at least 3 taxa")

        def blen() -> float:
            return float(rng.exponential(mean_branch)) + 1e-6

        next_id = n_taxa  # leaf ids = taxon ids; internal ids follow
        root = Node(next_id)
        next_id += 1
        for t in range(3):
            root.add_child(Node(t, taxon=t, length=blen()))
        tree = Tree(root, n_taxa)

        for t in range(3, n_taxa):
            # Pick a random non-root node (i.e. a random branch).
            candidates = [n for n in tree.postorder() if n.parent is not None]
            target = candidates[rng.integers(len(candidates))]
            # Split target's parent branch with a new internal node.
            parent = target.parent
            mid = Node(next_id, length=target.length / 2)
            next_id += 1
            target.detach()
            target.length /= 2
            parent.add_child(mid)
            mid.add_child(target)
            mid.add_child(Node(t, taxon=t, length=blen()))
            tree._next_id = next_id
        return tree

    def copy(self) -> "Tree":
        """Deep copy (fresh Node objects, same ids)."""

        def clone(node: Node) -> Node:
            c = Node(node.id, node.taxon, node.length)
            for child in node.children:
                c.add_child(clone(child))
            return c

        return Tree(clone(self.root), self.n_taxa)

    # -- traversal ---------------------------------------------------------
    def postorder(self) -> Iterator[Node]:
        """Children-before-parents iteration (likelihood order)."""
        stack: List[Tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))

    def nodes(self) -> List[Node]:
        return list(self.postorder())

    def leaves(self) -> List[Node]:
        return [n for n in self.postorder() if n.is_leaf]

    def internal_branches(self) -> List[Node]:
        """Nodes whose parent branch is internal (both ends internal).

        These are the NNI-eligible branches.
        """
        return [
            n
            for n in self.postorder()
            if n.parent is not None and not n.is_leaf
        ]

    def branches(self) -> List[Node]:
        """All non-root nodes (each owns the branch to its parent)."""
        return [n for n in self.postorder() if n.parent is not None]

    def find(self, node_id: int) -> Node:
        for n in self.postorder():
            if n.id == node_id:
                return n
        raise KeyError(f"no node with id {node_id}")

    # -- topology moves ----------------------------------------------------
    def nni(self, branch: Node, variant: int) -> None:
        """In-place nearest-neighbor interchange around ``branch``.

        ``branch`` is an internal node; the move swaps one of its children
        with one of its parent's *other* children (or, at the root, a
        sibling).  ``variant`` in {0, 1} picks which child crosses.
        """
        if branch.is_leaf or branch.parent is None:
            raise ValueError("NNI needs an internal, non-root branch")
        if variant not in (0, 1):
            raise ValueError("variant must be 0 or 1")
        parent = branch.parent
        siblings = [c for c in parent.children if c is not branch]
        if not siblings:
            raise ValueError("degenerate topology: no sibling to swap")
        sib = siblings[0]
        child = branch.children[variant % len(branch.children)]
        # Swap: sib moves under branch, child moves under parent.
        sib.detach()
        child.detach()
        branch.add_child(sib)
        parent.add_child(child)

    def nni_neighbourhood(self) -> List[Tuple[int, int]]:
        """All (branch_id, variant) NNI moves available on this tree."""
        moves = []
        for b in self.internal_branches():
            for v in range(min(2, len(b.children))):
                moves.append((b.id, v))
        return moves

    # -- subtree prune and regraft (SPR) ------------------------------------
    def _subtree_ids(self, node: Node) -> set:
        out = set()
        stack = [node]
        while stack:
            n = stack.pop()
            out.add(n.id)
            stack.extend(n.children)
        return out

    def spr(self, subtree: Node, target: Node) -> None:
        """In-place subtree-prune-and-regraft.

        Prunes ``subtree`` (with its parent branch), collapses the
        degree-2 node left behind, and regrafts onto the branch above
        ``target`` (splitting it in half).  This is the move set of
        RAxML's hill-climbing search; NNI is the radius-1 special case.

        Restrictions: ``subtree``'s parent must not be the root (the
        trifurcating root must keep its degree), and ``target`` must be
        outside ``subtree`` with a parent branch to split.
        """
        if subtree.parent is None:
            raise ValueError("cannot prune the root")
        pivot = subtree.parent
        if pivot.parent is None:
            raise ValueError("cannot prune a child of the trifurcating root")
        if target.parent is None:
            raise ValueError("target must have a parent branch to split")
        forbidden = self._subtree_ids(subtree)
        if target.id in forbidden or target is pivot:
            raise ValueError("target lies inside the pruned subtree")
        siblings = [c for c in pivot.children if c is not subtree]
        if len(siblings) != 1:  # pragma: no cover - binary-tree invariant
            raise ValueError("pivot is not a binary internal node")
        sibling = siblings[0]
        if target is sibling:
            raise ValueError("regrafting onto the sibling recreates the tree")

        # Prune: splice the pivot out, fusing its branch into the sibling.
        grand = pivot.parent
        subtree.detach()
        sibling.detach()
        pivot.detach()
        sibling.length += pivot.length
        grand.add_child(sibling)

        # Regraft: reuse the pivot node to split target's parent branch.
        t_parent = target.parent
        target.detach()
        pivot.children.clear()
        pivot.length = target.length / 2
        target.length /= 2
        t_parent.add_child(pivot)
        pivot.add_child(target)
        pivot.add_child(subtree)

    def spr_neighbourhood(self, max_moves: Optional[int] = None) -> List[Tuple[int, int]]:
        """Valid (subtree_id, target_id) SPR moves on this tree.

        Enumerated deterministically; ``max_moves`` truncates (the full
        neighbourhood is O(n^2)).
        """
        moves: List[Tuple[int, int]] = []
        candidates = [
            n for n in self.postorder()
            if n.parent is not None and n.parent.parent is not None
        ]
        for sub in candidates:
            forbidden = self._subtree_ids(sub)
            forbidden.add(sub.parent.id)
            sibling = [c for c in sub.parent.children if c is not sub][0]
            forbidden.add(sibling.id)
            for tgt in self.postorder():
                if tgt.parent is None or tgt.id in forbidden:
                    continue
                moves.append((sub.id, tgt.id))
                if max_moves is not None and len(moves) >= max_moves:
                    return moves
        return moves

    # -- serialization --------------------------------------------------------
    def newick(self, names: Optional[List[str]] = None) -> str:
        """Newick string with branch lengths."""

        def fmt(node: Node) -> str:
            if node.is_leaf:
                label = names[node.taxon] if names else f"t{node.taxon}"
            else:
                label = ""
            if node.children:
                inner = ",".join(fmt(c) for c in node.children)
                label = f"({inner}){label}"
            if node.parent is not None:
                return f"{label}:{node.length:.6f}"
            return label

        return fmt(self.root) + ";"

    def total_branch_length(self) -> float:
        return sum(n.length for n in self.postorder() if n.parent is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tree n_taxa={self.n_taxa} nodes={len(self.nodes())}>"
