"""Consensus trees: summarizing bootstrap replicates.

The biological deliverable of the 100-1000-bootstrap computation the
paper accelerates is a *consensus*: which clades appear in what fraction
of replicate trees.  Implements the standard majority-rule consensus
(Margush & McMorris 1981), including the greedy extension that adds
compatible minority splits, plus support annotation of an existing tree.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .tree import Node, Tree

__all__ = ["split_frequencies", "majority_rule_consensus", "annotate_support"]

Split = FrozenSet[int]


def _splits_of(tree: Tree) -> List[Split]:
    """Non-trivial splits, canonically oriented away from taxon 0."""
    all_taxa = frozenset(l.taxon for l in tree.leaves())
    below: Dict[int, FrozenSet[int]] = {}
    out: List[Split] = []
    for node in tree.postorder():
        if node.is_leaf:
            below[node.id] = frozenset([node.taxon])
        else:
            below[node.id] = frozenset().union(
                *(below[c.id] for c in node.children)
            )
            side = below[node.id]
            if 1 < len(side) < len(all_taxa) - 1:
                out.append(side if 0 in side else all_taxa - side)
    return out


def split_frequencies(trees: Sequence[Tree]) -> Dict[Split, float]:
    """Fraction of ``trees`` containing each non-trivial split."""
    if not trees:
        raise ValueError("need at least one tree")
    n_taxa = trees[0].n_taxa
    if any(t.n_taxa != n_taxa for t in trees):
        raise ValueError("trees must share one taxon set")
    counts: Counter = Counter()
    for t in trees:
        counts.update(set(_splits_of(t)))
    return {s: c / len(trees) for s, c in counts.items()}


def _compatible(split: Split, accepted: List[Split], n_taxa: int) -> bool:
    """Can ``split`` coexist with every accepted split on one tree?

    Two splits {A, A'}, {B, B'} are compatible iff at least one of the
    four pairwise intersections is empty.  With the canonical
    orientation (taxon 0 in both A and B), A cap B is never empty, so
    only the other three need checking.
    """
    taxa = frozenset(range(n_taxa))
    a = split
    ca = taxa - a
    for b in accepted:
        cb = taxa - b
        if (a & cb) and (ca & b) and (ca & cb):
            return False
    return True


def majority_rule_consensus(
    trees: Sequence[Tree],
    min_support: float = 0.5,
    greedy: bool = False,
) -> Tuple[Tree, Dict[Split, float]]:
    """Build the majority-rule consensus of ``trees``.

    Splits with support > ``min_support`` (majority splits are mutually
    compatible by pigeonhole when ``min_support >= 0.5``) form the
    consensus topology; the rest collapses into multifurcations.  With
    ``greedy=True``, lower-support splits are added in support order
    whenever compatible with everything accepted so far.

    Returns ``(consensus_tree, support_by_split)`` for the accepted
    splits.  Branch lengths are not meaningful on a consensus tree and
    are set to 1.0.
    """
    if not (0.0 <= min_support <= 1.0):
        raise ValueError("min_support must be within [0, 1]")
    freqs = split_frequencies(trees)
    n_taxa = trees[0].n_taxa

    accepted: List[Split] = []
    supports: Dict[Split, float] = {}
    ordered = sorted(freqs.items(), key=lambda kv: (-kv[1], sorted(kv[0])))
    for split, f in ordered:
        if f > min_support or (
            greedy and _compatible(split, accepted, n_taxa)
        ):
            if _compatible(split, accepted, n_taxa):
                accepted.append(split)
                supports[split] = f

    # Build the tree: nest accepted splits by containment.  Each split is
    # oriented to contain taxon 0, so the *other* side is a clade.
    clades = sorted(
        (frozenset(range(n_taxa)) - s for s in accepted), key=len
    )
    next_id = n_taxa
    root = Node(next_id)
    next_id += 1
    # parent_of[frozenset] = node representing that clade.
    node_of: Dict[FrozenSet[int], Node] = {}
    leaf_nodes = {i: Node(i, taxon=i, length=1.0) for i in range(n_taxa)}

    placed: Dict[int, Node] = {}  # taxon -> current innermost clade node
    for clade in clades:
        node = Node(next_id, length=1.0)
        next_id += 1
        node_of[clade] = node
    # Attach clades smallest-first to the smallest enclosing clade.
    enclosing: Dict[FrozenSet[int], Optional[FrozenSet[int]]] = {}
    for i, clade in enumerate(clades):
        parent = None
        for other in clades[i + 1:]:
            if clade < other:
                parent = other
                break
        enclosing[clade] = parent
        target = node_of[parent] if parent is not None else root
        target.add_child(node_of[clade])
    # Attach each leaf to the smallest clade containing it (or the root).
    for taxon in range(n_taxa):
        host = None
        for clade in clades:  # smallest-first
            if taxon in clade:
                host = node_of[clade]
                break
        (host if host is not None else root).add_child(leaf_nodes[taxon])

    tree = Tree(root, n_taxa)
    return tree, supports


def annotate_support(
    tree: Tree, trees: Sequence[Tree]
) -> Dict[int, float]:
    """Support of each internal branch of ``tree`` among ``trees``.

    Returns ``{node_id: support}`` for every internal non-root node —
    the numbers drawn on published phylogenies.
    """
    freqs = split_frequencies(trees)
    all_taxa = frozenset(range(tree.n_taxa))
    below: Dict[int, FrozenSet[int]] = {}
    out: Dict[int, float] = {}
    for node in tree.postorder():
        if node.is_leaf:
            below[node.id] = frozenset([node.taxon])
            continue
        below[node.id] = frozenset().union(
            *(below[c.id] for c in node.children)
        )
        if node.parent is None:
            continue
        side = below[node.id]
        if 1 < len(side) < tree.n_taxa - 1:
            key = side if 0 in side else all_taxa - side
            out[node.id] = freqs.get(key, 0.0)
    return out
