"""Multiple sequence alignments: representation, synthesis, bootstraps.

The paper's input is 42_SC — 42 organisms x 1167 nucleotides.  We cannot
ship that dataset, so :func:`synthesize_alignment` evolves sequences of
the same shape down a random tree under an HKY model; the resulting data
exercises the identical code paths (site-pattern compression, per-site
likelihood loops, bootstrap re-weighting).

Both alphabets RAxML handles are supported: DNA (4 states) and amino
acids (20 states), plus gaps/ambiguity characters, which enter the
likelihood as "any state" (an all-ones tip vector).

Sites are compressed to unique *patterns* with multiplicities, exactly as
ML programs do — the likelihood loops the paper parallelizes run over
patterns, and bootstrap resampling only changes the pattern weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Alphabet", "DNA", "PROTEIN", "Alignment", "synthesize_alignment",
           "bootstrap_weights"]


@dataclass(frozen=True)
class Alphabet:
    """A molecular alphabet: state letters plus gap/ambiguity characters.

    State codes are 0..n-1; the *gap code* equals ``n_states`` and stands
    for "state unknown" (gaps '-', '?', and the ambiguity letter).
    """

    name: str
    letters: str
    ambiguity: str

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise ValueError("duplicate letters in alphabet")

    @property
    def n_states(self) -> int:
        return len(self.letters)

    @property
    def gap_code(self) -> int:
        return self.n_states

    def encode(self, char: str) -> int:
        c = char.upper()
        idx = self.letters.find(c)
        if idx >= 0:
            return idx
        if c in self.ambiguity or c in "-?.":
            return self.gap_code
        raise ValueError(f"unsupported {self.name} character {char!r}")

    def decode(self, code: int) -> str:
        if code == self.gap_code:
            return "-"
        return self.letters[code]


DNA = Alphabet(name="dna", letters="ACGT", ambiguity="NRYSWKMBDHVX")
PROTEIN = Alphabet(
    name="protein", letters="ARNDCQEGHILKMFPSTWYV", ambiguity="XBZJUO"
)

_ALPHABETS: Dict[str, Alphabet] = {"dna": DNA, "protein": PROTEIN}


@dataclass(frozen=True)
class Alignment:
    """A compressed alignment over a molecular alphabet.

    Attributes
    ----------
    names:
        Taxon labels, one per row.
    patterns:
        int8 array (n_taxa, n_patterns) of state codes, where the value
        ``alphabet.gap_code`` marks gaps/ambiguity.
    weights:
        Multiplicity of each pattern; ``weights.sum() == n_sites``.
    """

    names: Tuple[str, ...]
    patterns: np.ndarray
    weights: np.ndarray
    alphabet: Alphabet = field(default=DNA)

    def __post_init__(self) -> None:
        if self.patterns.ndim != 2:
            raise ValueError("patterns must be 2-D (taxa x patterns)")
        if len(self.names) != self.patterns.shape[0]:
            raise ValueError("one name per row required")
        if self.weights.shape != (self.patterns.shape[1],):
            raise ValueError("one weight per pattern required")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        if self.patterns.size and (
            self.patterns.min() < 0
            or self.patterns.max() > self.alphabet.gap_code
        ):
            raise ValueError(
                f"state codes must be within 0..{self.alphabet.gap_code}"
            )

    @property
    def n_states(self) -> int:
        return self.alphabet.n_states

    @property
    def n_taxa(self) -> int:
        return self.patterns.shape[0]

    @property
    def n_patterns(self) -> int:
        return self.patterns.shape[1]

    @property
    def n_sites(self) -> int:
        return int(self.weights.sum())

    @property
    def gap_fraction(self) -> float:
        """Fraction of cells that are gaps/ambiguity (weighted)."""
        gaps = (self.patterns == self.alphabet.gap_code).astype(float)
        total = self.n_taxa * self.weights.sum()
        return float((gaps * self.weights[None, :]).sum() / total)

    @staticmethod
    def from_sequences(
        names: Sequence[str],
        sequences: Sequence[str],
        alphabet: str = "dna",
    ) -> "Alignment":
        """Build from raw sequence strings, compressing identical columns
        into weighted patterns.  Gaps ('-', '?') and ambiguity letters
        become the gap code."""
        try:
            alpha = _ALPHABETS[alphabet]
        except KeyError:
            raise ValueError(
                f"unknown alphabet {alphabet!r}; "
                f"choose from {sorted(_ALPHABETS)}"
            ) from None
        if len(names) != len(sequences):
            raise ValueError("one name per sequence required")
        if not sequences:
            raise ValueError("empty alignment")
        length = len(sequences[0])
        if length == 0:
            raise ValueError("zero-length sequences")
        if any(len(s) != length for s in sequences):
            raise ValueError("sequences must have equal length")
        mat = np.array(
            [[alpha.encode(c) for c in seq] for seq in sequences],
            dtype=np.int8,
        )
        return Alignment.from_matrix(tuple(names), mat, alpha)

    @staticmethod
    def from_matrix(
        names: Tuple[str, ...],
        matrix: np.ndarray,
        alphabet: Alphabet = DNA,
    ) -> "Alignment":
        """Build from a (taxa x sites) code matrix, compressing columns."""
        cols, counts = np.unique(matrix.T, axis=0, return_counts=True)
        return Alignment(
            names=tuple(names),
            patterns=np.ascontiguousarray(cols.T, dtype=np.int8),
            weights=counts.astype(np.float64),
            alphabet=alphabet,
        )

    def with_weights(self, weights: np.ndarray) -> "Alignment":
        """Same patterns under new weights (a bootstrap replicate)."""
        return Alignment(
            self.names, self.patterns, np.asarray(weights, float),
            self.alphabet,
        )

    def to_sequences(self) -> List[str]:
        """Expand back to per-taxon strings (patterns repeated by weight).

        Only meaningful for integer weights; used in tests and examples.
        """
        reps = self.weights.astype(int)
        if not np.all(reps == self.weights):
            raise ValueError("cannot expand non-integer weights")
        expanded = np.repeat(self.patterns, reps, axis=1)
        return [
            "".join(self.alphabet.decode(c) for c in row) for row in expanded
        ]


def synthesize_alignment(
    n_taxa: int = 42,
    n_sites: int = 1167,
    seed: int = 0,
    kappa: float = 2.5,
    frequencies=(0.30, 0.20, 0.20, 0.30),
    mean_branch: float = 0.08,
    gap_fraction: float = 0.0,
) -> Alignment:
    """Evolve a synthetic DNA alignment shaped like the paper's 42_SC.

    A random bifurcating topology is grown by sequential attachment;
    sequences evolve from a root sequence down the tree under HKY with
    exponentially distributed branch lengths.  ``gap_fraction`` of the
    cells are replaced with gaps (missing data), as in real alignments.
    Returns the compressed alignment (the generating tree is deliberately
    *not* returned — the inference examples must rediscover it).
    """
    from .models import hky

    if n_taxa < 3:
        raise ValueError("need at least 3 taxa")
    if n_sites < 1:
        raise ValueError("need at least 1 site")
    if not (0.0 <= gap_fraction < 1.0):
        raise ValueError("gap_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    model = hky(frequencies, kappa)

    # children[i] = list of (child_id, branch_length); node 0 is the root.
    children: dict = {0: []}
    leaves: List[int] = [0]
    next_id = 1
    # Grow a random topology: split a random current leaf into two.
    while len(leaves) < n_taxa:
        split = leaves.pop(rng.integers(len(leaves)))
        for _ in range(2):
            b = float(rng.exponential(mean_branch)) + 1e-4
            children.setdefault(split, []).append((next_id, b))
            leaves.append(next_id)
            next_id += 1

    # Evolve sequences root-to-leaves.
    seqs = {0: rng.choice(4, size=n_sites, p=model.frequencies)}
    stack = [0]
    while stack:
        node = stack.pop()
        for child, b in children.get(node, []):
            p = model.transition_matrix(b)  # rows: from, cols: to
            cum = np.cumsum(p, axis=1)
            u = rng.random(n_sites)
            seqs[child] = (
                u[:, None] > cum[seqs[node]]
            ).sum(axis=1).astype(np.int8)
            stack.append(child)

    names = tuple(f"taxon{i:02d}" for i in range(n_taxa))
    mat = np.stack([seqs[leaf] for leaf in sorted(leaves)])
    if gap_fraction > 0:
        mask = rng.random(mat.shape) < gap_fraction
        mat = np.where(mask, np.int8(DNA.gap_code), mat)
    return Alignment.from_matrix(names, mat, DNA)


def bootstrap_weights(alignment: Alignment, rng: np.random.Generator) -> np.ndarray:
    """Non-parametric bootstrap: resample ``n_sites`` sites with
    replacement; returns new per-pattern weights.

    This is the Section 3.1 operation — "a certain amount of columns is
    re-weighted" — under which the inference is repeated.
    """
    probs = alignment.weights / alignment.weights.sum()
    return rng.multinomial(alignment.n_sites, probs).astype(np.float64)
