"""Bridge between the real phylogenetics code and the Cell simulator.

The schedulers see RAxML as a stream of off-loadable kernel invocations.
This module converts a *recorded* kernel log from an actual inference
(:mod:`repro.phylo.likelihood` counts and sizes every call) into a
:class:`~repro.workloads.taskspec.BootstrapTrace`, so the examples can
run genuine ML tree searches through the simulated machine instead of
profile-synthesized traces.

Per-kernel SPE costs are anchored to the paper's profile: ``newview`` on
the 1167-site 42_SC input averages ~104 us on an SPE, and the parallel
loops have 228 iterations; costs scale linearly in the number of site
patterns, which is how the real kernels behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cell.local_store import CodeImage
from ..workloads.profiles import RAXML_42SC, RaxmlProfile
from ..workloads.taskspec import BootstrapTrace, LoopSpec, OffloadItem, TaskSpec
from .likelihood import KernelLog

__all__ = ["KernelCostModel", "trace_from_kernel_log", "profile_report", "fit_profile"]

US = 1e-6
KB = 1024


@dataclass(frozen=True)
class KernelCostModel:
    """Per-pattern SPE/PPE costs of each kernel, anchored to 42_SC.

    ``spe_us_per_pattern[k] * patterns`` is the optimized SPE duration of
    one invocation of kernel ``k``; PPE and naive variants scale by the
    profile-derived factors.  The paper's 228-iteration loops at 1167
    sites give the iterations-per-pattern ratio.
    """

    profile: RaxmlProfile = RAXML_42SC

    @property
    def spe_us_per_pattern(self) -> Dict[str, float]:
        p = self.profile
        return {
            f.name: f.mean_task_us / p.sites for f in p.functions
        }

    def loop_iterations(self, patterns: int) -> int:
        p = self.profile
        return max(1, round(patterns * p.loop_iterations / p.sites))

    def task(self, kernel: str, patterns: int,
             data_key: str = None) -> TaskSpec:
        """Build the TaskSpec of one recorded kernel invocation."""
        if patterns < 1:
            raise ValueError("patterns must be >= 1")
        p = self.profile
        fprof = p.function_by_name(kernel)
        spe_t = self.spe_us_per_pattern[kernel] * patterns * US
        return TaskSpec(
            function=kernel,
            spe_time=spe_t,
            ppe_time=spe_t * p.ppe_slowdown,
            naive_spe_time=spe_t * p.naive_slowdown,
            loop=LoopSpec(
                iterations=self.loop_iterations(patterns),
                coverage=fprof.loop_coverage,
                reduction=fprof.reduction,
                bytes_per_iteration=fprof.bytes_per_iteration,
            ),
            working_set=min(32 * patterns, 96 * KB),
            data_key=data_key,
        )


def trace_from_kernel_log(
    log: KernelLog,
    index: int = 0,
    cost_model: Optional[KernelCostModel] = None,
    mean_gap_us: Optional[float] = None,
    seed: int = 0,
) -> BootstrapTrace:
    """Convert a recorded inference into a replayable off-load trace.

    The event order is preserved (newview bursts during traversals,
    makenewz clusters during branch optimization), so the simulated
    off-load stream has the real application's temporal structure.
    ``scale`` is 1.0: the trace *is* the workload, not a compressed
    stand-in.
    """
    if not log.record or not log.events:
        raise ValueError(
            "kernel log has no recorded events; run the engine with "
            "log.record = True"
        )
    cm = cost_model or KernelCostModel()
    p = cm.profile
    gap_mean = (mean_gap_us if mean_gap_us is not None else p.mean_gap_us) * US
    rng = np.random.default_rng(seed + 7919 * index)

    data_key = f"{p.name}.rep{index}"
    items: List[OffloadItem] = []
    for kernel, patterns in log.events:
        gap = float(rng.gamma(2.0, gap_mean / 2.0))
        items.append(
            OffloadItem(
                ppe_gap=gap, task=cm.task(kernel, patterns, data_key=data_key)
            )
        )

    return BootstrapTrace(
        index=index,
        items=tuple(items),
        tail_ppe=gap_mean,
        scale=1.0,
        code_image=CodeImage(p.name, "serial", p.code_image_kb * KB),
        llp_image=CodeImage(p.name, "llp", p.llp_image_kb * KB),
    )


def fit_profile(
    logs: Sequence[KernelLog],
    base: RaxmlProfile = RAXML_42SC,
    cost_model: Optional[KernelCostModel] = None,
) -> RaxmlProfile:
    """Derive a workload profile from measured kernel logs.

    Closes the loop measure -> profile -> synthetic traces: the function
    time shares and mean per-invocation durations are re-estimated from
    the recorded (kernel, patterns) events of real inferences, while the
    hardware-anchored ratios (PPE/naive slowdowns, SPE fraction) are
    inherited from ``base``.  The resulting profile can drive
    :class:`~repro.workloads.traces.TraceBuilder` sweeps that match the
    *measured* application instead of the paper's gprof table.
    """
    cm = cost_model or KernelCostModel(base)
    per_us = cm.spe_us_per_pattern
    times: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    patterns_sum: Dict[str, int] = {}
    for log in logs:
        if not log.record or not log.events:
            raise ValueError(
                "kernel logs must be recorded (log.record = True)"
            )
        for kernel, patterns in log.events:
            times[kernel] = times.get(kernel, 0.0) + per_us[kernel] * patterns
            counts[kernel] = counts.get(kernel, 0) + 1
            patterns_sum[kernel] = patterns_sum.get(kernel, 0) + patterns
    total = sum(times.values())
    if total <= 0:
        raise ValueError("no kernel time recorded")

    from dataclasses import replace

    functions = []
    for fprof in base.functions:
        name = fprof.name
        if name not in counts:
            continue
        functions.append(
            replace(
                fprof,
                time_share=times[name] / total,
                mean_task_us=per_us[name] * patterns_sum[name] / counts[name],
            )
        )
    if not functions:
        raise ValueError("logs contain none of the profile's functions")
    n_calls = sum(counts.values())
    mean_task_us = total / n_calls
    # Keep the hardware ratios; rescale the end-to-end anchors so that
    # `tasks_per_bootstrap_full` matches the measured call count per log.
    calls_per_inference = n_calls / len(logs)
    spe_seconds = calls_per_inference * mean_task_us * US
    optimized = spe_seconds / base.spe_fraction
    # Fine-grained fitted workloads can have less PPE time per off-load
    # than the base profile's explicit runtime overhead; cap the budget
    # so trace generation stays feasible (the simulator still charges
    # its real dispatch/completion costs on top).
    ppe_per_task_us = (
        (1 - base.spe_fraction) * optimized / calls_per_inference / US
    )
    overhead_us = min(base.runtime_overhead_us, 0.5 * ppe_per_task_us)
    return replace(
        base,
        name=f"{base.name}-fitted",
        optimized_seconds=optimized,
        naive_offload_seconds=base.naive_slowdown * spe_seconds
        + (1 - base.spe_fraction) * optimized,
        ppe_only_seconds=base.ppe_slowdown * spe_seconds
        + (1 - base.spe_fraction) * optimized,
        mean_task_us=mean_task_us,
        runtime_overhead_us=overhead_us,
        functions=tuple(functions),
    )


def profile_report(logs: Sequence[KernelLog]) -> Dict[str, float]:
    """Aggregate kernel statistics over several inferences.

    Returns call counts and call-share percentages — the measured
    analogue of the paper's gprof table (76.8 / 19.6 / 2.37%).
    """
    total_nv = sum(l.newview_calls for l in logs)
    total_ev = sum(l.evaluate_calls for l in logs)
    total_mz = sum(l.makenewz_calls for l in logs)
    total = max(1, total_nv + total_ev + total_mz)
    return {
        "newview_calls": float(total_nv),
        "evaluate_calls": float(total_ev),
        "makenewz_calls": float(total_mz),
        "newview_share": total_nv / total,
        "evaluate_share": total_ev / total,
        "makenewz_share": total_mz / total,
        "makenewz_iterations": float(sum(l.makenewz_iterations for l in logs)),
    }
