"""Non-parametric bootstrap analyses (Section 3.1).

A real-world RAxML analysis = multiple inferences on the original
alignment (distinct random starting trees) + 100-1000 bootstrap
replicates (inferences on re-weighted alignments).  Every replicate is an
independent task — this is precisely the task-level parallelism the
EDTLP scheduler exploits.  Here the replicates run sequentially in plain
Python; the *simulated* parallel execution happens by feeding the
recorded kernel traces through the Cell scheduler (see
:mod:`repro.phylo.raxml`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .alignment import Alignment, bootstrap_weights
from .likelihood import KernelLog, LikelihoodEngine
from .models import SubstitutionModel
from .search import SearchResult, hill_climb
from .tree import Tree

__all__ = ["BootstrapReplicate", "BootstrapAnalysis", "run_bootstrap_analysis",
           "branch_support"]


@dataclass(frozen=True)
class BootstrapReplicate:
    """One completed replicate: its tree, score and kernel counts."""

    index: int
    result: SearchResult
    kernel_log: KernelLog


@dataclass(frozen=True)
class BootstrapAnalysis:
    """A full analysis: best-known tree + bootstrap replicates."""

    best: SearchResult
    replicates: Tuple[BootstrapReplicate, ...]

    @property
    def n_replicates(self) -> int:
        return len(self.replicates)


def run_bootstrap_analysis(
    alignment: Alignment,
    model: SubstitutionModel,
    n_bootstraps: int = 10,
    n_inferences: int = 1,
    seed: int = 0,
    n_rate_categories: int = 4,
    alpha: float = 0.5,
    max_rounds: int = 5,
    record_kernels: bool = False,
) -> BootstrapAnalysis:
    """Multiple inferences + bootstrap replicates, RAxML-style.

    Each inference starts from a distinct random topology; each bootstrap
    re-weights the site patterns and repeats the search.  Returns the
    best-scoring inference and all replicates.
    """
    if n_bootstraps < 0 or n_inferences < 1:
        raise ValueError("need n_inferences >= 1 and n_bootstraps >= 0")
    rng = np.random.default_rng(seed)

    # Multiple inferences on the original alignment.
    best: Optional[SearchResult] = None
    for _ in range(n_inferences):
        engine = LikelihoodEngine(alignment, model, n_rate_categories, alpha)
        start = Tree.random_topology(alignment.n_taxa, rng)
        result = hill_climb(engine, start, max_rounds=max_rounds)
        if best is None or result.loglik > best.loglik:
            best = result

    replicates: List[BootstrapReplicate] = []
    for b in range(n_bootstraps):
        weights = bootstrap_weights(alignment, rng)
        replicate_aln = alignment.with_weights(weights)
        engine = LikelihoodEngine(replicate_aln, model, n_rate_categories, alpha)
        engine.log.record = record_kernels
        start = Tree.random_topology(alignment.n_taxa, rng)
        result = hill_climb(engine, start, max_rounds=max_rounds)
        replicates.append(
            BootstrapReplicate(index=b, result=result, kernel_log=engine.log)
        )

    return BootstrapAnalysis(best=best, replicates=tuple(replicates))


def _bipartitions(tree: Tree) -> set:
    """Non-trivial leaf bipartitions of a tree, as frozensets of taxa."""
    all_taxa = frozenset(l.taxon for l in tree.leaves())
    splits = set()
    below: dict = {}
    for node in tree.postorder():
        if node.is_leaf:
            below[node.id] = frozenset([node.taxon])
        else:
            below[node.id] = frozenset().union(
                *(below[c.id] for c in node.children)
            )
            side = below[node.id]
            if 1 < len(side) < len(all_taxa) - 1:
                # Canonical orientation: the side containing taxon 0.
                splits.add(side if 0 in side else all_taxa - side)
    return splits


def branch_support(analysis: BootstrapAnalysis) -> List[Tuple[frozenset, float]]:
    """Bootstrap support of each bipartition of the best tree.

    The confidence values (0..1) biologists put on the published tree —
    the actual output of the 100-1000-bootstrap computation the paper
    accelerates.
    """
    best_splits = _bipartitions(analysis.best.tree)
    if not analysis.replicates:
        return [(s, 0.0) for s in sorted(best_splits, key=sorted)]
    rep_splits = [_bipartitions(r.result.tree) for r in analysis.replicates]
    out = []
    for split in sorted(best_splits, key=sorted):
        support = sum(1 for rs in rep_splits if split in rs) / len(rep_splits)
        out.append((split, support))
    return out
