"""RAxML's CAT approximation of among-site rate heterogeneity.

Instead of GAMMA's mixture (every site pays for every rate category),
CAT assigns each site *pattern* its own rate category and evaluates it
under that single rate — the approximation RAxML uses for large HPC
analyses because it is leaner in both memory and floating point (the
very pressures Section 3 highlights).

Fitting is the standard two-step:

1. per-pattern ML rates on a fixed tree, via a vectorized grid search
   (one traversal evaluates the whole grid thanks to the engine's rate
   axis);
2. quantile-quantization of those rates into ``n_categories`` clusters,
   each category's rate being the weighted mean of its members,
   normalized so the expected rate stays 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .alignment import Alignment
from .likelihood import LikelihoodEngine
from .models import SubstitutionModel
from .tree import Tree

__all__ = ["estimate_pattern_rates", "quantize_rates", "fit_cat"]


def estimate_pattern_rates(
    alignment: Alignment,
    model: SubstitutionModel,
    tree: Tree,
    rate_grid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-pattern ML rate estimates on a fixed tree.

    Evaluates every pattern under every grid rate in a single traversal
    (the grid rides the engine's rate axis) and returns the argmax rate
    per pattern.
    """
    if rate_grid is None:
        rate_grid = np.geomspace(0.05, 8.0, 24)
    grid = np.asarray(rate_grid, dtype=float)
    if grid.ndim != 1 or len(grid) < 2:
        raise ValueError("rate_grid must contain at least two rates")
    engine = LikelihoodEngine(alignment, model, category_rates=grid)
    engine.full_traversal(tree)
    clv, _scale = engine._clv[tree.root.id]
    per_rate = np.einsum("srx,x->sr", clv, model.frequencies)
    # Scaling factors are per-pattern (shared across rates), so the
    # argmax over rates is unaffected by them.
    best = np.argmax(per_rate, axis=1)
    return grid[best]


def quantize_rates(
    pattern_rates: np.ndarray,
    weights: np.ndarray,
    n_categories: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster per-pattern rates into categories by weighted quantiles.

    Returns ``(category_rates, assignment)``; category rates are the
    weighted means of their members, normalized so the weighted mean
    rate over all sites is 1 (branch lengths keep their scale).
    """
    rates = np.asarray(pattern_rates, dtype=float)
    w = np.asarray(weights, dtype=float)
    if rates.shape != w.shape:
        raise ValueError("one weight per pattern rate required")
    if n_categories < 1:
        raise ValueError("need at least one category")
    n_categories = min(n_categories, len(np.unique(rates)))

    order = np.argsort(rates)
    cum = np.cumsum(w[order])
    boundaries = cum[-1] * np.arange(1, n_categories) / n_categories
    split_idx = np.searchsorted(cum, boundaries, side="left")
    groups = np.split(order, split_idx)

    assignment = np.empty(len(rates), dtype=np.int64)
    cat_rates = np.empty(len(groups))
    for c, members in enumerate(groups):
        if len(members) == 0:  # pragma: no cover - degenerate quantile
            cat_rates[c] = 1.0
            continue
        cat_rates[c] = np.average(rates[members], weights=w[members])
        assignment[members] = c
    # Normalize the site-weighted mean rate to 1.
    mean = np.average(cat_rates[assignment], weights=w)
    cat_rates /= mean
    return cat_rates, assignment


def fit_cat(
    alignment: Alignment,
    model: SubstitutionModel,
    tree: Tree,
    n_categories: int = 4,
    rate_grid: Optional[np.ndarray] = None,
) -> LikelihoodEngine:
    """Fit CAT categories on ``tree`` and return a CAT-mode engine."""
    per_pattern = estimate_pattern_rates(alignment, model, tree, rate_grid)
    cat_rates, assignment = quantize_rates(
        per_pattern, alignment.weights, n_categories
    )
    return LikelihoodEngine(
        alignment,
        model,
        category_rates=cat_rates,
        pattern_categories=assignment,
    )
