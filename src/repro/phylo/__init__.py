"""A working maximum-likelihood phylogenetics engine (the RAxML workload).

Real Felsenstein-pruning likelihood kernels (``newview`` / ``evaluate`` /
``makenewz``), GTR/HKY substitution models with discrete-Gamma rates,
NNI hill-climbing search and non-parametric bootstrapping — plus the
bridge that replays recorded kernel invocations through the simulated
Cell machine.
"""

from .alignment import (
    Alignment,
    Alphabet,
    DNA,
    PROTEIN,
    bootstrap_weights,
    synthesize_alignment,
)
from .cat import estimate_pattern_rates, fit_cat, quantize_rates
from .consensus import annotate_support, majority_rule_consensus, split_frequencies
from .distance import jc_distance_matrix, neighbor_joining, p_distance_matrix
from .bootstrap import (
    BootstrapAnalysis,
    BootstrapReplicate,
    branch_support,
    run_bootstrap_analysis,
)
from .likelihood import KernelLog, LikelihoodEngine
from .models import (
    SubstitutionModel,
    discrete_gamma_rates,
    gtr,
    hky,
    jc69,
    protein_poisson,
)
from .modelfit import golden_section_maximize, optimize_alpha, optimize_kappa
from .newick import parse_newick
from .raxml import KernelCostModel, fit_profile, profile_report, trace_from_kernel_log
from .search import SearchResult, hill_climb
from .tree import Node, Tree

__all__ = [
    "Alignment",
    "synthesize_alignment",
    "bootstrap_weights",
    "SubstitutionModel",
    "gtr",
    "hky",
    "jc69",
    "discrete_gamma_rates",
    "Tree",
    "Node",
    "LikelihoodEngine",
    "KernelLog",
    "SearchResult",
    "hill_climb",
    "BootstrapAnalysis",
    "BootstrapReplicate",
    "run_bootstrap_analysis",
    "branch_support",
    "KernelCostModel",
    "trace_from_kernel_log",
    "profile_report",
    "fit_profile",
    "p_distance_matrix",
    "jc_distance_matrix",
    "neighbor_joining",
    "parse_newick",
    "golden_section_maximize",
    "optimize_kappa",
    "optimize_alpha",
    "Alphabet",
    "DNA",
    "PROTEIN",
    "protein_poisson",
    "split_frequencies",
    "majority_rule_consensus",
    "annotate_support",
    "estimate_pattern_rates",
    "quantize_rates",
    "fit_cat",
]
