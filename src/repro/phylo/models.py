"""Substitution models for maximum-likelihood phylogenetics.

Implements the reversible model family over any alphabet size via
spectral decomposition of the rate matrix: ``P(t) = V exp(L t) V^-1``.
For nucleotides (4 states) HKY85 and Jukes-Cantor are the usual special
cases of GTR; for amino acids (20 states, RAxML handles both) a Poisson
model and custom exchangeability matrices are supported.  A
discrete-Gamma model of among-site rate heterogeneity (Yang 1994) is
provided because RAxML's GAMMA mode is what makes the likelihood kernels
as memory- and FP-intensive as the paper describes.

Everything is vectorized over sites and rate categories; transition
matrices for many branch lengths are computed in one einsum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SubstitutionModel",
    "gtr",
    "hky",
    "jc69",
    "protein_poisson",
    "discrete_gamma_rates",
]


def _normalize_frequencies(freqs) -> np.ndarray:
    f = np.asarray(freqs, dtype=float)
    if f.ndim != 1 or f.shape[0] < 2:
        raise ValueError(f"need a 1-D frequency vector, got shape {f.shape}")
    if np.any(f <= 0):
        raise ValueError("state frequencies must be positive")
    return f / f.sum()


@dataclass(frozen=True)
class SubstitutionModel:
    """A reversible substitution model, spectrally decomposed.

    Attributes
    ----------
    frequencies:
        Stationary state frequencies (length = alphabet size).
    rates:
        The ``n(n-1)/2`` symmetric exchangeability parameters in
        row-major upper-triangle order (for DNA: AC, AG, AT, CG, CT, GT).
    """

    frequencies: np.ndarray
    rates: np.ndarray
    _eigvals: np.ndarray = field(repr=False, default=None)
    _V: np.ndarray = field(repr=False, default=None)
    _Vinv: np.ndarray = field(repr=False, default=None)

    @property
    def n_states(self) -> int:
        """Alphabet size (4 for DNA, 20 for amino acids)."""
        return self.frequencies.shape[0]

    @staticmethod
    def create(frequencies, rates) -> "SubstitutionModel":
        """Build and decompose a general reversible model.

        The rate matrix is scaled so the expected substitution rate at
        stationarity is 1 (branch lengths are then in expected
        substitutions per site).
        """
        freqs = _normalize_frequencies(frequencies)
        n = freqs.shape[0]
        r = np.asarray(rates, dtype=float)
        n_ex = n * (n - 1) // 2
        if r.shape != (n_ex,):
            raise ValueError(
                f"need {n_ex} exchangeabilities for {n} states, "
                f"got shape {r.shape}"
            )
        if np.any(r <= 0):
            raise ValueError("exchangeabilities must be positive")

        # Assemble Q from the symmetric exchangeabilities.
        q = np.zeros((n, n))
        idx = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for rate, (i, j) in zip(r, idx):
            q[i, j] = rate * freqs[j]
            q[j, i] = rate * freqs[i]
        np.fill_diagonal(q, -q.sum(axis=1))
        # Normalize the mean rate: -sum_i pi_i q_ii = 1.
        mu = -(freqs * np.diag(q)).sum()
        q /= mu

        # Symmetrize with pi^(1/2) for a stable eigendecomposition:
        # S = D^(1/2) Q D^(-1/2) is symmetric for reversible Q.
        d = np.sqrt(freqs)
        s = (q * d[:, None]) / d[None, :]
        eigvals, u = np.linalg.eigh((s + s.T) / 2.0)
        v = u / d[:, None]          # V = D^(-1/2) U
        vinv = u.T * d[None, :]     # V^-1 = U^T D^(1/2)

        return SubstitutionModel(
            frequencies=freqs,
            rates=r,
            _eigvals=eigvals,
            _V=v,
            _Vinv=vinv,
        )

    # -- transition probabilities --------------------------------------------
    def transition_matrix(self, t: float) -> np.ndarray:
        """P(t) for a single branch length ``t`` (4x4)."""
        return self.transition_matrices(np.asarray([t]))[0]

    def transition_matrices(self, lengths) -> np.ndarray:
        """P(t) for an array of branch lengths; shape (..., 4, 4).

        Negative lengths are rejected; zero gives the identity.
        """
        t = np.asarray(lengths, dtype=float)
        if np.any(t < 0):
            raise ValueError("branch lengths must be non-negative")
        expo = np.exp(np.multiply.outer(t, self._eigvals))  # (..., 4)
        p = np.einsum("ij,...j,jk->...ik", self._V, expo, self._Vinv)
        # Clip tiny negative values from roundoff.
        return np.clip(p, 0.0, None)

    def transition_derivatives(self, t: float, rates=None):
        """(P, dP/dt, d2P/dt2) at ``t`` for each rate category.

        With rate scaling r, P_r(t) = exp(Q r t), so dP_r/dt = r * Q P_r.
        Returned arrays have shape (n_rates, 4, 4).  Used by the Newton
        branch-length optimizer (RAxML's ``makenewz``).
        """
        if t < 0:
            raise ValueError("branch length must be non-negative")
        r = np.asarray([1.0] if rates is None else rates, dtype=float)
        lam = self._eigvals
        e = np.exp(np.multiply.outer(r * t, lam))        # (R, 4)
        p = np.einsum("ij,rj,jk->rik", self._V, e, self._Vinv)
        d1 = np.einsum("ij,rj,jk->rik", self._V, e * (r[:, None] * lam), self._Vinv)
        d2 = np.einsum(
            "ij,rj,jk->rik", self._V, e * (r[:, None] * lam) ** 2, self._Vinv
        )
        return np.clip(p, 0.0, None), d1, d2


def gtr(frequencies, rates) -> SubstitutionModel:
    """General time-reversible model."""
    return SubstitutionModel.create(frequencies, rates)


def hky(frequencies=(0.25, 0.25, 0.25, 0.25), kappa: float = 2.0) -> SubstitutionModel:
    """HKY85: one transition/transversion ratio ``kappa``."""
    if kappa <= 0:
        raise ValueError("kappa must be positive")
    # Transitions: AG and CT.
    rates = np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0])
    return SubstitutionModel.create(frequencies, rates)


def jc69() -> SubstitutionModel:
    """Jukes-Cantor 1969: uniform frequencies and rates."""
    return SubstitutionModel.create(np.full(4, 0.25), np.ones(6))


def protein_poisson(frequencies=None) -> SubstitutionModel:
    """A 20-state amino-acid model with equal exchangeabilities.

    ``frequencies=None`` gives the uniform Poisson model; pass empirical
    frequencies for the +F variant.  (Dedicated matrices like WAG drop in
    via :meth:`SubstitutionModel.create` with 190 exchangeabilities.)
    """
    f = np.full(20, 0.05) if frequencies is None else frequencies
    return SubstitutionModel.create(f, np.ones(190))


def discrete_gamma_rates(alpha: float, n_categories: int = 4) -> np.ndarray:
    """Mean rates of ``n_categories`` equal-probability Gamma bins.

    The Yang (1994) discrete approximation of Gamma(alpha, alpha) rate
    heterogeneity; rates are normalized to mean 1.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if n_categories < 1:
        raise ValueError("need at least one category")
    if n_categories == 1:
        return np.ones(1)
    from scipy.stats import gamma as gamma_dist

    probs = (np.arange(n_categories) + 0.5) / n_categories
    quantiles = gamma_dist.ppf(probs, alpha, scale=1.0 / alpha)
    return quantiles / quantiles.mean()
