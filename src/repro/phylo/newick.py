"""Newick parsing (the inverse of :meth:`repro.phylo.tree.Tree.newick`).

Supports the subset the library emits: nested parentheses, leaf labels,
``:length`` annotations, and a trailing semicolon.  Taxon indices are
assigned from a name list when given, otherwise from ``tN``/appearance
order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .tree import Node, Tree

__all__ = ["parse_newick"]


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise ValueError("unexpected end of Newick string")
        return self.text[self.pos]

    def take(self) -> str:
        c = self.peek()
        self.pos += 1
        return c

    def expect(self, c: str) -> None:
        got = self.take()
        if got != c:
            raise ValueError(
                f"expected {c!r} at position {self.pos - 1}, got {got!r}"
            )

    def label(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "():,;":
            self.pos += 1
        return self.text[start:self.pos].strip()

    def number(self) -> float:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "(),;":
            self.pos += 1
        token = self.text[start:self.pos].strip()
        try:
            return float(token)
        except ValueError:
            raise ValueError(f"bad branch length {token!r}") from None


def parse_newick(
    text: str, names: Optional[Sequence[str]] = None
) -> Tree:
    """Parse a Newick string into a :class:`~repro.phylo.tree.Tree`.

    ``names`` maps leaf labels to taxon indices; without it, labels of
    the form ``tN`` map to taxon N, and anything else is indexed by
    first appearance.
    """
    text = text.strip()
    if not text.endswith(";"):
        raise ValueError("Newick string must end with ';'")
    parser = _Parser(text[:-1])
    name_to_taxon = (
        {n: i for i, n in enumerate(names)} if names is not None else {}
    )
    auto_names: List[str] = []
    next_internal = [10**6]  # internal ids far above leaf ids

    def taxon_of(label: str) -> int:
        if not label:
            raise ValueError("leaf without a label")
        if names is not None:
            try:
                return name_to_taxon[label]
            except KeyError:
                raise ValueError(f"unknown taxon label {label!r}") from None
        if label.startswith("t") and label[1:].isdigit():
            return int(label[1:])
        if label not in auto_names:
            auto_names.append(label)
        return auto_names.index(label)

    def node() -> Node:
        if parser.peek() == "(":
            parser.expect("(")
            children = [node()]
            while parser.peek() == ",":
                parser.take()
                children.append(node())
            parser.expect(")")
            parser.label()  # optional internal label, ignored
            n = Node(next_internal[0])
            next_internal[0] += 1
            for c in children:
                n.add_child(c)
        else:
            label = parser.label()
            n = Node(0, taxon=taxon_of(label))
        if parser.pos < len(parser.text) and parser.text[parser.pos] == ":":
            parser.take()
            n.length = parser.number()
        return n

    root = node()
    if parser.pos != len(parser.text):
        raise ValueError(
            f"trailing characters after tree: {parser.text[parser.pos:]!r}"
        )
    leaves = [n for n in _walk(root) if n.taxon is not None]
    taxa = sorted(l.taxon for l in leaves)
    if taxa != list(range(len(taxa))):
        raise ValueError(f"leaf taxa are not contiguous: {taxa}")
    # Re-number nodes: leaves keep taxon ids, internals follow.
    next_id = len(taxa)
    for n in _walk(root):
        if n.taxon is not None:
            n.id = n.taxon
        else:
            n.id = next_id
            next_id += 1
    return Tree(root, len(taxa))


def _walk(node: Node):
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        stack.extend(n.children)
