"""Scheduler specifications: the policies an experiment can select.

A :class:`SchedulerSpec` is a declarative description; the runner turns it
into a concrete runtime bound to a machine.  Convenience constructors
mirror the paper's nomenclature:

* :func:`linux` — the Linux 2.6 baseline (Table 1, right column);
* :func:`edtlp` — event-driven task-level parallelism;
* :func:`static_hybrid` — EDTLP-LLP with a fixed loops-per-SPE degree;
* :func:`mgps` — the adaptive multigrain scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cell.machine import CellMachine
from ..sim.engine import Environment
from .llp import LLPConfig
from .runtime import (
    EDTLPRuntime,
    LinuxRuntime,
    MGPSRuntime,
    OffloadRuntime,
    StaticHybridRuntime,
)

__all__ = ["SchedulerSpec", "linux", "edtlp", "static_hybrid", "mgps"]

_KINDS = ("linux", "edtlp", "static", "mgps")


@dataclass(frozen=True)
class SchedulerSpec:
    """Declarative description of a scheduling policy.

    ``n_processes=None`` lets the runner choose the paper's defaults:
    one MPI process per SPE for task-parallel schemes, ``n_spes/degree``
    processes for the static hybrid, never more processes than
    bootstraps.
    """

    kind: str
    llp_degree: int = 1
    n_processes: Optional[int] = None
    granularity_enabled: bool = True
    optimized: bool = True
    offload_enabled: bool = True
    locality_aware: bool = False
    llp_config: Optional[LLPConfig] = None
    history_window: Optional[int] = None
    llp_u_threshold: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown scheduler kind {self.kind!r}")
        if self.llp_degree < 1:
            raise ValueError("llp_degree must be >= 1")
        if self.n_processes is not None and self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.kind == "static":
            return f"edtlp-llp{self.llp_degree}"
        return self.kind

    def default_processes(self, total_spes: int, bootstraps: int) -> int:
        if self.n_processes is not None:
            return self.n_processes
        if self.kind == "static":
            per_machine = max(1, total_spes // self.llp_degree)
        else:
            per_machine = total_spes
        return max(1, min(bootstraps, per_machine))

    def build(self, env: Environment, machine: CellMachine,
              tracer=None, metrics=None, faults=None,
              tolerance=None) -> OffloadRuntime:
        """Instantiate the runtime for this spec on ``machine``.

        ``tracer``/``metrics`` fall back to the sinks attached to ``env``
        (see :class:`~repro.sim.engine.Environment`), so observability can
        be injected once at environment construction.  ``faults`` is an
        installed :class:`~repro.faults.FaultInjector` (None = fault-free
        fast path); ``tolerance`` a
        :class:`~repro.faults.TolerancePolicy` override.
        """
        if tracer is None:
            tracer = getattr(env, "tracer", None)
        if metrics is None:
            metrics = getattr(env, "metrics", None)
        common = dict(
            granularity_enabled=self.granularity_enabled,
            optimized=self.optimized,
            llp_config=self.llp_config,
            offload_enabled=self.offload_enabled,
            locality_aware=self.locality_aware,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            tolerance=tolerance,
        )
        if self.kind == "linux":
            return LinuxRuntime(env, machine, **common)
        if self.kind == "edtlp":
            return EDTLPRuntime(env, machine, **common)
        if self.kind == "static":
            return StaticHybridRuntime(env, machine, degree=self.llp_degree, **common)
        return MGPSRuntime(
            env, machine, window=self.history_window,
            llp_u_threshold=self.llp_u_threshold, **common,
        )

    def with_(self, **kwargs) -> "SchedulerSpec":
        return replace(self, **kwargs)


def linux(**kwargs) -> SchedulerSpec:
    """The OS-scheduler baseline: pinned SPEs, spin-wait off-loads."""
    return SchedulerSpec(kind="linux", **kwargs)


def edtlp(**kwargs) -> SchedulerSpec:
    """Event-driven task-level parallelism (Section 5.2)."""
    return SchedulerSpec(kind="edtlp", **kwargs)


def static_hybrid(degree: int, **kwargs) -> SchedulerSpec:
    """Static EDTLP-LLP with ``degree`` SPEs per parallel loop."""
    return SchedulerSpec(kind="static", llp_degree=degree, **kwargs)


def mgps(**kwargs) -> SchedulerSpec:
    """Adaptive multigrain parallelism scheduling (Section 5.4)."""
    return SchedulerSpec(kind="mgps", **kwargs)
