"""Scheduler specifications: the policies an experiment can select.

A :class:`SchedulerSpec` is a declarative description; the runner turns it
into a concrete runtime bound to a machine.  ``kind`` is a key into the
scheduling-policy registry (see
:func:`~repro.core.runtime.register_policy`), so third-party policies are
selectable by name without touching this module.  Convenience
constructors mirror the paper's nomenclature:

* :func:`linux` — the Linux 2.6 baseline (Table 1, right column);
* :func:`edtlp` — event-driven task-level parallelism;
* :func:`static_hybrid` — EDTLP-LLP with a fixed loops-per-SPE degree;
* :func:`mgps` — the adaptive multigrain scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cell.machine import CellMachine
from ..sim.engine import Environment
from .llp import LLPConfig
from .runtime import OffloadEngine, resolve_policy

__all__ = ["SchedulerSpec", "linux", "edtlp", "static_hybrid", "mgps"]

# Historical spelling of the registry key: the spec predates the policy
# registry and called the fixed-degree hybrid "static".
_ALIASES = {"static": "static_hybrid"}


@dataclass(frozen=True)
class SchedulerSpec:
    """Declarative description of a scheduling policy.

    ``n_processes=None`` lets the runner choose the paper's defaults:
    one MPI process per SPE for task-parallel schemes, ``n_spes/degree``
    processes for the static hybrid, never more processes than
    bootstraps.
    """

    kind: str
    llp_degree: int = 1
    n_processes: Optional[int] = None
    granularity_enabled: bool = True
    optimized: bool = True
    offload_enabled: bool = True
    locality_aware: bool = False
    llp_config: Optional[LLPConfig] = None
    history_window: Optional[int] = None
    llp_u_threshold: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        resolve_policy(_ALIASES.get(self.kind, self.kind))  # unknown -> ValueError
        if self.llp_degree < 1:
            raise ValueError("llp_degree must be >= 1")
        if self.n_processes is not None and self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.kind == "static":
            return f"edtlp-llp{self.llp_degree}"
        return self.kind

    def default_processes(self, total_spes: int, bootstraps: int) -> int:
        if self.n_processes is not None:
            return self.n_processes
        if self.kind == "static":
            per_machine = max(1, total_spes // self.llp_degree)
        else:
            per_machine = total_spes
        return max(1, min(bootstraps, per_machine))

    def build(self, env: Environment, machine: CellMachine,
              tracer=None, metrics=None, faults=None,
              tolerance=None) -> OffloadEngine:
        """Instantiate the runtime for this spec on ``machine``.

        The registered policy factory receives this spec (so it can read
        ``llp_degree``, ``history_window``, ...) and the resulting policy
        steers one shared :class:`~repro.core.runtime.OffloadEngine`.

        ``tracer``/``metrics`` fall back to the sinks attached to ``env``
        (see :class:`~repro.sim.engine.Environment`), so observability can
        be injected once at environment construction.  ``faults`` is an
        installed :class:`~repro.faults.FaultInjector` (None = fault-free
        fast path); ``tolerance`` a
        :class:`~repro.faults.TolerancePolicy` override.
        """
        if tracer is None:
            tracer = getattr(env, "tracer", None)
        if metrics is None:
            metrics = getattr(env, "metrics", None)
        info = resolve_policy(_ALIASES.get(self.kind, self.kind))
        return OffloadEngine(
            env, machine,
            granularity_enabled=self.granularity_enabled,
            optimized=self.optimized,
            llp_config=self.llp_config,
            offload_enabled=self.offload_enabled,
            locality_aware=self.locality_aware,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            tolerance=tolerance,
            policy=info.factory(self),
        )

    def with_(self, **kwargs) -> "SchedulerSpec":
        return replace(self, **kwargs)


def linux(**kwargs) -> SchedulerSpec:
    """The OS-scheduler baseline: pinned SPEs, spin-wait off-loads."""
    return SchedulerSpec(kind="linux", **kwargs)


def edtlp(**kwargs) -> SchedulerSpec:
    """Event-driven task-level parallelism (Section 5.2)."""
    return SchedulerSpec(kind="edtlp", **kwargs)


def static_hybrid(degree: int, **kwargs) -> SchedulerSpec:
    """Static EDTLP-LLP with ``degree`` SPEs per parallel loop."""
    return SchedulerSpec(kind="static", llp_degree=degree, **kwargs)


def mgps(**kwargs) -> SchedulerSpec:
    """Adaptive multigrain parallelism scheduling (Section 5.4)."""
    return SchedulerSpec(kind="mgps", **kwargs)
