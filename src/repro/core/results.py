"""Result records for scheduler experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["ScheduleResult"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduler/workload run.

    ``makespan`` is in *paper-scale* seconds (raw simulated makespan times
    the trace compression ratio); ``raw_makespan`` is the simulated time
    actually elapsed.
    """

    scheduler: str
    bootstraps: int
    n_processes: int
    makespan: float
    raw_makespan: float
    scale: float
    spe_utilization: float
    ppe_occupancy: float
    offloads: int
    ppe_fallbacks: int
    offload_waits: int
    llp_invocations: int
    llp_mode_switches: int
    code_loads: int
    ppe_context_switches: int
    per_spe_busy: Tuple[float, ...]
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Bootstraps per paper-scale second."""
        return self.bootstraps / self.makespan if self.makespan > 0 else 0.0

    def speedup_over(self, other: "ScheduleResult") -> float:
        """How much faster this run is than ``other``."""
        if self.makespan <= 0:
            return float("inf")
        return other.makespan / self.makespan

    def summary(self) -> str:
        return (
            f"{self.scheduler:>12s}: {self.bootstraps:4d} bootstraps on "
            f"{self.n_processes} procs -> {self.makespan:8.2f} s "
            f"(SPE util {self.spe_utilization:5.1%}, "
            f"{self.offloads} offloads, {self.llp_invocations} LLP)"
        )
