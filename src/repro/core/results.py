"""Result records for scheduler experiments.

Besides the timing record (:class:`ScheduleResult`), this module holds
the :class:`ResultLedger` — a per-run chained digest over the
*application results* each bootstrap produces.  Fault tolerance promises
that a run perturbed by injected faults computes exactly what the
fault-free run computes (tasks may execute on an SPE, after retries, or
on the PPE — the numbers are the same either way); the ledger turns that
promise into a comparable SHA-256 digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["ResultLedger", "ScheduleResult"]


class ResultLedger:
    """Chained per-bootstrap digest of executed application work.

    Each bootstrap (keyed by its identity — the trace index — plus the
    owning process rank while open) accumulates a running SHA-256 over
    the content of every task it completes, in the order the owning
    process completes them — which is deterministic per bootstrap
    because one process drives one bootstrap sequentially.  The run
    digest hashes the *sorted* per-bootstrap digests keyed by bootstrap
    identity only: which rank, blade, or arrival order executed a
    bootstrap cannot affect it, while any lost, duplicated, or
    corrupted task does.  This rank-independence is what lets a serving
    fleet compare digests across dispatch policies (a job executed on
    any blade, in any order, under any process count yields the same
    digest).
    """

    def __init__(self) -> None:
        self._open: Dict[Tuple[int, int], "hashlib._Hash"] = {}
        self._done: Dict[Tuple[int, int], str] = {}

    def start(self, rank: int, bootstrap: int) -> None:
        key = (rank, bootstrap)
        if key in self._open or key in self._done:
            raise RuntimeError(f"bootstrap {key} started twice")
        h = hashlib.sha256()
        h.update(f"bootstrap:{bootstrap}".encode())
        self._open[key] = h

    def record(self, rank: int, bootstrap: int, payload: str) -> None:
        """Fold one completed task's content into its bootstrap chain."""
        key = (rank, bootstrap)
        h = self._open.get(key)
        if h is None:
            raise RuntimeError(
                f"task recorded for bootstrap {key} which is not open"
            )
        h.update(payload.encode())

    def finish(self, rank: int, bootstrap: int) -> str:
        key = (rank, bootstrap)
        h = self._open.pop(key, None)
        if h is None:
            raise RuntimeError(f"bootstrap {key} finished but never started")
        digest = h.hexdigest()
        self._done[key] = digest
        return digest

    @property
    def completed(self) -> int:
        return len(self._done)

    @property
    def open_bootstraps(self) -> int:
        return len(self._open)

    def bootstrap_digests(self) -> Tuple[Tuple[int, str], ...]:
        """``(bootstrap, digest)`` pairs sorted by bootstrap identity.

        The executing rank is deliberately absent: the per-bootstrap
        digest is a pure function of the bootstrap's trace, so the same
        bootstrap bag produces the same pairs under any scheduler,
        process count, blade, or arrival order.
        """
        return tuple(sorted(
            (key[1], digest) for key, digest in self._done.items()
        ))

    def run_digest(self) -> str:
        """Order- and rank-insensitive digest over completed bootstraps."""
        h = hashlib.sha256()
        for bootstrap, digest in self.bootstrap_digests():
            h.update(f"{bootstrap}:{digest}".encode())
        return h.hexdigest()


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduler/workload run.

    ``makespan`` is in *paper-scale* seconds (raw simulated makespan times
    the trace compression ratio); ``raw_makespan`` is the simulated time
    actually elapsed.
    """

    scheduler: str
    bootstraps: int
    n_processes: int
    makespan: float
    raw_makespan: float
    scale: float
    spe_utilization: float
    ppe_occupancy: float
    offloads: int
    ppe_fallbacks: int
    offload_waits: int
    llp_invocations: int
    llp_mode_switches: int
    code_loads: int
    ppe_context_switches: int
    per_spe_busy: Tuple[float, ...]
    extras: Dict[str, float] = field(default_factory=dict)
    # Fault-tolerance fields (defaults keep older call sites working):
    # ``result_digest`` is the ResultLedger run digest — equal across
    # fault-free and faulty runs of the same workload by the headline
    # invariant; ``bootstraps_completed`` counts ledger-verified
    # bootstraps.
    result_digest: str = ""
    bootstraps_completed: int = 0
    # Per-bootstrap ``(identity, digest)`` pairs from the ledger, sorted
    # by identity.  The serving layer uses these to attribute digests to
    # individual jobs independently of which blade/rank executed them.
    bootstrap_digests: Tuple[Tuple[int, str], ...] = ()
    # Kernel events processed by the run's Environment — deterministic
    # for a given (scheduler, workload, seed), so throughput benchmarks
    # can compute events/wall-second without a metrics registry.
    events_processed: int = 0

    @property
    def throughput(self) -> float:
        """Bootstraps per paper-scale second."""
        return self.bootstraps / self.makespan if self.makespan > 0 else 0.0

    def speedup_over(self, other: "ScheduleResult") -> float:
        """How much faster this run is than ``other``."""
        if self.makespan <= 0:
            return float("inf")
        return other.makespan / self.makespan

    def summary(self) -> str:
        return (
            f"{self.scheduler:>12s}: {self.bootstraps:4d} bootstraps on "
            f"{self.n_processes} procs -> {self.makespan:8.2f} s "
            f"(SPE util {self.spe_utilization:5.1%}, "
            f"{self.offloads} offloads, {self.llp_invocations} LLP)"
        )
