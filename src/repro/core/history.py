"""MGPS's utilization history window (Section 5.4).

The scheduler keeps a sliding window whose length equals the number of
SPEs (8 off-loads of hysteresis).  For every off-load it records the
dispatch time; on each departure it derives ``U`` — how many discrete
tasks were off-loaded to SPEs while the departing task executed (i.e. the
degree of task-level parallelism the application exposed).  Every
``window``-th off-load the scheduler evaluates the smoothed ``U`` and
decides whether to activate loop-level parallelism (``U <= n_spes/2``)
and with what degree (``floor(n_spes / T)`` for ``T`` waiting tasks).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..obs.metrics import NULL_REGISTRY

__all__ = ["UtilizationHistory"]


class UtilizationHistory:
    """Sliding-window estimator of exposed task-level parallelism."""

    def __init__(
        self,
        n_spes: int,
        window: Optional[int] = None,
        metrics: Optional[object] = None,
        llp_threshold: Optional[int] = None,
    ) -> None:
        if n_spes < 1:
            raise ValueError("n_spes must be >= 1")
        self.n_spes = n_spes
        self._auto_window = window is None
        self.window = window if window is not None else n_spes
        if self.window < 1:
            raise ValueError("window must be >= 1")
        # LLP activates when U <= llp_threshold (the paper uses half the
        # SPEs).  0 disables the trigger entirely — a deliberately broken
        # configuration the health monitor is expected to flag.
        self._auto_threshold = llp_threshold is None
        self.llp_threshold = (
            n_spes // 2 if llp_threshold is None else llp_threshold
        )
        if self.llp_threshold < 0:
            raise ValueError("llp_threshold must be >= 0")
        self._dispatch_times: Deque[float] = deque(maxlen=4 * self.window)
        self._u_samples: Deque[int] = deque(maxlen=self.window)
        self.dispatches = 0
        self.departures = 0
        m = metrics if metrics is not None else NULL_REGISTRY
        self._m_u = m.histogram(
            "mgps.u_sample", buckets=tuple(range(1, 17)),
            help="per-departure exposed-TLP samples (U)",
        )
        self._m_u_estimate = m.gauge(
            "mgps.u_estimate", "rolling-window mean of U (rounded)"
        )
        self._m_window_util = m.gauge(
            "mgps.window_utilization", "window utilization U / n_spes"
        )

    # -- recording ---------------------------------------------------------
    def note_dispatch(self, time: float) -> bool:
        """Record an off-load; returns True when a decision point is due
        (every ``window``-th off-load)."""
        self._dispatch_times.append(time)
        self.dispatches += 1
        return self.dispatches % self.window == 0

    def note_departure(self, start: float, end: float) -> int:
        """Record a task completion; returns its ``U`` sample.

        ``U`` counts the departing task plus tasks dispatched *strictly
        after* it started (its own dispatch at ``start`` is not counted
        twice), capped at the SPE count.
        """
        if end < start:
            raise ValueError("departure interval is inverted")
        self.departures += 1
        u = 1 + sum(1 for t in self._dispatch_times if start < t <= end)
        u = max(1, min(u, self.n_spes))
        self._u_samples.append(u)
        self._m_u.observe(u)
        estimate = self.u_estimate
        self._m_u_estimate.set(estimate)
        self._m_window_util.set(estimate / self.n_spes)
        return u

    # -- decision inputs ---------------------------------------------------
    @property
    def u_estimate(self) -> int:
        """Current estimate of exposed TLP: the rounded mean U over the
        window.

        The mean (not the max) gives the hysteresis the paper asks of the
        8-off-load window: single long-running outlier tasks that overlap
        many dispatches must not flip the policy back and forth.
        """
        if not self._u_samples:
            return 0
        return int(round(sum(self._u_samples) / len(self._u_samples)))

    def llp_decision(self, waiting_tasks: int) -> Tuple[bool, int]:
        """(activate_llp, degree) per the Section 5.4 rule.

        LLP activates when the window shows ``U <= llp_threshold``
        (``n_spes // 2`` by default); the degree is ``floor(n_spes / T)``
        for ``T`` current task sources, clamped to [1, n_spes].
        """
        u = self.u_estimate
        if u == 0 or u > self.llp_threshold:
            return False, 1
        t = max(1, waiting_tasks)
        degree = max(1, min(self.n_spes, self.n_spes // t))
        return degree > 1, degree

    def resize(self, n_spes: int) -> None:
        """Re-baseline the window on a new live-SPE count.

        Called when SPEs die or are blacklisted: the hysteresis window
        and the LLP activation threshold follow the surviving capacity
        (unless they were pinned explicitly at construction), and the U
        cap drops so dead SPEs can no longer inflate the estimate.
        Existing samples are kept — re-clamped to the new capacity — so
        the estimator degrades smoothly instead of restarting cold.
        """
        if n_spes < 1:
            raise ValueError("n_spes must be >= 1")
        self.n_spes = n_spes
        if self._auto_window:
            self.window = n_spes
            self._dispatch_times = deque(
                self._dispatch_times, maxlen=4 * self.window
            )
            self._u_samples = deque(
                (min(u, n_spes) for u in self._u_samples),
                maxlen=self.window,
            )
        else:
            self._u_samples = deque(
                (min(u, n_spes) for u in self._u_samples),
                maxlen=self._u_samples.maxlen,
            )
        if self._auto_threshold:
            self.llp_threshold = n_spes // 2

    def reset(self) -> None:
        self._dispatch_times.clear()
        self._u_samples.clear()
