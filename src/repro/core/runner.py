"""The experiment driver: machine + workload + scheduler -> result.

This is the main entry point of the library::

    from repro import Workload, edtlp, mgps, run_experiment

    wl = Workload(bootstraps=16, tasks_per_bootstrap=1000)
    r1 = run_experiment(edtlp(), wl)
    r2 = run_experiment(mgps(), wl)
    print(r2.speedup_over(r1))

Determinism: the same (spec, workload, blade, seed) always produces the
same result; different schedulers see byte-identical workload traces.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..cell.machine import CellMachine
from ..cell.params import BladeParams, DEFAULT_BLADE
from ..mpi.master_worker import WorkDispenser
from ..mpi.process import mpi_worker
from ..sim.engine import Environment
from ..sim.trace import Tracer
from ..workloads.traces import Workload
from .results import ScheduleResult
from .runtime import ProcContext
from .schedulers import SchedulerSpec

__all__ = ["run_experiment", "run_sweep", "run_bsp_experiment"]


def _publish_run_metrics(
    metrics, env, machine, raw, scale, occupancy, sim_wall=0.0
) -> None:
    """End-of-run gauges: the whole-run facts the registry should carry.

    These are the numbers :mod:`repro.analysis.metrics` reads back
    instead of recomputing them from busy intervals.
    """
    from ..obs.metrics import labeled

    g = metrics.gauge
    g("run.raw_makespan_s", "simulated makespan, seconds").set(raw)
    g("run.makespan_s", "paper-scale makespan, seconds").set(raw * scale)
    g("run.spe_utilization").set(machine.spe_utilization(raw))
    g("run.n_spes", "SPEs on the simulated blade").set(machine.n_spes)
    g("run.ppe_occupancy").set(occupancy)
    g("ppe.context_switches", "PPE context switches over the run").set(
        sum(c.switches for c in machine.cores)
    )
    g("sim.events_processed").set(env.events_processed)
    # Throughput gauges for ``repro stats --fail-on``: events_processed
    # is deterministic; events-per-wall-second is wall-clock (never
    # compared across runs, gate with generous thresholds only).
    g("run.events_processed", "kernel events processed over the run").set(
        env.events_processed
    )
    g(
        "run.events_per_wall_second",
        "kernel events per wall-clock second (nondeterministic)",
    ).set(env.events_processed / sim_wall if sim_wall > 0 else 0.0)
    # Kernel-health gauges: calendar occupancy, Timeout free-list hit
    # rate, and the fraction of events drained without heap traffic.
    # All three are deterministic, so ``repro stats --fail-on
    # 'run.kernel.pool_hit_rate<0.9'`` is a stable guard; the HTML
    # report's #perf lane shows the same numbers.
    ks = env.kernel_stats()
    g("run.kernel.near_occupancy_p95",
      "p95 near-calendar occupancy sampled at refill").set(
        ks["near_occupancy_p95"])
    g("run.kernel.pool_hit_rate",
      "Timeout free-list hit rate over the run").set(ks["pool_hit_rate"])
    g("run.kernel.batch_advance_fraction",
      "fraction of events served from the O(1) calendar lanes").set(
        ks["batch_advance_fraction"])
    # Per-SPE utilization gauges: idle SPEs never appear in the trace
    # (no task records), so the starvation detector needs the full
    # per-actor picture from the registry.
    for s in machine.spes:
        g(
            labeled("spe.utilization", spe=s.name),
            "busy fraction of one SPE over the run",
        ).set(s.utilization(raw))


def _build_injector(env, machine, faults, tracer, metrics):
    """Turn a FaultPlan (or ready injector) into an installed injector."""
    if faults is None:
        return None
    from ..faults.injector import FaultInjector

    if not isinstance(faults, FaultInjector):
        faults = FaultInjector(
            env, machine, faults, tracer=tracer, metrics=metrics
        )
    faults.install()
    return faults


def run_experiment(
    spec: SchedulerSpec,
    workload: Workload,
    blade: BladeParams = DEFAULT_BLADE,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics=None,
    faults=None,
    tolerance=None,
    profiler=None,
) -> ScheduleResult:
    """Execute ``workload`` under ``spec`` on a fresh simulated blade.

    Pass a :class:`~repro.sim.trace.Tracer` to record per-SPE task events
    (for timelines; see :mod:`repro.analysis.timeline`) and/or a
    :class:`~repro.obs.metrics.MetricsRegistry` to collect scheduler
    decision metrics.  Neither affects scheduling decisions.

    Pass a :class:`~repro.obs.profile.Profiler` to measure the run's
    *wall-clock* hot path (event loop, off-load decisions, LLP model);
    profiling never changes simulated results or digests.

    ``faults`` accepts a :class:`~repro.faults.FaultPlan` (or an
    un-installed :class:`~repro.faults.FaultInjector`) to perturb the run;
    ``tolerance`` overrides the default
    :class:`~repro.faults.TolerancePolicy`.  With ``faults=None`` the
    fault machinery is entirely bypassed.
    """
    env = Environment(tracer=tracer, metrics=metrics, profiler=profiler)
    if profiler is not None and tracer is not None:
        tracer.profiler = profiler
    machine = CellMachine(env, blade)
    injector = _build_injector(env, machine, faults, tracer, metrics)
    runtime = spec.build(
        env, machine, tracer=tracer, metrics=metrics,
        faults=injector, tolerance=tolerance,
    )

    # A *pinned* policy (the Linux baseline and lookalikes) owns no SPE
    # pool: each process gets a per-CPU affinity and one pinned SPE.
    pinned = bool(getattr(runtime.policy, "pinned", False))
    n_procs = spec.default_processes(machine.n_spes, workload.bootstraps)
    if pinned and n_procs > machine.n_spes:
        raise ValueError(
            f"the Linux baseline pins one SPE per process: "
            f"{n_procs} processes > {machine.n_spes} SPEs"
        )

    dispenser = WorkDispenser(env, workload.bootstraps, n_procs)
    procs = []
    for rank in range(n_procs):
        cell_id = rank % len(machine.cores)
        core = machine.core_for(rank)
        local_index = rank // len(machine.cores)  # position among this cell's procs
        if pinned:
            # Linux 2.6 keeps per-CPU run queues: processes effectively
            # stick to one SMT context, producing Table 1's stair pattern.
            affinity = local_index % core.n_contexts
        else:
            affinity = None
        ctx = ProcContext(
            rank=rank,
            cell_id=cell_id,
            thread=core.thread(f"mpi{rank}", affinity=affinity),
        )
        if pinned:
            # Pin one SPE of the process's own Cell.
            own = [s for s in machine.spes if s.cell_id == cell_id]
            ctx.pinned_spe = own[local_index % len(own)]
        procs.append(
            env.process(
                mpi_worker(ctx, runtime, dispenser, workload),
                name=f"mpi{rank}",
            )
        )

    wall_start = time.perf_counter()
    if profiler is None:
        env.run_until_complete(env.all_of(procs))
    else:
        with profiler.section("run.simulate"):
            env.run_until_complete(env.all_of(procs))
        profiler.set_count("sim.events_processed", env.events_processed)
    sim_wall = time.perf_counter() - wall_start
    raw = env.now
    scale = workload.scale

    per_spe = tuple(s.utilization(raw) for s in machine.spes)
    occupancy = (
        sum(c.occupancy(raw) * c.n_contexts for c in machine.cores)
        / sum(c.n_contexts for c in machine.cores)
        if raw > 0
        else 0.0
    )
    st = runtime.stats
    if metrics is not None:
        if profiler is None:
            _publish_run_metrics(
                metrics, env, machine, raw, scale, occupancy, sim_wall
            )
        else:
            # Registry emit cost, measured where it actually happens.
            profiler.call(
                "obs.metrics.publish", _publish_run_metrics,
                metrics, env, machine, raw, scale, occupancy, sim_wall,
            )
        metrics.gauge(
            "run.live_spes", "SPEs still in service at run end"
        ).set(machine.pool.n_live)
    extras = {
        "granularity_throttled": float(runtime.granularity.throttled),
        "llp_join_idle": runtime.llp_model.total_join_idle,
        "llp_invocations_model": float(runtime.llp_model.invocations),
    }
    if injector is not None:
        extras.update(
            spe_kills=float(injector.kills_delivered),
            spe_blacklists=float(st.spe_blacklists),
            offload_retries=float(st.offload_retries),
            retry_fallbacks=float(st.retry_fallbacks),
            watchdog_timeouts=float(st.watchdog_timeouts),
            dma_errors=float(st.dma_errors),
            llp_recoveries=float(st.llp_recoveries),
            live_spes=float(machine.pool.n_live),
        )
    return ScheduleResult(
        scheduler=spec.name,
        bootstraps=workload.bootstraps,
        n_processes=n_procs,
        makespan=raw * scale,
        raw_makespan=raw,
        scale=scale,
        spe_utilization=machine.spe_utilization(raw),
        ppe_occupancy=occupancy,
        offloads=st.offloads,
        ppe_fallbacks=st.ppe_fallbacks,
        offload_waits=st.offload_waits,
        llp_invocations=st.llp_invocations,
        llp_mode_switches=st.llp_mode_switches,
        code_loads=st.code_loads,
        ppe_context_switches=sum(c.switches for c in machine.cores),
        per_spe_busy=per_spe,
        extras=extras,
        result_digest=runtime.ledger.run_digest(),
        bootstraps_completed=runtime.ledger.completed,
        bootstrap_digests=runtime.ledger.bootstrap_digests(),
        events_processed=env.events_processed,
    )


def run_bsp_experiment(
    spec: SchedulerSpec,
    workload,
    blade: BladeParams = DEFAULT_BLADE,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics=None,
    faults=None,
    tolerance=None,
    profiler=None,
) -> ScheduleResult:
    """Execute a :class:`~repro.workloads.coupled.BSPWorkload`.

    One software thread per BSP rank; iterations are separated by a
    global barrier.  Reported times are scaled by ``workload.scale``
    (1.0 by default: BSP workloads are simulated in full).
    """
    from ..mpi.process import bsp_worker
    from ..sim.resources import Barrier

    env = Environment(tracer=tracer, metrics=metrics, profiler=profiler)
    if profiler is not None and tracer is not None:
        tracer.profiler = profiler
    machine = CellMachine(env, blade)
    injector = _build_injector(env, machine, faults, tracer, metrics)
    runtime = spec.build(
        env, machine, tracer=tracer, metrics=metrics,
        faults=injector, tolerance=tolerance,
    )
    pinned = bool(getattr(runtime.policy, "pinned", False))
    if pinned and workload.n_processes > machine.n_spes:
        raise ValueError("the Linux baseline pins one SPE per process")

    barrier = Barrier(env, workload.n_processes)
    procs = []
    for rank in range(workload.n_processes):
        cell_id = rank % len(machine.cores)
        core = machine.core_for(rank)
        local_index = rank // len(machine.cores)
        affinity = (
            local_index % core.n_contexts if pinned else None
        )
        ctx = ProcContext(
            rank=rank,
            cell_id=cell_id,
            thread=core.thread(f"bsp{rank}", affinity=affinity),
        )
        if pinned:
            own = [s for s in machine.spes if s.cell_id == cell_id]
            ctx.pinned_spe = own[local_index % len(own)]
        procs.append(
            env.process(
                bsp_worker(ctx, runtime, workload, barrier),
                name=f"bsp{rank}",
            )
        )

    wall_start = time.perf_counter()
    if profiler is None:
        env.run_until_complete(env.all_of(procs))
    else:
        with profiler.section("run.simulate"):
            env.run_until_complete(env.all_of(procs))
        profiler.set_count("sim.events_processed", env.events_processed)
    sim_wall = time.perf_counter() - wall_start
    raw = env.now
    scale = workload.scale
    st = runtime.stats
    occupancy = (
        sum(c.occupancy(raw) * c.n_contexts for c in machine.cores)
        / sum(c.n_contexts for c in machine.cores)
        if raw > 0
        else 0.0
    )
    if metrics is not None:
        _publish_run_metrics(
            metrics, env, machine, raw, scale, occupancy, sim_wall
        )
    return ScheduleResult(
        scheduler=spec.name,
        bootstraps=workload.iterations,
        n_processes=workload.n_processes,
        makespan=raw * scale,
        raw_makespan=raw,
        scale=scale,
        spe_utilization=machine.spe_utilization(raw),
        ppe_occupancy=occupancy,
        offloads=st.offloads,
        ppe_fallbacks=st.ppe_fallbacks,
        offload_waits=st.offload_waits,
        llp_invocations=st.llp_invocations,
        llp_mode_switches=st.llp_mode_switches,
        code_loads=st.code_loads,
        ppe_context_switches=sum(c.switches for c in machine.cores),
        per_spe_busy=tuple(s.utilization(raw) for s in machine.spes),
        extras={
            "barrier_generations": float(workload.iterations),
            "granularity_throttled": float(runtime.granularity.throttled),
        },
        result_digest=runtime.ledger.run_digest(),
        bootstraps_completed=runtime.ledger.completed,
        bootstrap_digests=runtime.ledger.bootstrap_digests(),
        events_processed=env.events_processed,
    )


def run_sweep(
    spec: SchedulerSpec,
    bootstrap_counts: Sequence[int],
    tasks_per_bootstrap: int = 400,
    blade: BladeParams = DEFAULT_BLADE,
    seed: int = 0,
) -> List[ScheduleResult]:
    """Run ``spec`` over a series of bootstrap counts (one figure curve)."""
    out = []
    for b in bootstrap_counts:
        wl = Workload(
            bootstraps=b, tasks_per_bootstrap=tasks_per_bootstrap, seed=seed
        )
        out.append(run_experiment(spec, wl, blade=blade, seed=seed))
    return out
