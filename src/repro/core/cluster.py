"""Multi-blade cluster scaling (Section 5.5).

The paper's closing argument for MGPS: even though a 100-1000-bootstrap
analysis is task-rich on one Cell, scaling out *spreads* the bootstraps
— "running fewer bootstraps per Cell is better than clustering
bootstraps in as few Cells as possible.  With 100 bootstraps, MGPS with
multigrain (EDTLP-LLP) parallelism will outperform plain EDTLP if the
bootstraps are distributed between four or more dual-Cell blades."

A cluster here is N independent blades fed by a static block
distribution of the bootstrap bag (standard MPI practice across nodes);
each blade is simulated exactly as in :func:`run_experiment` and the
cluster makespan is the slowest blade's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..cell.params import BladeParams
from ..workloads.traces import Workload
from .results import ScheduleResult
from .runner import run_experiment
from .schedulers import SchedulerSpec

__all__ = ["ClusterResult", "distribute_bootstraps", "run_cluster_experiment"]


def distribute_bootstraps(total: int, n_blades: int) -> List[int]:
    """Block-distribute ``total`` bootstraps over ``n_blades`` blades.

    Earlier blades take the remainder (sizes differ by at most one).
    """
    if total < 1 or n_blades < 1:
        raise ValueError("need positive totals")
    if n_blades > total:
        raise ValueError("more blades than bootstraps")
    base, extra = divmod(total, n_blades)
    return [base + (1 if i < extra else 0) for i in range(n_blades)]


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run."""

    scheduler: str
    total_bootstraps: int
    n_blades: int
    makespan: float                      # slowest blade, paper-scale seconds
    per_blade: Tuple[ScheduleResult, ...]

    @property
    def mean_spe_utilization(self) -> float:
        return sum(r.spe_utilization for r in self.per_blade) / len(
            self.per_blade
        )

    @property
    def total_llp_invocations(self) -> int:
        return sum(r.llp_invocations for r in self.per_blade)


def run_cluster_experiment(
    spec: SchedulerSpec,
    total_bootstraps: int,
    n_blades: int,
    blade: BladeParams = BladeParams(n_cells=2),
    tasks_per_bootstrap: int = 200,
    seed: int = 0,
) -> ClusterResult:
    """Simulate ``total_bootstraps`` spread over ``n_blades`` blades.

    Blades run independently (inter-node MPI only hands out disjoint
    bootstrap blocks up front), so the cluster makespan is the maximum
    blade makespan.  Per-blade workloads draw distinct trace seeds so no
    two blades see identical jitter.
    """
    counts = distribute_bootstraps(total_bootstraps, n_blades)
    results: List[ScheduleResult] = []
    for blade_id, b in enumerate(counts):
        wl = Workload(
            bootstraps=b,
            tasks_per_bootstrap=tasks_per_bootstrap,
            seed=seed + 104729 * blade_id,
        )
        results.append(run_experiment(spec, wl, blade=blade, seed=seed))
    return ClusterResult(
        scheduler=spec.name,
        total_bootstraps=total_bootstraps,
        n_blades=n_blades,
        makespan=max(r.makespan for r in results),
        per_blade=tuple(results),
    )
