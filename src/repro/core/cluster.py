"""Multi-blade cluster scaling (Section 5.5).

The paper's closing argument for MGPS: even though a 100-1000-bootstrap
analysis is task-rich on one Cell, scaling out *spreads* the bootstraps
— "running fewer bootstraps per Cell is better than clustering
bootstraps in as few Cells as possible.  With 100 bootstraps, MGPS with
multigrain (EDTLP-LLP) parallelism will outperform plain EDTLP if the
bootstraps are distributed between four or more dual-Cell blades."

A cluster here is N independent blades fed by an offline partition of
the bootstrap bag; each blade is simulated exactly as in
:func:`run_experiment` and the cluster makespan is the slowest blade's.
The partition comes from the fleet dispatch-policy registry
(:mod:`repro.serve.dispatch`) so the offline driver and the online
serving layer agree on what "static-block", "work-stealing" etc. mean;
the default ``static-block`` reproduces the historical contiguous block
distribution bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..cell.params import BladeParams
from ..workloads.traces import Workload
from .results import ScheduleResult
from .runner import run_experiment
from .schedulers import SchedulerSpec

__all__ = ["ClusterResult", "run_cluster_experiment"]


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run."""

    scheduler: str
    total_bootstraps: int
    n_blades: int
    makespan: float                      # slowest blade, paper-scale seconds
    per_blade: Tuple[ScheduleResult, ...]
    dispatch: str = "static-block"

    @property
    def mean_spe_utilization(self) -> float:
        return sum(r.spe_utilization for r in self.per_blade) / len(
            self.per_blade
        )

    @property
    def total_llp_invocations(self) -> int:
        return sum(r.llp_invocations for r in self.per_blade)


def run_cluster_experiment(
    spec: SchedulerSpec,
    total_bootstraps: int,
    n_blades: int,
    blade: BladeParams = BladeParams(n_cells=2),
    tasks_per_bootstrap: int = 200,
    seed: int = 0,
    dispatch: str = "static-block",
) -> ClusterResult:
    """Simulate ``total_bootstraps`` spread over ``n_blades`` blades.

    Blades run independently (inter-node MPI only hands out disjoint
    bootstrap blocks up front), so the cluster makespan is the maximum
    blade makespan.  Per-blade workloads draw distinct trace seeds so no
    two blades see identical jitter.

    ``dispatch`` selects the partition from the fleet dispatch registry
    (see :func:`repro.serve.dispatch.available_dispatch_policies`); the
    default ``static-block`` is the historical contiguous layout.
    """
    # Imported lazily: repro.core loads before repro.serve during package
    # initialization, and serve's fleet module imports back into core.
    from ..serve.dispatch import resolve_dispatch

    policy = resolve_dispatch(dispatch).factory()
    blocks = policy.partition(total_bootstraps, n_blades)
    results: List[ScheduleResult] = []
    for blade_id, block in enumerate(blocks):
        wl = Workload(
            bootstraps=len(block),
            tasks_per_bootstrap=tasks_per_bootstrap,
            seed=seed + 104729 * blade_id,
        )
        results.append(run_experiment(spec, wl, blade=blade, seed=seed))
    return ClusterResult(
        scheduler=spec.name,
        total_bootstraps=total_bootstraps,
        n_blades=n_blades,
        makespan=max(r.makespan for r in results),
        per_blade=tuple(results),
        dispatch=dispatch,
    )
