"""The off-load granularity test (Section 5.2).

The EDTLP scheduler off-loads a task only when

    t_spe + t_code + 2 * t_comm  <  t_ppe

Since task lengths are unknown a priori, the scheduler *optimistically*
off-loads the first invocation of each user-annotated function, measures
it, and throttles subsequent off-loads of functions that fail the test
(they execute on the PPE instead, using the PPE version that the original
MPI code already contains).  ``t_code`` is zero for every execution after
the first because the runtime preloads and keeps SPE images resident.

Two robustness details beyond the paper's one-line description:

* the test compares per-function EWMAs on both sides — individual
  invocations of the same function vary widely with traversal size, and
  comparing one noisy sample against another flaps the decision;
* throttled functions are *re-probed* every ``reprobe_interval`` requests
  — otherwise a single slow SPE measurement (e.g. taken under transient
  bus contention) would throttle a function forever, because a throttled
  function never gets re-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..obs.metrics import NULL_REGISTRY
from ..workloads.taskspec import TaskSpec

__all__ = ["GranularityGovernor", "OffloadDecision"]


@dataclass(frozen=True)
class OffloadDecision:
    """Outcome of the granularity test for one off-load request."""

    offload: bool
    reason: str  # "disabled" | "optimistic" | "pass" | "fail" | "reprobe"


class GranularityGovernor:
    """Per-function optimistic off-load with measured-time throttling."""

    def __init__(
        self,
        t_comm: float,
        enabled: bool = True,
        ewma_alpha: float = 0.02,
        reprobe_interval: int = 30,
        metrics: Optional[object] = None,
    ) -> None:
        if t_comm < 0:
            raise ValueError("t_comm must be non-negative")
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        if reprobe_interval < 1:
            raise ValueError("reprobe_interval must be >= 1")
        self.t_comm = t_comm
        self.enabled = enabled
        self.ewma_alpha = ewma_alpha
        self.reprobe_interval = reprobe_interval
        self._measured_spe: Dict[str, float] = {}
        self._measured_ppe: Dict[str, float] = {}
        self._throttle_streak: Dict[str, int] = {}
        self._last_decision: Dict[str, bool] = {}
        self.flips: Dict[str, int] = {}
        self.throttled = 0
        self.offloaded = 0
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        m = self._metrics
        self._m_accept = m.counter(
            "granularity.accept", "off-load requests that passed the test"
        )
        self._m_reject = m.counter(
            "granularity.reject", "off-load requests throttled to the PPE"
        )
        self._m_flips = m.counter(
            "granularity.flips",
            "accept<->reject decision reversals across all functions",
        )
        self._m_reason = {
            reason: m.counter(f"granularity.decision.{reason}")
            for reason in ("disabled", "optimistic", "pass", "fail", "reprobe")
        }

    def _note(self, function: str, decision: OffloadDecision) -> OffloadDecision:
        (self._m_accept if decision.offload else self._m_reject).inc()
        self._m_reason[decision.reason].inc()
        # Flip tracking: a stable function decides the same way every
        # time; accept->reject churn (measurement noise, a borderline
        # kernel) is the health monitor's granularity-churn signal.
        prev = self._last_decision.get(function)
        if prev is not None and prev != decision.offload:
            self.flips[function] = self.flips.get(function, 0) + 1
            self._m_flips.inc()
            self._metrics.counter(
                f"granularity.flips.{function}",
                "accept<->reject decision reversals for one function",
            ).inc()
        self._last_decision[function] = decision.offload
        return decision

    def decide(self, task: TaskSpec, t_code: float = 0.0) -> OffloadDecision:
        """Should ``task`` be off-loaded?

        ``t_code`` is the code-shipping cost the off-load would pay now
        (non-zero only when the needed image is not resident).
        """
        # Track the PPE-side expectation from every request we see.
        self.record_ppe(task.function, task.ppe_time)
        if not self.enabled:
            self.offloaded += 1
            return self._note(task.function, OffloadDecision(True, "disabled"))
        t_spe = self._measured_spe.get(task.function)
        if t_spe is None:
            self.offloaded += 1
            return self._note(task.function, OffloadDecision(True, "optimistic"))
        t_ppe = self._measured_ppe[task.function]
        if t_spe + t_code + 2.0 * self.t_comm < t_ppe:
            self.offloaded += 1
            self._throttle_streak[task.function] = 0
            return self._note(task.function, OffloadDecision(True, "pass"))
        streak = self._throttle_streak.get(task.function, 0) + 1
        if streak >= self.reprobe_interval:
            # Refresh the SPE measurement rather than throttling forever.
            self._throttle_streak[task.function] = 0
            self.offloaded += 1
            return self._note(task.function, OffloadDecision(True, "reprobe"))
        self._throttle_streak[task.function] = streak
        self.throttled += 1
        return self._note(task.function, OffloadDecision(False, "fail"))

    def record_spe(self, function: str, duration: float) -> None:
        """Feed back a measured SPE execution time."""
        prev = self._measured_spe.get(function)
        a = self.ewma_alpha
        self._measured_spe[function] = (
            duration if prev is None else (1 - a) * prev + a * duration
        )

    def record_ppe(self, function: str, duration: float) -> None:
        """Feed back a measured (or requested) PPE execution time."""
        prev = self._measured_ppe.get(function)
        a = self.ewma_alpha
        self._measured_ppe[function] = (
            duration if prev is None else (1 - a) * prev + a * duration
        )

    def measured_spe(self, function: str) -> float:
        return self._measured_spe[function]

    def measured_ppe(self, function: str) -> float:
        return self._measured_ppe[function]
