"""Oracle scheduler selection.

Section 5.4 compares MGPS against "the static hybrid (EDTLP-LLP)
scheduler, which uses an oracle for the future to guide decisions
between EDTLP and EDTLP-LLP" — i.e. the best static scheme chosen with
perfect knowledge of the workload.  :class:`OracleSelector` implements
that oracle by exhaustively evaluating candidate schedulers on the given
workload; MGPS's figure of merit is how close it gets *without* the
oracle (see ``tests/test_paper_claims.py`` and the Figure 8 bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cell.params import BladeParams, DEFAULT_BLADE
from ..workloads.traces import Workload
from .results import ScheduleResult
from .runner import run_experiment
from .schedulers import SchedulerSpec, edtlp, static_hybrid

__all__ = ["OracleChoice", "OracleSelector", "default_candidates"]


def default_candidates(n_spes: int = 8) -> List[SchedulerSpec]:
    """EDTLP plus every static hybrid degree that divides the machine."""
    specs: List[SchedulerSpec] = [edtlp()]
    degree = 2
    while degree <= n_spes:
        specs.append(static_hybrid(degree))
        degree *= 2
    return specs


@dataclass(frozen=True)
class OracleChoice:
    """The oracle's verdict for one workload."""

    best: ScheduleResult
    all_results: Tuple[ScheduleResult, ...]

    @property
    def best_name(self) -> str:
        return self.best.scheduler

    def margin_over(self, name: str) -> float:
        """How much slower scheduler ``name`` is than the oracle pick."""
        for r in self.all_results:
            if r.scheduler == name:
                return r.makespan / self.best.makespan
        raise KeyError(f"no candidate named {name!r}")


class OracleSelector:
    """Chooses the best static scheduler by trying all of them."""

    def __init__(
        self,
        candidates: Optional[Sequence[SchedulerSpec]] = None,
        blade: BladeParams = DEFAULT_BLADE,
        seed: int = 0,
    ) -> None:
        self.blade = blade
        self.seed = seed
        self.candidates = (
            list(candidates)
            if candidates is not None
            else default_candidates(blade.total_spes)
        )
        if not self.candidates:
            raise ValueError("oracle needs at least one candidate")

    def choose(self, workload: Workload) -> OracleChoice:
        """Run every candidate on ``workload`` and return the verdict."""
        results = tuple(
            run_experiment(spec, workload, blade=self.blade, seed=self.seed)
            for spec in self.candidates
        )
        best = min(results, key=lambda r: r.makespan)
        return OracleChoice(best=best, all_results=results)

    def sweep(
        self, bootstrap_counts: Sequence[int], tasks_per_bootstrap: int = 300
    ) -> Dict[int, OracleChoice]:
        """Oracle verdicts across a bootstrap-count sweep."""
        out: Dict[int, OracleChoice] = {}
        for b in bootstrap_counts:
            wl = Workload(
                bootstraps=b,
                tasks_per_bootstrap=tasks_per_bootstrap,
                seed=self.seed,
            )
            out[b] = self.choose(wl)
        return out
