"""The paper's contribution: EDTLP, LLP and MGPS scheduling on Cell."""

from .cluster import ClusterResult, run_cluster_experiment
from .granularity import GranularityGovernor, OffloadDecision
from .history import UtilizationHistory
from .llp import LLPConfig, LLPInvocation, LoopParallelModel, split_iterations
from .oracle import OracleChoice, OracleSelector, default_candidates
from .results import ScheduleResult
from .runner import run_bsp_experiment, run_experiment, run_sweep
from .runtime import (
    EDTLPRuntime,
    LinuxRuntime,
    MGPSRuntime,
    OffloadRuntime,
    ProcContext,
    RuntimeStats,
    StaticHybridRuntime,
)
from .schedulers import SchedulerSpec, edtlp, linux, mgps, static_hybrid

__all__ = [
    "SchedulerSpec",
    "linux",
    "edtlp",
    "static_hybrid",
    "mgps",
    "run_experiment",
    "run_sweep",
    "run_bsp_experiment",
    "run_cluster_experiment",
    "ClusterResult",
    "ScheduleResult",
    "OffloadRuntime",
    "LinuxRuntime",
    "EDTLPRuntime",
    "StaticHybridRuntime",
    "MGPSRuntime",
    "ProcContext",
    "RuntimeStats",
    "GranularityGovernor",
    "OffloadDecision",
    "UtilizationHistory",
    "LLPConfig",
    "LLPInvocation",
    "LoopParallelModel",
    "split_iterations",
    "OracleSelector",
    "OracleChoice",
    "default_candidates",
]
