"""Off-load runtimes: the mechanisms beneath every scheduling policy.

Four runtimes share one substrate (the :class:`~repro.cell.CellMachine`)
and differ only in policy, so measured differences are attributable to
scheduling alone:

* :class:`LinuxRuntime` — the baseline: each MPI process owns one pinned
  SPE and **spins** on off-load completion.  Because the spin (~96 us) is
  far shorter than the OS quantum (10 ms), the OS never switches at
  off-load points and at most two off-loads are in flight (Section 5.2,
  Figure 2b, Table 1 right column).
* :class:`EDTLPRuntime` — event-driven task-level parallelism: processes
  *block* at off-load points (a voluntary context switch), so the PPE
  dispatches for every runnable MPI process and all SPEs stay fed.
* :class:`StaticHybridRuntime` — EDTLP plus always-on loop-level
  parallelism with a fixed degree (the EDTLP-LLP scheme of Figure 7).
* :class:`MGPSRuntime` — the paper's contribution: EDTLP extended with
  the feedback-guided LLP trigger/throttle of Section 5.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set

from ..cell.machine import CellMachine
from ..cell.smt import CoreThread
from ..cell.spe import SPE
from ..faults.tolerance import TolerancePolicy
from ..obs.metrics import NULL_REGISTRY
from ..obs.spans import SpanRecorder
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.trace import Tracer
from ..workloads.taskspec import BootstrapTrace, TaskSpec
from .granularity import GranularityGovernor
from .history import UtilizationHistory
from .llp import LLPConfig, LoopParallelModel
from .results import ResultLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

__all__ = [
    "ProcContext",
    "RuntimeStats",
    "OffloadRuntime",
    "LinuxRuntime",
    "EDTLPRuntime",
    "StaticHybridRuntime",
    "MGPSRuntime",
]


@dataclass
class ProcContext:
    """Identity of one MPI process on the machine."""

    rank: int
    cell_id: int
    thread: CoreThread
    pinned_spe: Optional[SPE] = None


@dataclass
class RuntimeStats:
    """Counters accumulated by a runtime over one run."""

    offloads: int = 0
    ppe_fallbacks: int = 0
    offload_waits: int = 0
    llp_invocations: int = 0
    llp_mode_switches: int = 0
    code_loads: int = 0
    llp_worker_seconds: float = 0.0
    bootstraps_done: int = 0
    data_hits: int = 0
    data_misses: int = 0
    data_bytes_transferred: int = 0
    # Fault tolerance (all zero on a fault-free run):
    offload_retries: int = 0      # failed SPE attempts that were retried
    retry_fallbacks: int = 0      # tasks that fell back to the PPE after
                                  # exhausting SPE attempts (or losing all SPEs)
    watchdog_timeouts: int = 0    # attempts abandoned by the watchdog
    dma_errors: int = 0           # DMA errors absorbed by MFC re-issues
    llp_recoveries: int = 0       # LLP chunks reclaimed from dead workers
    spe_blacklists: int = 0       # SPEs retired after consecutive failures


class OffloadRuntime:
    """Base: shared off-load mechanics (dispatch, code, execute, signal)."""

    name = "base"

    def __init__(
        self,
        env: Environment,
        machine: CellMachine,
        granularity_enabled: bool = True,
        optimized: bool = True,
        llp_config: Optional[LLPConfig] = None,
        offload_enabled: bool = True,
        tracer: Optional[Tracer] = None,
        locality_aware: bool = False,
        metrics: Optional[object] = None,
        faults: Optional["FaultInjector"] = None,
        tolerance: Optional[TolerancePolicy] = None,
    ) -> None:
        self.env = env
        self.machine = machine
        self.cell = machine.cell_params
        self.optimized = optimized
        self.offload_enabled = offload_enabled
        self.locality_aware = locality_aware
        if tracer is None:
            tracer = getattr(env, "tracer", None)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if metrics is None:
            metrics = getattr(env, "metrics", None)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.spans = SpanRecorder(self.tracer, env)
        self.granularity = GranularityGovernor(
            t_comm=self.cell.ppe_spe_signal, enabled=granularity_enabled,
            metrics=self.metrics,
        )
        self.llp_model = LoopParallelModel(
            self.cell, llp_config, metrics=self.metrics
        )
        self.stats = RuntimeStats()
        self._active_sources: Set[int] = set()
        # Fault tolerance: ``faults`` is the injector realizing a plan on
        # this machine (None = fault-free fast path, byte-identical to the
        # pre-fault-tolerance runtime); ``tolerance`` configures the
        # retry/watchdog/blacklist/fallback machinery.
        self.faults = faults
        self.tolerance = tolerance or TolerancePolicy()
        self._consec_failures: Dict[str, int] = {}
        if faults is not None:
            faults.add_listener(self._on_capacity_change)
        # Application-result ledger: one chained digest per bootstrap,
        # recorded by the worker processes via note_task_complete.  The
        # run digest is the bit-identity witness of the fault-tolerance
        # invariant (pure wall-clock cost; simulated time is untouched).
        self.ledger = ResultLedger()
        self._current_bootstrap: Dict[int, int] = {}
        m = self.metrics
        self._m_offloads = m.counter("runtime.offloads", "SPE off-load dispatches")
        self._m_fallbacks = m.counter(
            "runtime.ppe_fallbacks", "throttled tasks executed on the PPE"
        )
        self._m_waits = m.counter(
            "runtime.offload_waits", "off-loads that blocked for a free SPE"
        )
        self._m_code_loads = m.counter(
            "runtime.code_loads", "SPE code-image (re)loads"
        )
        self._m_data_hits = m.counter("runtime.data_hits")
        self._m_data_misses = m.counter("runtime.data_misses")
        self._m_offload_latency = m.histogram(
            "runtime.offload_latency_us",
            help="dispatch-to-completion latency of SPE off-loads, us",
        )
        self._m_retries = m.counter(
            "runtime.offload_retries", "failed SPE attempts that were retried"
        )
        self._m_retry_fallbacks = m.counter(
            "runtime.retry_fallbacks",
            "tasks executed on the PPE after exhausting SPE attempts",
        )
        self._m_watchdog = m.counter(
            "runtime.watchdog_timeouts", "off-load attempts abandoned by the watchdog"
        )
        self._m_llp_recoveries = m.counter(
            "runtime.llp_recoveries", "LLP chunks reclaimed from dead workers"
        )
        self._m_blacklists = m.counter(
            "runtime.spe_blacklists", "SPEs retired after consecutive failures"
        )

    # -- bookkeeping hooks ----------------------------------------------------
    def note_bootstrap_start(self, ctx: ProcContext, index: int) -> None:
        self._active_sources.add(ctx.rank)
        self._current_bootstrap[ctx.rank] = index
        self.ledger.start(ctx.rank, index)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "proc", f"mpi{ctx.rank}", "span_begin",
                name=f"bootstrap[{index}]", depth=0,
            )

    def note_bootstrap_end(self, ctx: ProcContext, index: int) -> None:
        self._active_sources.discard(ctx.rank)
        self.stats.bootstraps_done += 1
        self.ledger.finish(ctx.rank, index)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "proc", f"mpi{ctx.rank}", "span_end",
                name=f"bootstrap[{index}]", depth=0,
            )

    def note_task_complete(self, ctx: ProcContext, task: TaskSpec) -> None:
        """Fold one completed task into its bootstrap's result chain.

        Called by the worker process after ``offload`` returns.  The
        payload is the task's *content* — identical whether the task ran
        on an SPE, after retries, or on the PPE — so the run digest is
        invariant under any fault plan that lets the run complete.
        """
        index = self._current_bootstrap.get(ctx.rank)
        if index is None:
            return  # task outside a bootstrap (direct runtime tests)
        self.ledger.record(
            ctx.rank, index,
            f"{task.function}|{task.spe_time!r}|{task.ppe_time!r}"
            f"|{task.naive_spe_time!r}|{task.working_set}|{task.data_key}",
        )

    @property
    def active_sources(self) -> int:
        return len(self._active_sources)

    def current_sources(self, include_dispatcher: bool = False) -> int:
        """Task sources with work *right now*: distinct owners of busy
        SPEs plus processes queued for an SPE.  This is the paper's "T,
        the number of tasks waiting for off-loading" at a decision point
        (bounded above by the processes still inside a bootstrap/phase).

        ``include_dispatcher`` adds the process performing the current
        off-load, whose task is not yet marked busy at sampling time.
        """
        owners = {
            s.owner for s in self.machine.spes if s.busy and s.owner
        }
        t = len(owners) + self.machine.pool.n_waiting
        if include_dispatcher:
            t += 1
        if self._active_sources:
            t = min(max(t, 1), len(self._active_sources))
        return max(1, t)

    # -- policy hooks -----------------------------------------------------------
    def llp_degree(self, ctx: ProcContext) -> int:
        """Desired SPEs per off-loaded task (1 = no loop parallelism)."""
        return 1

    def on_dispatch(self, time: float) -> None:
        """Called at every off-load dispatch."""

    def on_departure(self, start: float, end: float) -> None:
        """Called at every off-load completion."""

    def _on_capacity_change(self) -> None:
        """Called after every SPE kill or blacklist (live set shrank)."""

    # -- mechanics ------------------------------------------------------------
    def _exec_time(self, task: TaskSpec) -> float:
        return task.spe_time if self.optimized else task.naive_spe_time

    def _spe_exec(
        self,
        ctx: ProcContext,
        spe: SPE,
        workers: List[SPE],
        task: TaskSpec,
        trace: BootstrapTrace,
        release: bool,
    ) -> Generator[Event, None, None]:
        """Run ``task`` on ``spe`` (with optional LLP workers); a process."""
        env = self.env
        # PPE -> SPE start signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))
        # Make the right code image resident (t_code; Section 5.4 notes the
        # replacement cost when toggling between serial and LLP variants).
        image = trace.llp_image if workers else trace.code_image
        t_load = spe.load_code(image)
        for w in workers:
            t_load = max(t_load, w.load_code(trace.llp_image))
        if t_load > 0:
            self.stats.code_loads += 1
            self._m_code_loads.inc()
            yield env.timeout(t_load)

        # Stage the task's working set (memory-aware extension): a hit
        # costs nothing, a miss pays the DMA of the data set.
        if task.working_set > 0 and task.data_key is not None:
            moved = spe.load_data(task.data_key, task.working_set)
            if moved:
                self.stats.data_misses += 1
                self.stats.data_bytes_transferred += moved
                self._m_data_misses.inc()
                yield env.timeout(spe.mfc.transfer_time(moved))
            else:
                self.stats.data_hits += 1
                self._m_data_hits.inc()

        if workers:
            cross = sum(1 for w in workers if w.cell_id != spe.cell_id)
            inv = self.llp_model.invoke(task, 1 + len(workers), cross)
            duration = inv.duration
            self.stats.llp_invocations += 1
            self.stats.llp_worker_seconds += duration * len(workers)
            if self.tracer.enabled:
                # Per-invocation adaptation record: the join-idle series
                # per (function, k) is what the health monitor checks for
                # adaptive-unbalancing convergence, and what the HTML
                # report plots as the chunk-adaptation curve.
                self.tracer.emit(
                    env.now, "llp", spe.name, "llp_invoke",
                    function=task.function, k=inv.k,
                    join_idle_us=inv.join_idle * 1e6,
                    master_fraction=inv.master_fraction,
                    chunks=inv.chunks,
                )
        else:
            duration = self._exec_time(task)
        owner = f"p{ctx.rank}"
        # Shared XDR / EIB contention: busy SPEs of *other* tasks on the
        # same Cell slow this one (each Cell has its own EIB and memory
        # channel; LLP workers of this task are already priced by the
        # loop model).  Superlinear: the memory controller queues.
        busy_others = sum(
            1
            for s in self.machine.spes
            if s.busy and s.cell_id == spe.cell_id and s.owner != owner
        )
        base_duration = duration
        duration *= 1.0 + min(
            self.cell.memory_contention_cap,
            self.cell.memory_contention_quadratic * busy_others**2,
        )

        for w in workers:
            w.mark_busy(owner)
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_start",
                proc=ctx.rank, function=task.function, duration=duration,
                workers=tuple(w.name for w in workers),
            )
            for w in workers:
                self.tracer.emit(
                    env.now, "spe", w.name, "task_start",
                    proc=ctx.rank, function=task.function, role="worker",
                )
        try:
            yield from spe.occupy(duration, owner)
        finally:
            for w in workers:
                w.mark_idle()
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_end",
                proc=ctx.rank, function=task.function,
            )
            for w in workers:
                self.tracer.emit(
                    env.now, "spe", w.name, "task_end",
                    proc=ctx.rank, function=task.function, role="worker",
                )
        if release:
            for w in workers:
                self.machine.pool.release(w)
            self.machine.pool.release(spe)
        # Granularity feedback uses the *inherent* kernel time: the test
        # judges whether a function is worth off-loading at all, not the
        # instantaneous bus load (which affects the PPE path too).
        self.granularity.record_spe(task.function, base_duration)
        # SPE -> PPE completion signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))

    def _ppe_fallback(
        self, ctx: ProcContext, task: TaskSpec
    ) -> Generator[Event, None, None]:
        """Execute the task's PPE version in place (throttled off-load)."""
        self.stats.ppe_fallbacks += 1
        self._m_fallbacks.inc()
        self.tracer.emit(
            self.env.now, "ppe", f"mpi{ctx.rank}", "ppe_fallback",
            function=task.function, duration=task.ppe_time,
        )
        yield ctx.thread.run(task.ppe_time)
        self.granularity.record_ppe(task.function, task.ppe_time)

    def offload(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace
    ) -> Generator[Event, None, None]:
        raise NotImplementedError

    # -- fault-tolerant mechanics ---------------------------------------------
    def _note_spe_failure(self, spe: SPE) -> None:
        """Track consecutive failures; blacklist the SPE past the limit."""
        n = self._consec_failures.get(spe.name, 0) + 1
        self._consec_failures[spe.name] = n
        if (
            n >= self.tolerance.blacklist_after
            and spe.alive
            and not spe.blacklisted
        ):
            spe.blacklisted = True
            spe.fail_time = self.env.now
            self.machine.pool.mark_out_of_service(spe)
            self.stats.spe_blacklists += 1
            self._m_blacklists.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now, "fault", spe.name, "spe_blacklist",
                    consecutive_failures=n,
                    live_spes=self.machine.pool.n_live,
                )
            self._on_capacity_change()

    def _note_spe_success(self, spe: SPE) -> None:
        self._consec_failures.pop(spe.name, None)

    def _expected_attempt_time(self, task: TaskSpec) -> float:
        """Expected duration of one attempt, for the watchdog deadline.

        Conservative: the serial SPE time plus maximum memory contention.
        A healthy attempt (even an LLP one) finishes well inside it; only
        a pathologically slow SPE or a lost completion signal trips it.
        """
        return self._exec_time(task) * (1.0 + self.cell.memory_contention_cap)

    def _faulty_dma_time(self, spe: SPE, base: float) -> "tuple[float, bool]":
        """(time to pay, succeeded) for one DMA under the fault plan.

        Mirrors :meth:`~repro.cell.mfc.MFC.transfer_time_with_retries`
        for a transfer whose clean duration is already known: each error
        costs ``dma_retry_penalty`` extra transfers; more errors than the
        policy absorbs means the transfer is abandoned.
        """
        errors = self.faults.dma_errors(spe, self.tolerance.max_dma_retries)
        if errors == 0:
            return base, True
        self.stats.dma_errors += errors
        t = base * (1.0 + self.faults.plan.dma_retry_penalty * errors)
        return t, errors <= self.tolerance.max_dma_retries

    def _spe_exec_faulty(
        self,
        ctx: ProcContext,
        spe: SPE,
        workers: List[SPE],
        task: TaskSpec,
        trace: BootstrapTrace,
        release: bool,
    ) -> Generator[Event, None, str]:
        """Fault-aware twin of :meth:`_spe_exec`; a process.

        Returns a status string as the process value instead of raising
        (the simulation runs strict, so an exception here would abort the
        whole run): ``"ok"``, ``"offload-fail"`` (transient dispatch
        loss), ``"dma-fail"`` (transfer abandoned), ``"spe-dead"``
        (master died before or during execution).  Always returns its
        resources — released here, not by the dispatching process, so a
        watchdog-abandoned attempt cleans up after itself when it
        eventually finishes.
        """
        env = self.env
        faults = self.faults
        policy = self.tolerance

        def _give_back() -> None:
            if release:
                for w in workers:
                    self.machine.pool.release(w)
                self.machine.pool.release(spe)

        death = faults.death_time(spe)
        if death <= env.now or not spe.in_service:
            _give_back()
            return "spe-dead"

        # PPE -> SPE start signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))
        # Transient dispatch loss: the descriptor/signal never arrives.
        if faults.offload_fails(spe):
            _give_back()
            return "offload-fail"

        image = trace.llp_image if workers else trace.code_image
        t_load = spe.load_code(image)
        for w in workers:
            t_load = max(t_load, w.load_code(trace.llp_image))
        if t_load > 0:
            self.stats.code_loads += 1
            self._m_code_loads.inc()
            t_load, ok = self._faulty_dma_time(spe, t_load)
            yield env.timeout(t_load)
            if not ok:
                _give_back()
                return "dma-fail"

        if task.working_set > 0 and task.data_key is not None:
            moved = spe.load_data(task.data_key, task.working_set)
            if moved:
                self.stats.data_misses += 1
                self.stats.data_bytes_transferred += moved
                self._m_data_misses.inc()
                errors = faults.dma_errors(spe, policy.max_dma_retries)
                if errors:
                    self.stats.dma_errors += errors
                yield env.timeout(
                    spe.mfc.transfer_time_with_retries(
                        moved,
                        n_errors=errors,
                        retry_penalty=faults.plan.dma_retry_penalty,
                    )
                )
                if errors > policy.max_dma_retries:
                    _give_back()
                    return "dma-fail"
            else:
                self.stats.data_hits += 1
                self._m_data_hits.inc()

        if workers:
            cross = sum(1 for w in workers if w.cell_id != spe.cell_id)
            inv = self.llp_model.invoke(task, 1 + len(workers), cross)
            duration = inv.duration
            self.stats.llp_invocations += 1
            self.stats.llp_worker_seconds += duration * len(workers)
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "llp", spe.name, "llp_invoke",
                    function=task.function, k=inv.k,
                    join_idle_us=inv.join_idle * 1e6,
                    master_fraction=inv.master_fraction,
                    chunks=inv.chunks,
                )
            # Mid-loop recovery: a worker that dies inside the busy
            # window forfeits the unexecuted tail of its chunk; the
            # master reclaims and re-executes those iterations serially
            # after the join (plus a signal to detect the loss).
            if task.loop is not None:
                t_iter = (
                    task.spe_time * task.loop.coverage / task.loop.iterations
                )
                for j, w in enumerate(workers):
                    w_death = faults.death_time(w)
                    if w_death >= env.now + duration:
                        continue
                    frac = (
                        1.0
                        if duration <= 0
                        else (env.now + duration - max(w_death, env.now))
                        / duration
                    )
                    chunk = inv.chunks[j + 1] if j + 1 < len(inv.chunks) else 0
                    reclaimed = int(math.ceil(chunk * min(1.0, frac)))
                    extra = reclaimed * t_iter + self.machine.spe_signal_latency(
                        w, spe
                    )
                    duration += extra
                    self.stats.llp_recoveries += 1
                    self._m_llp_recoveries.inc()
                    if self.tracer.enabled:
                        self.tracer.emit(
                            env.now, "fault", spe.name, "llp_recovery",
                            worker=w.name, died_at=w_death,
                            reclaimed_iterations=reclaimed,
                            extra_seconds=extra,
                        )
        else:
            duration = self._exec_time(task)

        owner = f"p{ctx.rank}"
        busy_others = sum(
            1
            for s in self.machine.spes
            if s.busy and s.cell_id == spe.cell_id and s.owner != owner
        )
        base_duration = duration
        duration *= 1.0 + min(
            self.cell.memory_contention_cap,
            self.cell.memory_contention_quadratic * busy_others**2,
        )
        # Slow-SPE noise: multiplicative service-time perturbation.
        duration *= faults.service_factor(spe)

        for w in workers:
            w.mark_busy(owner)
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_start",
                proc=ctx.rank, function=task.function, duration=duration,
                workers=tuple(w.name for w in workers),
            )
        # Master death inside the busy window loses the task: occupy the
        # SPE only until its planned death, then report the failure.
        if death < env.now + duration:
            avail = max(0.0, death - env.now)
            spe.mark_busy(owner)
            try:
                if avail > 0:
                    yield env.timeout(avail)
            finally:
                spe.mark_idle()
                for w in workers:
                    w.mark_idle()
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "spe", spe.name, "task_abort",
                    proc=ctx.rank, function=task.function, reason="spe_kill",
                )
            _give_back()
            return "spe-dead"

        try:
            yield from spe.occupy(duration, owner)
        finally:
            for w in workers:
                w.mark_idle()
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_end",
                proc=ctx.rank, function=task.function,
            )
        _give_back()
        self.granularity.record_spe(task.function, base_duration)
        # SPE -> PPE completion signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))
        return "ok"


class LinuxRuntime(OffloadRuntime):
    """Naive MPI mapping: pinned SPEs, spin-wait, OS time slicing."""

    name = "linux"

    def offload(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace
    ) -> Generator[Event, None, None]:
        if ctx.pinned_spe is None:
            raise RuntimeError(f"process {ctx.rank} has no pinned SPE")
        decision = self.granularity.decide(task)
        if not self.offload_enabled or not decision.offload:
            yield from self._ppe_fallback(ctx, task)
            return
        if self.faults is not None:
            yield from self._offload_tolerant(ctx, task, trace, decision)
            return
        with self.spans.span("proc", f"mpi{ctx.rank}", "offload") as sp:
            if self.tracer.enabled:
                sp.set(function=task.function, reason=decision.reason)
            # The process itself writes the task descriptor to the SPE mailbox.
            yield ctx.thread.run(self.cell.dispatch_overhead)
            self.stats.offloads += 1
            self._m_offloads.inc()
            start = self.env.now
            self.on_dispatch(start)
            done = self.env.process(
                self._spe_exec(ctx, ctx.pinned_spe, [], task, trace,
                               release=False),
                name=f"exec.p{ctx.rank}",
            )
            # Busy-wait: the MPI process holds its PPE context while the SPE
            # computes.  This is the whole pathology of the baseline.
            yield ctx.thread.spin_until(done)
            self.on_departure(start, self.env.now)
            self._m_offload_latency.observe((self.env.now - start) * 1e6)
            # Completion handling (reading the mailbox, resuming the code
            # path).
            yield ctx.thread.run(self.cell.completion_overhead)

    def _offload_tolerant(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace, decision
    ) -> Generator[Event, None, None]:
        """Fault-tolerant off-load to the *pinned* SPE.

        The baseline has no pool to fail over to: retries go to the same
        SPE, and a dead or blacklisted pinned SPE means every remaining
        task of this process runs on the PPE.  No watchdog either — the
        process spins, so it observes the attempt's fate directly.
        """
        env = self.env
        spe = ctx.pinned_spe
        policy = self.tolerance
        with self.spans.span("proc", f"mpi{ctx.rank}", "offload") as sp:
            if self.tracer.enabled:
                sp.set(function=task.function, reason=decision.reason)
            for attempt in range(policy.max_attempts):
                if not spe.in_service:
                    break
                yield ctx.thread.run(self.cell.dispatch_overhead)
                self.stats.offloads += 1
                self._m_offloads.inc()
                start = env.now
                self.on_dispatch(start)
                done = env.process(
                    self._spe_exec_faulty(
                        ctx, spe, [], task, trace, release=False
                    ),
                    name=f"exec.p{ctx.rank}",
                )
                yield ctx.thread.spin_until(done)
                status = done.value
                if status == "ok":
                    self._note_spe_success(spe)
                    self.on_departure(start, env.now)
                    self._m_offload_latency.observe((env.now - start) * 1e6)
                    yield ctx.thread.run(self.cell.completion_overhead)
                    return
                self.stats.offload_retries += 1
                self._m_retries.inc()
                self._note_spe_failure(spe)
                if self.tracer.enabled:
                    self.tracer.emit(
                        env.now, "fault", f"mpi{ctx.rank}", "offload_retry",
                        function=task.function, status=status,
                        attempt=attempt, spe=spe.name,
                    )
                yield env.timeout(policy.backoff(attempt))
            self.stats.retry_fallbacks += 1
            self._m_retry_fallbacks.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "fault", f"mpi{ctx.rank}", "retry_fallback",
                    function=task.function,
                )
        yield from self._ppe_fallback(ctx, task)


class EDTLPRuntime(OffloadRuntime):
    """Event-driven task-level parallelism (Section 5.2)."""

    name = "edtlp"

    def _acquire_spe(
        self, ctx: ProcContext, task: TaskSpec
    ) -> Generator[Event, None, SPE]:
        spe = None
        if self.locality_aware and task.data_key is not None:
            # Prefer an idle SPE that already holds this task's data set;
            # on a miss, place the set on the store with the most free
            # space so working sets spread across SPEs.
            spe = self.machine.pool.try_acquire_where(
                lambda s: s.data_resident(task.data_key)
            )
            if spe is None and task.working_set > 0:
                spe = self.machine.pool.try_acquire_best(
                    lambda s: s.local_store.free
                )
        if spe is None:
            spe = self.machine.pool.try_acquire(prefer_cell=ctx.cell_id)
        if spe is None:
            # All SPEs busy: the scheduler parks this process (its PPE
            # context is free for siblings) until a departure.
            self.stats.offload_waits += 1
            self._m_waits.inc()
            spe = yield self.machine.pool.acquire(prefer_cell=ctx.cell_id)
        return spe

    def _acquire_workers(self, ctx: ProcContext, spe: SPE, task: TaskSpec) -> List[SPE]:
        k = self.llp_degree(ctx)
        if k <= 1 or not task.parallelizable:
            return []
        return self.machine.pool.try_acquire_many(k - 1, prefer_cell=spe.cell_id)

    def offload(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace
    ) -> Generator[Event, None, None]:
        decision = self.granularity.decide(task)
        if not self.offload_enabled or not decision.offload:
            yield from self._ppe_fallback(ctx, task)
            return
        if self.faults is not None:
            yield from self._offload_tolerant(ctx, task, trace, decision)
            return
        with self.spans.span("proc", f"mpi{ctx.rank}", "offload") as sp:
            if self.tracer.enabled:
                sp.set(function=task.function, reason=decision.reason)
            # User-level scheduler work: find an SPE, ship the descriptor.
            yield ctx.thread.run(self.cell.dispatch_overhead)
            spe = yield from self._acquire_spe(ctx, task)
            workers = self._acquire_workers(ctx, spe, task)
            if self.tracer.enabled:
                sp.set(spe=spe.name, llp_degree=1 + len(workers))
            self.stats.offloads += 1
            self._m_offloads.inc()
            start = self.env.now
            self.on_dispatch(start)
            # Block (voluntary context switch): the PPE immediately serves
            # the next runnable MPI process while the SPE computes.
            yield self.env.process(
                self._spe_exec(ctx, spe, workers, task, trace, release=True),
                name=f"exec.p{ctx.rank}",
            )
            self.on_departure(start, self.env.now)
            self._m_offload_latency.observe((self.env.now - start) * 1e6)
            # Scheduler completion handling on the PPE before the process
            # continues (Section 5.2's t_comm bookkeeping on the PPE side).
            yield ctx.thread.run(self.cell.completion_overhead)

    def _offload_tolerant(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace, decision
    ) -> Generator[Event, None, None]:
        """Fault-tolerant off-load against the shared pool.

        Each attempt acquires a (possibly different) SPE, dispatches,
        and races the execution against a watchdog deadline.  Failed
        attempts back off exponentially in simulated time; after
        ``max_attempts`` failures — or when no live SPE remains — the
        task executes its PPE version.  A watchdog-abandoned attempt
        becomes a harmless zombie: the SPE finishes in the background
        and releases itself back to the pool.
        """
        env = self.env
        policy = self.tolerance
        with self.spans.span("proc", f"mpi{ctx.rank}", "offload") as sp:
            if self.tracer.enabled:
                sp.set(function=task.function, reason=decision.reason)
            for attempt in range(policy.max_attempts):
                yield ctx.thread.run(self.cell.dispatch_overhead)
                spe = yield from self._acquire_spe(ctx, task)
                if spe is None:
                    # Capacity exhausted: every SPE dead or blacklisted.
                    break
                workers = self._acquire_workers(ctx, spe, task)
                if self.tracer.enabled:
                    sp.set(spe=spe.name, llp_degree=1 + len(workers))
                self.stats.offloads += 1
                self._m_offloads.inc()
                start = env.now
                self.on_dispatch(start)
                done = env.process(
                    self._spe_exec_faulty(
                        ctx, spe, workers, task, trace, release=True
                    ),
                    name=f"exec.p{ctx.rank}",
                )
                deadline = policy.attempt_deadline(
                    self._expected_attempt_time(task)
                )
                winner = yield env.any_of([done, env.timeout(deadline)])
                if winner is done and done.value == "ok":
                    self._note_spe_success(spe)
                    self.on_departure(start, env.now)
                    self._m_offload_latency.observe((env.now - start) * 1e6)
                    yield ctx.thread.run(self.cell.completion_overhead)
                    return
                if winner is done:
                    status = done.value
                else:
                    status = "watchdog-timeout"
                    self.stats.watchdog_timeouts += 1
                    self._m_watchdog.inc()
                self.stats.offload_retries += 1
                self._m_retries.inc()
                self._note_spe_failure(spe)
                if self.tracer.enabled:
                    self.tracer.emit(
                        env.now, "fault", f"mpi{ctx.rank}", "offload_retry",
                        function=task.function, status=status,
                        attempt=attempt, spe=spe.name,
                    )
                yield env.timeout(policy.backoff(attempt))
            self.stats.retry_fallbacks += 1
            self._m_retry_fallbacks.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "fault", f"mpi{ctx.rank}", "retry_fallback",
                    function=task.function,
                )
        yield from self._ppe_fallback(ctx, task)


class StaticHybridRuntime(EDTLPRuntime):
    """EDTLP with always-on loop parallelism of fixed degree (EDTLP-LLP)."""

    name = "edtlp-llp"

    def __init__(self, *args, degree: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.name = f"edtlp-llp{degree}"

    def llp_degree(self, ctx: ProcContext) -> int:
        return self.degree


class MGPSRuntime(EDTLPRuntime):
    """Multigrain parallelism scheduling: adaptive EDTLP + LLP.

    Keeps the Section 5.4 utilization-history window; every ``window``-th
    off-load it re-evaluates the exposed TLP degree ``U`` and toggles
    loop-level parallelism with degree ``floor(n_spes / T)``.  A staleness
    guard resets the window after long off-load droughts (the role the
    paper assigns to timer interrupts).
    """

    name = "mgps"

    def __init__(
        self,
        *args,
        window: Optional[int] = None,
        staleness: float = 20e-3,
        max_degree: Optional[int] = None,
        llp_u_threshold: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        n = self.machine.n_spes
        self.history = UtilizationHistory(
            n, window, metrics=self.metrics, llp_threshold=llp_u_threshold
        )
        self.staleness = staleness
        self._m_decisions = self.metrics.counter(
            "mgps.decisions", "window-boundary LLP policy evaluations"
        )
        self._m_mode_switches = self.metrics.counter(
            "mgps.mode_switches", "LLP activation/degree changes"
        )
        self._m_window_resets = self.metrics.counter(
            "mgps.window_resets", "history resets after off-load droughts"
        )
        self._m_degree = self.metrics.gauge(
            "mgps.degree", "current LLP degree (1 = serial tasks)"
        )
        self._m_llp_active = self.metrics.gauge(
            "mgps.llp_active", "1 while loop-level parallelism is on"
        )
        # Beyond ~half the SPEs per loop, per-worker overheads dominate
        # (Table 2: "using five or more SPE threads decreases
        # efficiency"), so MGPS caps the LLP degree there.  The cap
        # follows the *live* SPE count when not pinned explicitly.
        self._auto_max_degree = max_degree is None
        self.max_degree = max_degree if max_degree is not None else max(2, n // 2)
        self.llp_active = False
        self.current_degree = 1
        self._last_dispatch = 0.0
        from collections import deque
        self._source_samples = deque(maxlen=self.history.window)

    def llp_degree(self, ctx: ProcContext) -> int:
        return self.current_degree if self.llp_active else 1

    def on_dispatch(self, time: float) -> None:
        if self._last_dispatch and time - self._last_dispatch > self.staleness:
            # Off-load drought: old U samples say nothing about the
            # present.  (Paper: timer-interrupt-driven adaptation.)
            self.history.reset()
            self._source_samples.clear()
            self._m_window_resets.inc()
        self._last_dispatch = time
        self._source_samples.append(
            self.current_sources(include_dispatcher=True)
        )
        if self.history.note_dispatch(time):
            self._decide()

    def on_departure(self, start: float, end: float) -> None:
        self.history.note_departure(start, end)

    def _on_capacity_change(self) -> None:
        """Re-baseline MGPS on the surviving SPE set.

        Called after every kill or blacklist: the utilization-history
        window, the LLP activation threshold and the degree formula
        ``floor(n_live / T)`` all shrink to the live capacity, so the
        scheduler degrades gracefully instead of over-committing loop
        workers it can no longer acquire.
        """
        n_live = max(1, self.machine.pool.n_live)
        self.history.resize(n_live)
        if self._auto_max_degree:
            self.max_degree = min(n_live, max(2, n_live // 2))
        if self.current_degree > self.max_degree:
            self.current_degree = self.max_degree
            if self.current_degree <= 1:
                self.llp_active = False
                self.current_degree = 1
            self.stats.llp_mode_switches += 1
            self._m_mode_switches.inc()
            self._m_degree.set(self.current_degree)
            self._m_llp_active.set(1 if self.llp_active else 0)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "sched", "mgps", "capacity_change",
                live_spes=self.machine.pool.n_live,
                window=self.history.window,
                max_degree=self.max_degree,
                degree=self.current_degree,
            )

    def _decide(self) -> None:
        # T: the most task sources seen at any recent dispatch -- the
        # conservative estimate (momentary dips must not inflate the
        # loop degree and strand acquisitions).
        t = max(self._source_samples) if self._source_samples else 1
        active, degree = self.history.llp_decision(t)
        degree = min(degree, self.max_degree)
        active = active and degree > 1
        if active != self.llp_active or (active and degree != self.current_degree):
            self.stats.llp_mode_switches += 1
            self._m_mode_switches.inc()
        self.llp_active = active
        self.current_degree = degree if active else 1
        self._m_decisions.inc()
        self._m_degree.set(self.current_degree)
        self._m_llp_active.set(1 if active else 0)
        if self.tracer.enabled:
            self.tracer.emit(
                self._last_dispatch, "sched", "mgps", "decision",
                u=self.history.u_estimate, t=t, active=active,
                degree=self.current_degree,
            )
