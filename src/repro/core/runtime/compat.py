"""The legacy runtime classes, as facades over the layered engine.

Before the engine/policy split the runtimes formed an inheritance tower
(``OffloadRuntime -> LinuxRuntime/EDTLPRuntime -> StaticHybridRuntime/
MGPSRuntime``) and custom schedulers subclassed ``EDTLPRuntime`` to
override the policy hooks.  That API keeps working: each facade here is
an :class:`~repro.core.runtime.engine.OffloadEngine` acting as its *own*
policy, so overriding ``llp_degree`` / ``on_dispatch`` /
``on_departure`` / ``_on_capacity_change`` on a subclass still steers
the engine.  New code should implement a
:class:`~repro.core.runtime.policy.SchedulingPolicy` and register it
instead (see ``examples/custom_policy.py``).
"""

from __future__ import annotations

from typing import Optional

from .context import ProcContext
from .engine import OffloadEngine
from .policies import MGPSPolicy

__all__ = [
    "OffloadRuntime",
    "LinuxRuntime",
    "EDTLPRuntime",
    "StaticHybridRuntime",
    "MGPSRuntime",
]


class OffloadRuntime(OffloadEngine):
    """Legacy base: one object playing both engine and policy."""

    name = "base"

    # Pre-split subclasses override ``_on_capacity_change``; route the
    # protocol hook through the old name so they keep firing.
    def on_capacity_change(self) -> None:
        self._on_capacity_change()

    def _on_capacity_change(self) -> None:
        """Called after every SPE kill or blacklist (live set shrank)."""


class LinuxRuntime(OffloadRuntime):
    """Naive MPI mapping: pinned SPEs, spin-wait, OS time slicing."""

    name = "linux"
    pinned = True
    spin = True


class EDTLPRuntime(OffloadRuntime):
    """Event-driven task-level parallelism (Section 5.2)."""

    name = "edtlp"


class StaticHybridRuntime(EDTLPRuntime):
    """EDTLP with always-on loop parallelism of fixed degree (EDTLP-LLP)."""

    name = "edtlp-llp"

    def __init__(self, *args, degree: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.name = f"edtlp-llp{degree}"

    def llp_degree(self, ctx: ProcContext) -> int:
        return self.degree


class MGPSRuntime(EDTLPRuntime):
    """Multigrain parallelism scheduling: adaptive EDTLP + LLP.

    The adaptive state lives in a composed
    :class:`~repro.core.runtime.policies.MGPSPolicy`; this facade only
    forwards the attributes the pre-split API exposed (``llp_active``,
    ``current_degree``, ``history``, ``max_degree``).
    """

    name = "mgps"

    def __init__(
        self,
        *args,
        window: Optional[int] = None,
        staleness: float = 20e-3,
        max_degree: Optional[int] = None,
        llp_u_threshold: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(
            *args,
            policy=MGPSPolicy(
                window=window, staleness=staleness, max_degree=max_degree,
                llp_u_threshold=llp_u_threshold,
            ),
            **kwargs,
        )

    def llp_degree(self, ctx: ProcContext) -> int:
        return self.policy.llp_degree(ctx)

    @property
    def history(self):
        return self.policy.history

    @property
    def staleness(self) -> float:
        return self.policy.staleness

    @property
    def llp_active(self) -> bool:
        return self.policy.llp_active

    @llp_active.setter
    def llp_active(self, value: bool) -> None:
        self.policy.llp_active = value

    @property
    def current_degree(self) -> int:
        return self.policy.current_degree

    @current_degree.setter
    def current_degree(self, value: int) -> None:
        self.policy.current_degree = value

    @property
    def max_degree(self) -> int:
        return self.policy.max_degree

    @max_degree.setter
    def max_degree(self, value: int) -> None:
        self.policy.max_degree = value
