"""The paper's four schedulers as thin policy objects over one engine.

Each policy is pure decision state; all mechanics (SPE acquisition, DMA
timing, the tolerant off-load path) live in
:class:`~repro.core.runtime.engine.OffloadEngine`.  Measured differences
between schedulers are therefore attributable to policy alone:

* :class:`LinuxPolicy` — the baseline: each MPI process owns one pinned
  SPE and **spins** on off-load completion.  Because the spin (~96 us) is
  far shorter than the OS quantum (10 ms), the OS never switches at
  off-load points and at most two off-loads are in flight (Section 5.2,
  Figure 2b, Table 1 right column).
* :class:`EDTLPPolicy` — event-driven task-level parallelism: processes
  *block* at off-load points (a voluntary context switch), so the PPE
  dispatches for every runnable MPI process and all SPEs stay fed.
* :class:`StaticHybridPolicy` — EDTLP plus always-on loop-level
  parallelism with a fixed degree (the EDTLP-LLP scheme of Figure 7).
* :class:`MGPSPolicy` — the paper's contribution: EDTLP extended with
  the feedback-guided LLP trigger/throttle of Section 5.4.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..history import UtilizationHistory
from .policy import SchedulingPolicy, register_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import ProcContext
    from .engine import OffloadEngine

__all__ = [
    "LinuxPolicy",
    "EDTLPPolicy",
    "StaticHybridPolicy",
    "MGPSPolicy",
]


class LinuxPolicy(SchedulingPolicy):
    """Naive MPI mapping: pinned SPEs, spin-wait, OS time slicing."""

    name = "linux"
    description = ("OS-scheduler baseline: one pinned SPE per process, "
                   "busy-wait at off-load points (Table 1 right column)")
    pinned = True
    spin = True


class EDTLPPolicy(SchedulingPolicy):
    """Event-driven task-level parallelism (Section 5.2)."""

    name = "edtlp"
    description = ("event-driven TLP: block at off-load points, any idle "
                   "SPE from the shared pool, no loop parallelism")


class StaticHybridPolicy(SchedulingPolicy):
    """EDTLP with always-on loop parallelism of fixed degree (EDTLP-LLP)."""

    description = ("EDTLP plus always-on loop-level parallelism with a "
                   "fixed degree (Figure 7's EDTLP-LLP)")

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.name = f"edtlp-llp{degree}"

    def llp_degree(self, ctx: "ProcContext") -> int:
        return self.degree


class MGPSPolicy(SchedulingPolicy):
    """Multigrain parallelism scheduling: adaptive EDTLP + LLP.

    Keeps the Section 5.4 utilization-history window; every ``window``-th
    off-load it re-evaluates the exposed TLP degree ``U`` and toggles
    loop-level parallelism with degree ``floor(n_spes / T)``.  A staleness
    guard resets the window after long off-load droughts (the role the
    paper assigns to timer interrupts).
    """

    name = "mgps"
    description = ("adaptive multigrain scheduling: utilization-history "
                   "window toggles LLP with degree floor(n_spes/T) "
                   "(Section 5.4)")

    def __init__(
        self,
        window: Optional[int] = None,
        staleness: float = 20e-3,
        max_degree: Optional[int] = None,
        llp_u_threshold: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._window = window
        self._llp_u_threshold = llp_u_threshold
        self.staleness = staleness
        # Beyond ~half the SPEs per loop, per-worker overheads dominate
        # (Table 2: "using five or more SPE threads decreases
        # efficiency"), so MGPS caps the LLP degree there.  The cap
        # follows the *live* SPE count when not pinned explicitly.
        self._auto_max_degree = max_degree is None
        self.max_degree = max_degree if max_degree is not None else 0
        self.llp_active = False
        self.current_degree = 1
        self._last_dispatch = 0.0

    def bind(self, engine: "OffloadEngine") -> None:
        super().bind(engine)
        n = engine.machine.n_spes
        self.history = UtilizationHistory(
            n, self._window, metrics=engine.metrics,
            llp_threshold=self._llp_u_threshold,
        )
        if self._auto_max_degree:
            self.max_degree = max(2, n // 2)
        self._m_decisions = engine.metrics.counter(
            "mgps.decisions", "window-boundary LLP policy evaluations"
        )
        self._m_mode_switches = engine.metrics.counter(
            "mgps.mode_switches", "LLP activation/degree changes"
        )
        self._m_window_resets = engine.metrics.counter(
            "mgps.window_resets", "history resets after off-load droughts"
        )
        self._m_degree = engine.metrics.gauge(
            "mgps.degree", "current LLP degree (1 = serial tasks)"
        )
        self._m_llp_active = engine.metrics.gauge(
            "mgps.llp_active", "1 while loop-level parallelism is on"
        )
        self._source_samples = deque(maxlen=self.history.window)

    def llp_degree(self, ctx: "ProcContext") -> int:
        return self.current_degree if self.llp_active else 1

    def on_dispatch(self, time: float) -> None:
        if self._last_dispatch and time - self._last_dispatch > self.staleness:
            # Off-load drought: old U samples say nothing about the
            # present.  (Paper: timer-interrupt-driven adaptation.)
            self.history.reset()
            self._source_samples.clear()
            self._m_window_resets.inc()
        self._last_dispatch = time
        self._source_samples.append(
            self.engine.current_sources(include_dispatcher=True)
        )
        if self.history.note_dispatch(time):
            self._decide()

    def on_departure(self, start: float, end: float) -> None:
        self.history.note_departure(start, end)

    def on_capacity_change(self) -> None:
        """Re-baseline MGPS on the surviving SPE set.

        Called after every kill or blacklist: the utilization-history
        window, the LLP activation threshold and the degree formula
        ``floor(n_live / T)`` all shrink to the live capacity, so the
        scheduler degrades gracefully instead of over-committing loop
        workers it can no longer acquire.
        """
        engine = self.engine
        n_live = max(1, engine.machine.pool.n_live)
        self.history.resize(n_live)
        if self._auto_max_degree:
            self.max_degree = min(n_live, max(2, n_live // 2))
        if self.current_degree > self.max_degree:
            self.current_degree = self.max_degree
            if self.current_degree <= 1:
                self.llp_active = False
                self.current_degree = 1
            engine.stats.llp_mode_switches += 1
            self._m_mode_switches.inc()
            self._m_degree.set(self.current_degree)
            self._m_llp_active.set(1 if self.llp_active else 0)
        if engine.tracer.enabled:
            engine.tracer.emit(
                engine.env.now, "sched", "mgps", "capacity_change",
                live_spes=engine.machine.pool.n_live,
                window=self.history.window,
                max_degree=self.max_degree,
                degree=self.current_degree,
            )

    def _decide(self) -> None:
        # T: the most task sources seen at any recent dispatch -- the
        # conservative estimate (momentary dips must not inflate the
        # loop degree and strand acquisitions).
        t = max(self._source_samples) if self._source_samples else 1
        active, degree = self.history.llp_decision(t)
        degree = min(degree, self.max_degree)
        active = active and degree > 1
        if active != self.llp_active or (active and degree != self.current_degree):
            self.engine.stats.llp_mode_switches += 1
            self._m_mode_switches.inc()
        self.llp_active = active
        self.current_degree = degree if active else 1
        self._m_decisions.inc()
        self._m_degree.set(self.current_degree)
        self._m_llp_active.set(1 if active else 0)
        if self.engine.tracer.enabled:
            self.engine.tracer.emit(
                self._last_dispatch, "sched", "mgps", "decision",
                u=self.history.u_estimate, t=t, active=active,
                degree=self.current_degree,
            )


# -- the built-in registry entries -------------------------------------------

register_policy(
    "linux",
    lambda spec: LinuxPolicy(),
    description=LinuxPolicy.description,
)
register_policy(
    "edtlp",
    lambda spec: EDTLPPolicy(),
    description=EDTLPPolicy.description,
)
register_policy(
    "static_hybrid",
    lambda spec: StaticHybridPolicy(degree=spec.llp_degree),
    description=StaticHybridPolicy.description,
    knobs=("llp_degree",),
)
register_policy(
    "mgps",
    lambda spec: MGPSPolicy(
        window=spec.history_window, llp_u_threshold=spec.llp_u_threshold
    ),
    description=MGPSPolicy.description,
    knobs=("history_window", "llp_u_threshold"),
)
