"""The layered off-load runtime: engine / policy / loop schedules.

Three separable concerns, three layers:

* :mod:`~repro.core.runtime.engine` — :class:`OffloadEngine`, the
  mechanics every scheduler shares (SPE acquisition, DMA timing, the
  granularity test, and the single fault-tolerant off-load path);
* :mod:`~repro.core.runtime.policy` /
  :mod:`~repro.core.runtime.policies` — the
  :class:`SchedulingPolicy` protocol, its string-keyed registry, and the
  paper's four schedulers as thin policy objects;
* loop schedules live one layer down in :mod:`repro.core.llp`
  (``LLPConfig.schedule`` selects static / dynamic / guided / adaptive).

The pre-split class tower (``OffloadRuntime`` and friends) remains
importable from this package via :mod:`~repro.core.runtime.compat`.
"""

from .compat import (
    EDTLPRuntime,
    LinuxRuntime,
    MGPSRuntime,
    OffloadRuntime,
    StaticHybridRuntime,
)
from .context import ProcContext, RuntimeStats
from .engine import OffloadEngine
from .policies import (
    EDTLPPolicy,
    LinuxPolicy,
    MGPSPolicy,
    StaticHybridPolicy,
)
from .policy import (
    PolicyInfo,
    SchedulingPolicy,
    available_policies,
    register_policy,
    resolve_policy,
)

__all__ = [
    # layered API
    "OffloadEngine",
    "SchedulingPolicy",
    "PolicyInfo",
    "register_policy",
    "resolve_policy",
    "available_policies",
    "LinuxPolicy",
    "EDTLPPolicy",
    "StaticHybridPolicy",
    "MGPSPolicy",
    # shared context
    "ProcContext",
    "RuntimeStats",
    # legacy facade
    "OffloadRuntime",
    "LinuxRuntime",
    "EDTLPRuntime",
    "StaticHybridRuntime",
    "MGPSRuntime",
]
