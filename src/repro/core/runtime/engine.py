"""The off-load engine: shared mechanics beneath every scheduling policy.

One :class:`OffloadEngine` drives the :class:`~repro.cell.CellMachine`
for all schedulers.  It owns everything the paper's runtimes have in
common — SPE acquisition against the pool, code-image residency, working
set staging (DMA timing), the granularity test, cross-task memory
contention, the result ledger, and the *single* fault-tolerant off-load
path (retry/backoff/watchdog/PPE-fallback/blacklist) — and delegates
every decision to a bound
:class:`~repro.core.runtime.policy.SchedulingPolicy`.

Two policy attributes select the wait discipline without duplicating the
off-load path per scheduler:

* ``policy.pinned`` — off-load to ``ctx.pinned_spe`` (no pool, no
  workers, the dispatcher keeps ownership);
* ``policy.spin`` — busy-wait on the PPE for completion instead of
  blocking (a spinning process observes the attempt's fate directly, so
  the tolerant path needs no watchdog for it).

The Linux baseline is ``pinned + spin``; EDTLP and everything built on
it is ``pooled + blocking``.  Constructed without a policy, the engine
is its own (inert) policy — the legacy ``OffloadRuntime`` subclass API
in :mod:`repro.core.runtime.compat` builds on exactly that.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set

from ...cell.machine import CellMachine
from ...cell.spe import SPE
from ...faults.tolerance import TolerancePolicy
from ...obs.metrics import NULL_REGISTRY
from ...obs.spans import SpanRecorder
from ...sim.engine import Environment
from ...sim.events import Event
from ...sim.trace import Tracer
from ...workloads.taskspec import BootstrapTrace, TaskSpec
from ..granularity import GranularityGovernor
from ..llp import LLPConfig, LoopParallelModel
from ..results import ResultLedger
from .context import ProcContext, RuntimeStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...faults.injector import FaultInjector
    from .policy import SchedulingPolicy

__all__ = ["OffloadEngine"]


class OffloadEngine:
    """Policy-agnostic off-load mechanics (dispatch, code, execute, signal)."""

    name = "engine"
    # Self-policy defaults (used when no policy object is bound; the
    # legacy subclass API overrides these and the hook methods below).
    pinned = False
    spin = False

    def __init__(
        self,
        env: Environment,
        machine: CellMachine,
        granularity_enabled: bool = True,
        optimized: bool = True,
        llp_config: Optional[LLPConfig] = None,
        offload_enabled: bool = True,
        tracer: Optional[Tracer] = None,
        locality_aware: bool = False,
        metrics: Optional[object] = None,
        faults: Optional["FaultInjector"] = None,
        tolerance: Optional[TolerancePolicy] = None,
        policy: Optional["SchedulingPolicy"] = None,
    ) -> None:
        self.env = env
        self.machine = machine
        self.cell = machine.cell_params
        self.optimized = optimized
        self.offload_enabled = offload_enabled
        self.locality_aware = locality_aware
        if tracer is None:
            tracer = getattr(env, "tracer", None)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if metrics is None:
            metrics = getattr(env, "metrics", None)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # Wall-clock profiler rides on the environment like the other
        # sinks; None keeps the off-load hot path branch-free beyond one
        # ``is None`` check per decision.
        self.profiler = getattr(env, "profiler", None)
        # One flag for the whole sink fan-out (tracer, metrics,
        # profiler): when every sink is off — the benchmarking
        # configuration — the off-load hot path skips all recording
        # calls and allocates nothing for them.
        self.sinks_enabled = (
            self.tracer.enabled
            or self.metrics is not NULL_REGISTRY
            or self.profiler is not None
        )
        self.spans = SpanRecorder(self.tracer, env)
        self.granularity = GranularityGovernor(
            t_comm=self.cell.ppe_spe_signal, enabled=granularity_enabled,
            metrics=self.metrics,
        )
        self.llp_model = LoopParallelModel(
            self.cell, llp_config, metrics=self.metrics,
            profiler=self.profiler,
            tracer=self.tracer, clock=lambda: env.now,
        )
        self.stats = RuntimeStats()
        self._active_sources: Set[int] = set()
        # Fault tolerance: ``faults`` is the injector realizing a plan on
        # this machine (None = fault-free fast path, byte-identical to the
        # pre-fault-tolerance runtime); ``tolerance`` configures the
        # retry/watchdog/blacklist/fallback machinery.
        self.faults = faults
        self.tolerance = tolerance or TolerancePolicy()
        self._consec_failures: Dict[str, int] = {}
        if faults is not None:
            faults.add_listener(self._notify_capacity_change)
        # Application-result ledger: one chained digest per bootstrap,
        # recorded by the worker processes via note_task_complete.  The
        # run digest is the bit-identity witness of the fault-tolerance
        # invariant (pure wall-clock cost; simulated time is untouched).
        self.ledger = ResultLedger()
        self._current_bootstrap: Dict[int, int] = {}
        m = self.metrics
        self._m_offloads = m.counter("runtime.offloads", "SPE off-load dispatches")
        self._m_fallbacks = m.counter(
            "runtime.ppe_fallbacks", "throttled tasks executed on the PPE"
        )
        self._m_waits = m.counter(
            "runtime.offload_waits", "off-loads that blocked for a free SPE"
        )
        self._m_code_loads = m.counter(
            "runtime.code_loads", "SPE code-image (re)loads"
        )
        self._m_data_hits = m.counter("runtime.data_hits")
        self._m_data_misses = m.counter("runtime.data_misses")
        self._m_offload_latency = m.histogram(
            "runtime.offload_latency_us",
            help="dispatch-to-completion latency of SPE off-loads, us",
        )
        self._m_retries = m.counter(
            "runtime.offload_retries", "failed SPE attempts that were retried"
        )
        self._m_retry_fallbacks = m.counter(
            "runtime.retry_fallbacks",
            "tasks executed on the PPE after exhausting SPE attempts",
        )
        self._m_watchdog = m.counter(
            "runtime.watchdog_timeouts", "off-load attempts abandoned by the watchdog"
        )
        self._m_llp_recoveries = m.counter(
            "runtime.llp_recoveries", "LLP chunks reclaimed from dead workers"
        )
        self._m_blacklists = m.counter(
            "runtime.spe_blacklists", "SPEs retired after consecutive failures"
        )
        # Bind the decision layer last: a real policy may size windows
        # off the machine/metrics created above.  Without one, the
        # engine's own (inert) hook methods serve as the policy.
        if policy is None:
            self.policy: "SchedulingPolicy" = self  # type: ignore[assignment]
        else:
            self.policy = policy
            policy.bind(self)
            self.name = policy.name

    # -- bookkeeping hooks ----------------------------------------------------
    def note_bootstrap_start(self, ctx: ProcContext, index: int) -> None:
        self._active_sources.add(ctx.rank)
        self._current_bootstrap[ctx.rank] = index
        self.ledger.start(ctx.rank, index)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "proc", f"mpi{ctx.rank}", "span_begin",
                name=f"bootstrap[{index}]", depth=0,
            )

    def note_bootstrap_end(self, ctx: ProcContext, index: int) -> None:
        self._active_sources.discard(ctx.rank)
        self.stats.bootstraps_done += 1
        self.ledger.finish(ctx.rank, index)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "proc", f"mpi{ctx.rank}", "span_end",
                name=f"bootstrap[{index}]", depth=0,
            )

    def note_task_complete(self, ctx: ProcContext, task: TaskSpec) -> None:
        """Fold one completed task into its bootstrap's result chain.

        Called by the worker process after ``offload`` returns.  The
        payload is the task's *content* — identical whether the task ran
        on an SPE, after retries, or on the PPE — so the run digest is
        invariant under any fault plan that lets the run complete.
        """
        index = self._current_bootstrap.get(ctx.rank)
        if index is None:
            return  # task outside a bootstrap (direct runtime tests)
        self.ledger.record(
            ctx.rank, index,
            f"{task.function}|{task.spe_time!r}|{task.ppe_time!r}"
            f"|{task.naive_spe_time!r}|{task.working_set}|{task.data_key}",
        )

    @property
    def active_sources(self) -> int:
        return len(self._active_sources)

    def current_sources(self, include_dispatcher: bool = False) -> int:
        """Task sources with work *right now*: distinct owners of busy
        SPEs plus processes queued for an SPE.  This is the paper's "T,
        the number of tasks waiting for off-loading" at a decision point
        (bounded above by the processes still inside a bootstrap/phase).

        ``include_dispatcher`` adds the process performing the current
        off-load, whose task is not yet marked busy at sampling time.
        """
        t = self.machine.n_busy_owners + self.machine.pool.n_waiting
        if include_dispatcher:
            t += 1
        if self._active_sources:
            t = min(max(t, 1), len(self._active_sources))
        return max(1, t)

    # -- self-policy defaults (overridden by the legacy subclass API) --------
    def llp_degree(self, ctx: ProcContext) -> int:
        """Desired SPEs per off-loaded task (1 = no loop parallelism)."""
        return 1

    def on_dispatch(self, time: float) -> None:
        """Called at every off-load dispatch."""

    def on_departure(self, start: float, end: float) -> None:
        """Called at every off-load completion."""

    def on_capacity_change(self) -> None:
        """Called after every SPE kill or blacklist (live set shrank)."""

    def admit(self, ctx: ProcContext, task: TaskSpec, decision) -> bool:
        """Last-look veto over an off-load the granularity test approved."""
        return True

    def _notify_capacity_change(self) -> None:
        """Fault-listener shim: route capacity changes to the policy."""
        self.policy.on_capacity_change()

    # -- SPE acquisition ------------------------------------------------------
    def _acquire_spe(
        self, ctx: ProcContext, task: TaskSpec
    ) -> Generator[Event, None, SPE]:
        spe = None
        if self.locality_aware and task.data_key is not None:
            # Prefer an idle SPE that already holds this task's data set;
            # on a miss, place the set on the store with the most free
            # space so working sets spread across SPEs.
            spe = self.machine.pool.try_acquire_where(
                lambda s: s.data_resident(task.data_key)
            )
            if spe is None and task.working_set > 0:
                spe = self.machine.pool.try_acquire_best(
                    lambda s: s.local_store.free
                )
        if spe is None:
            spe = self.machine.pool.try_acquire(prefer_cell=ctx.cell_id)
        if spe is None:
            # All SPEs busy: the scheduler parks this process (its PPE
            # context is free for siblings) until a departure.
            self.stats.offload_waits += 1
            if self.sinks_enabled:
                self._m_waits.inc()
            spe = yield self.machine.pool.acquire(prefer_cell=ctx.cell_id)
        return spe

    def _acquire_workers(
        self, ctx: ProcContext, spe: SPE, task: TaskSpec
    ) -> List[SPE]:
        k = self.policy.llp_degree(ctx)
        if k <= 1 or not task.parallelizable:
            return []
        return self.machine.pool.try_acquire_many(k - 1, prefer_cell=spe.cell_id)

    # -- mechanics ------------------------------------------------------------
    def _exec_time(self, task: TaskSpec) -> float:
        return task.spe_time if self.optimized else task.naive_spe_time

    def _spe_exec(
        self,
        ctx: ProcContext,
        spe: SPE,
        workers: List[SPE],
        task: TaskSpec,
        trace: BootstrapTrace,
        release: bool,
    ) -> Generator[Event, None, None]:
        """Run ``task`` on ``spe`` (with optional LLP workers); a process."""
        env = self.env
        # PPE -> SPE start signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))
        # Make the right code image resident (t_code; Section 5.4 notes the
        # replacement cost when toggling between serial and LLP variants).
        image = trace.llp_image if workers else trace.code_image
        t_load = spe.load_code(image)
        for w in workers:
            t_load = max(t_load, w.load_code(trace.llp_image))
        if t_load > 0:
            self.stats.code_loads += 1
            if self.sinks_enabled:
                self._m_code_loads.inc()
            yield env.timeout(t_load)

        # Stage the task's working set (memory-aware extension): a hit
        # costs nothing, a miss pays the DMA of the data set.
        if task.working_set > 0 and task.data_key is not None:
            moved = spe.load_data(task.data_key, task.working_set)
            if moved:
                self.stats.data_misses += 1
                self.stats.data_bytes_transferred += moved
                if self.sinks_enabled:
                    self._m_data_misses.inc()
                yield env.timeout(spe.mfc.transfer_time(moved))
            else:
                self.stats.data_hits += 1
                if self.sinks_enabled:
                    self._m_data_hits.inc()

        if workers:
            cross = sum(1 for w in workers if w.cell_id != spe.cell_id)
            inv = self.llp_model.invoke(task, 1 + len(workers), cross,
                                         actor=spe.name)
            duration = inv.duration
            self.stats.llp_invocations += 1
            self.stats.llp_worker_seconds += duration * len(workers)
            if self.tracer.enabled:
                # Per-invocation adaptation record: the join-idle series
                # per (function, k) is what the health monitor checks for
                # adaptive-unbalancing convergence, and what the HTML
                # report plots as the chunk-adaptation curve.
                self.tracer.emit(
                    env.now, "llp", spe.name, "llp_invoke",
                    function=task.function, k=inv.k,
                    join_idle_us=inv.join_idle * 1e6,
                    master_fraction=inv.master_fraction,
                    chunks=inv.chunks,
                    schedule=inv.schedule,
                    chunk_counts=inv.chunk_counts,
                )
        else:
            duration = self._exec_time(task)
        owner = ctx.owner
        # Shared XDR / EIB contention: busy SPEs of *other* tasks on the
        # same Cell slow this one (each Cell has its own EIB and memory
        # channel; LLP workers of this task are already priced by the
        # loop model).  Superlinear: the memory controller queues.
        busy_others = self.machine.busy_others(spe.cell_id, owner)
        base_duration = duration
        duration *= 1.0 + min(
            self.cell.memory_contention_cap,
            self.cell.memory_contention_quadratic * busy_others**2,
        )

        for w in workers:
            w.mark_busy(owner)
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_start",
                proc=ctx.rank, function=task.function, duration=duration,
                workers=tuple(w.name for w in workers),
            )
            for w in workers:
                self.tracer.emit(
                    env.now, "spe", w.name, "task_start",
                    proc=ctx.rank, function=task.function, role="worker",
                )
        try:
            yield from spe.occupy(duration, owner)
        finally:
            for w in workers:
                w.mark_idle()
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_end",
                proc=ctx.rank, function=task.function,
            )
            for w in workers:
                self.tracer.emit(
                    env.now, "spe", w.name, "task_end",
                    proc=ctx.rank, function=task.function, role="worker",
                )
        if release:
            for w in workers:
                self.machine.pool.release(w)
            self.machine.pool.release(spe)
        # Granularity feedback uses the *inherent* kernel time: the test
        # judges whether a function is worth off-loading at all, not the
        # instantaneous bus load (which affects the PPE path too).
        self.granularity.record_spe(task.function, base_duration)
        # SPE -> PPE completion signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))

    def _ppe_fallback(
        self, ctx: ProcContext, task: TaskSpec
    ) -> Generator[Event, None, None]:
        """Execute the task's PPE version in place (throttled off-load)."""
        self.stats.ppe_fallbacks += 1
        if self.sinks_enabled:
            self._m_fallbacks.inc()
            if self.profiler is not None:
                self.profiler.count("runtime.ppe_fallbacks")
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now, "ppe", ctx.actor, "ppe_fallback",
                    function=task.function, duration=task.ppe_time,
                )
        yield ctx.thread.run(task.ppe_time)
        self.granularity.record_ppe(task.function, task.ppe_time)

    # -- the off-load path ----------------------------------------------------
    def offload(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace
    ) -> Generator[Event, None, None]:
        """Off-load ``task``, honoring the bound policy's discipline.

        One path for every scheduler: pinned policies use the process's
        own SPE and skip the pool; spinning policies busy-wait on the
        PPE; everyone else blocks.  With a fault plan attached the
        tolerant twin below takes over.
        """
        pinned = self.policy.pinned
        if pinned and ctx.pinned_spe is None:
            raise RuntimeError(f"process {ctx.rank} has no pinned SPE")
        prof = self.profiler
        if prof is None:
            decision = self.granularity.decide(task)
        else:
            # Synchronous call — safe to wall-time (no simulation yield).
            decision = prof.call(
                "runtime.granularity.decide", self.granularity.decide, task
            )
        if (
            not self.offload_enabled
            or not decision.offload
            or not self.policy.admit(ctx, task, decision)
        ):
            yield from self._ppe_fallback(ctx, task)
            return
        if self.faults is not None:
            yield from self._offload_tolerant(ctx, task, trace, decision)
            return
        with self.spans.span("proc", ctx.actor, "offload") as sp:
            if self.tracer.enabled:
                sp.set(function=task.function, reason=decision.reason)
            # The process writes the task descriptor / finds an SPE and
            # ships the descriptor — user-level scheduler work either way.
            yield ctx.thread.run(self.cell.dispatch_overhead)
            if pinned:
                spe, workers, release = ctx.pinned_spe, [], False
            else:
                spe = yield from self._acquire_spe(ctx, task)
                workers = self._acquire_workers(ctx, spe, task)
                if self.tracer.enabled:
                    sp.set(spe=spe.name, llp_degree=1 + len(workers))
                release = True
            self.stats.offloads += 1
            if self.sinks_enabled:
                self._m_offloads.inc()
                if prof is not None:
                    prof.count("runtime.offloads")
            start = self.env.now
            self.policy.on_dispatch(start)
            done = self.env.process(
                self._spe_exec(ctx, spe, workers, task, trace,
                               release=release),
                name=f"exec.p{ctx.rank}",
            )
            if self.policy.spin:
                # Busy-wait: the MPI process holds its PPE context while
                # the SPE computes (the baseline's whole pathology).
                yield ctx.thread.spin_until(done)
            else:
                # Block (voluntary context switch): the PPE immediately
                # serves the next runnable MPI process.
                yield done
            self.policy.on_departure(start, self.env.now)
            if self.sinks_enabled:
                self._m_offload_latency.observe((self.env.now - start) * 1e6)
            # Completion handling on the PPE before the process continues
            # (Section 5.2's t_comm bookkeeping on the PPE side).
            yield ctx.thread.run(self.cell.completion_overhead)

    # -- fault-tolerant mechanics ---------------------------------------------
    def _note_spe_failure(self, spe: SPE) -> None:
        """Track consecutive failures; blacklist the SPE past the limit."""
        n = self._consec_failures.get(spe.name, 0) + 1
        self._consec_failures[spe.name] = n
        if (
            n >= self.tolerance.blacklist_after
            and spe.alive
            and not spe.blacklisted
        ):
            spe.blacklisted = True
            spe.fail_time = self.env.now
            self.machine.pool.mark_out_of_service(spe)
            self.stats.spe_blacklists += 1
            self._m_blacklists.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now, "fault", spe.name, "spe_blacklist",
                    consecutive_failures=n,
                    live_spes=self.machine.pool.n_live,
                )
            self._notify_capacity_change()

    def _note_spe_success(self, spe: SPE) -> None:
        self._consec_failures.pop(spe.name, None)

    def _expected_attempt_time(self, task: TaskSpec) -> float:
        """Expected duration of one attempt, for the watchdog deadline.

        Conservative: the serial SPE time plus maximum memory contention.
        A healthy attempt (even an LLP one) finishes well inside it; only
        a pathologically slow SPE or a lost completion signal trips it.
        """
        return self._exec_time(task) * (1.0 + self.cell.memory_contention_cap)

    def _faulty_dma_time(self, spe: SPE, base: float) -> "tuple[float, bool]":
        """(time to pay, succeeded) for one DMA under the fault plan.

        Mirrors :meth:`~repro.cell.mfc.MFC.transfer_time_with_retries`
        for a transfer whose clean duration is already known: each error
        costs ``dma_retry_penalty`` extra transfers; more errors than the
        policy absorbs means the transfer is abandoned.
        """
        errors = self.faults.dma_errors(spe, self.tolerance.max_dma_retries)
        if errors == 0:
            return base, True
        self.stats.dma_errors += errors
        t = base * (1.0 + self.faults.plan.dma_retry_penalty * errors)
        return t, errors <= self.tolerance.max_dma_retries

    def _spe_exec_faulty(
        self,
        ctx: ProcContext,
        spe: SPE,
        workers: List[SPE],
        task: TaskSpec,
        trace: BootstrapTrace,
        release: bool,
    ) -> Generator[Event, None, str]:
        """Fault-aware twin of :meth:`_spe_exec`; a process.

        Returns a status string as the process value instead of raising
        (the simulation runs strict, so an exception here would abort the
        whole run): ``"ok"``, ``"offload-fail"`` (transient dispatch
        loss), ``"dma-fail"`` (transfer abandoned), ``"spe-dead"``
        (master died before or during execution).  Always returns its
        resources — released here, not by the dispatching process, so a
        watchdog-abandoned attempt cleans up after itself when it
        eventually finishes.
        """
        env = self.env
        faults = self.faults
        policy = self.tolerance

        def _give_back() -> None:
            if release:
                for w in workers:
                    self.machine.pool.release(w)
                self.machine.pool.release(spe)

        death = faults.death_time(spe)
        if death <= env.now or not spe.in_service:
            _give_back()
            return "spe-dead"

        # PPE -> SPE start signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))
        # Transient dispatch loss: the descriptor/signal never arrives.
        if faults.offload_fails(spe):
            _give_back()
            return "offload-fail"

        image = trace.llp_image if workers else trace.code_image
        t_load = spe.load_code(image)
        for w in workers:
            t_load = max(t_load, w.load_code(trace.llp_image))
        if t_load > 0:
            self.stats.code_loads += 1
            if self.sinks_enabled:
                self._m_code_loads.inc()
            t_load, ok = self._faulty_dma_time(spe, t_load)
            yield env.timeout(t_load)
            if not ok:
                _give_back()
                return "dma-fail"

        if task.working_set > 0 and task.data_key is not None:
            moved = spe.load_data(task.data_key, task.working_set)
            if moved:
                self.stats.data_misses += 1
                self.stats.data_bytes_transferred += moved
                if self.sinks_enabled:
                    self._m_data_misses.inc()
                errors = faults.dma_errors(spe, policy.max_dma_retries)
                if errors:
                    self.stats.dma_errors += errors
                yield env.timeout(
                    spe.mfc.transfer_time_with_retries(
                        moved,
                        n_errors=errors,
                        retry_penalty=faults.plan.dma_retry_penalty,
                    )
                )
                if errors > policy.max_dma_retries:
                    _give_back()
                    return "dma-fail"
            else:
                self.stats.data_hits += 1
                if self.sinks_enabled:
                    self._m_data_hits.inc()

        if workers:
            cross = sum(1 for w in workers if w.cell_id != spe.cell_id)
            inv = self.llp_model.invoke(task, 1 + len(workers), cross,
                                         actor=spe.name)
            duration = inv.duration
            self.stats.llp_invocations += 1
            self.stats.llp_worker_seconds += duration * len(workers)
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "llp", spe.name, "llp_invoke",
                    function=task.function, k=inv.k,
                    join_idle_us=inv.join_idle * 1e6,
                    master_fraction=inv.master_fraction,
                    chunks=inv.chunks,
                    schedule=inv.schedule,
                    chunk_counts=inv.chunk_counts,
                )
            # Mid-loop recovery: a worker that dies inside the busy
            # window forfeits the unexecuted tail of its chunk; the
            # master reclaims and re-executes those iterations serially
            # after the join (plus a signal to detect the loss).
            if task.loop is not None:
                t_iter = (
                    task.spe_time * task.loop.coverage / task.loop.iterations
                )
                for j, w in enumerate(workers):
                    w_death = faults.death_time(w)
                    if w_death >= env.now + duration:
                        continue
                    frac = (
                        1.0
                        if duration <= 0
                        else (env.now + duration - max(w_death, env.now))
                        / duration
                    )
                    chunk = inv.chunks[j + 1] if j + 1 < len(inv.chunks) else 0
                    reclaimed = int(math.ceil(chunk * min(1.0, frac)))
                    extra = reclaimed * t_iter + self.machine.spe_signal_latency(
                        w, spe
                    )
                    duration += extra
                    self.stats.llp_recoveries += 1
                    self._m_llp_recoveries.inc()
                    if self.tracer.enabled:
                        self.tracer.emit(
                            env.now, "fault", spe.name, "llp_recovery",
                            worker=w.name, died_at=w_death,
                            reclaimed_iterations=reclaimed,
                            extra_seconds=extra,
                        )
        else:
            duration = self._exec_time(task)

        owner = ctx.owner
        busy_others = self.machine.busy_others(spe.cell_id, owner)
        base_duration = duration
        duration *= 1.0 + min(
            self.cell.memory_contention_cap,
            self.cell.memory_contention_quadratic * busy_others**2,
        )
        # Slow-SPE noise: multiplicative service-time perturbation.
        duration *= faults.service_factor(spe)

        for w in workers:
            w.mark_busy(owner)
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_start",
                proc=ctx.rank, function=task.function, duration=duration,
                workers=tuple(w.name for w in workers),
            )
        # Master death inside the busy window loses the task: occupy the
        # SPE only until its planned death, then report the failure.
        if death < env.now + duration:
            avail = max(0.0, death - env.now)
            spe.mark_busy(owner)
            try:
                if avail > 0:
                    yield env.timeout(avail)
            finally:
                spe.mark_idle()
                for w in workers:
                    w.mark_idle()
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "spe", spe.name, "task_abort",
                    proc=ctx.rank, function=task.function, reason="spe_kill",
                )
            _give_back()
            return "spe-dead"

        try:
            yield from spe.occupy(duration, owner)
        finally:
            for w in workers:
                w.mark_idle()
        if self.tracer.enabled:
            self.tracer.emit(
                env.now, "spe", spe.name, "task_end",
                proc=ctx.rank, function=task.function,
            )
        _give_back()
        self.granularity.record_spe(task.function, base_duration)
        # SPE -> PPE completion signal.
        yield env.timeout(self.machine.signal_latency(ctx.cell_id, spe))
        return "ok"

    def _offload_tolerant(
        self, ctx: ProcContext, task: TaskSpec, trace: BootstrapTrace, decision
    ) -> Generator[Event, None, None]:
        """THE fault-tolerant off-load path — the only one in the tree.

        Each attempt dispatches and observes the outcome under the
        policy's discipline:

        * *pinned* policies retry against the same SPE (the baseline has
          no pool to fail over to; a dead or blacklisted pinned SPE means
          every remaining task of this process runs on the PPE), and a
          *spinning* process observes the attempt's fate directly, so no
          watchdog is armed;
        * *pooled* policies acquire a (possibly different) SPE per
          attempt and race the execution against a watchdog deadline; a
          watchdog-abandoned attempt becomes a harmless zombie that
          releases its SPE when it eventually finishes.

        Failed attempts back off exponentially in simulated time; after
        ``max_attempts`` failures — or when no live SPE remains — the
        task executes its PPE version, which cannot fail.
        """
        env = self.env
        tol = self.tolerance
        pinned = self.policy.pinned
        spe = ctx.pinned_spe if pinned else None
        with self.spans.span("proc", ctx.actor, "offload") as sp:
            if self.tracer.enabled:
                sp.set(function=task.function, reason=decision.reason)
            for attempt in range(tol.max_attempts):
                if pinned and not spe.in_service:
                    break
                if self.tracer.enabled:
                    # Attempt boundary: lets the causal layer rebuild
                    # retries as sibling spans with the backoff waits
                    # between them.
                    self.tracer.emit(
                        env.now, "fault", ctx.actor,
                        "offload_attempt",
                        function=task.function, attempt=attempt,
                    )
                if pinned:
                    yield ctx.thread.run(self.cell.dispatch_overhead)
                    workers: List[SPE] = []
                    release = False
                else:
                    yield ctx.thread.run(self.cell.dispatch_overhead)
                    spe = yield from self._acquire_spe(ctx, task)
                    if spe is None:
                        # Capacity exhausted: every SPE dead or blacklisted.
                        break
                    workers = self._acquire_workers(ctx, spe, task)
                    if self.tracer.enabled:
                        sp.set(spe=spe.name, llp_degree=1 + len(workers))
                    release = True
                self.stats.offloads += 1
                if self.sinks_enabled:
                    self._m_offloads.inc()
                    if self.profiler is not None:
                        self.profiler.count("runtime.offloads")
                start = env.now
                self.policy.on_dispatch(start)
                done = env.process(
                    self._spe_exec_faulty(
                        ctx, spe, workers, task, trace, release=release
                    ),
                    name=f"exec.p{ctx.rank}",
                )
                if self.policy.spin:
                    yield ctx.thread.spin_until(done)
                    winner, status = done, done.value
                else:
                    deadline = tol.attempt_deadline(
                        self._expected_attempt_time(task)
                    )
                    winner = yield env.any_of([done, env.timeout(deadline)])
                    status = (
                        done.value if winner is done else "watchdog-timeout"
                    )
                if winner is done and status == "ok":
                    self._note_spe_success(spe)
                    self.policy.on_departure(start, env.now)
                    if self.sinks_enabled:
                        self._m_offload_latency.observe(
                            (env.now - start) * 1e6
                        )
                    yield ctx.thread.run(self.cell.completion_overhead)
                    return
                if status == "watchdog-timeout":
                    self.stats.watchdog_timeouts += 1
                    self._m_watchdog.inc()
                self.stats.offload_retries += 1
                if self.sinks_enabled:
                    self._m_retries.inc()
                self._note_spe_failure(spe)
                if self.tracer.enabled:
                    self.tracer.emit(
                        env.now, "fault", ctx.actor, "offload_retry",
                        function=task.function, status=status,
                        attempt=attempt, spe=spe.name,
                    )
                yield env.timeout(tol.backoff(attempt))
            self.stats.retry_fallbacks += 1
            self._m_retry_fallbacks.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    env.now, "fault", ctx.actor, "retry_fallback",
                    function=task.function,
                )
        yield from self._ppe_fallback(ctx, task)
