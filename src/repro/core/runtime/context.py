"""Process identity and run counters shared by every runtime layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...cell.smt import CoreThread
from ...cell.spe import SPE

__all__ = ["ProcContext", "RuntimeStats"]


@dataclass
class ProcContext:
    """Identity of one MPI process on the machine."""

    rank: int
    cell_id: int
    thread: CoreThread
    pinned_spe: Optional[SPE] = None
    # Cached display labels: built once per process instead of one
    # f-string per off-load on the hot path.
    owner: str = ""       # SPE-ownership label ("p<rank>")
    actor: str = ""       # trace-actor label ("mpi<rank>")

    def __post_init__(self) -> None:
        if not self.owner:
            self.owner = f"p{self.rank}"
        if not self.actor:
            self.actor = f"mpi{self.rank}"


@dataclass
class RuntimeStats:
    """Counters accumulated by a runtime over one run."""

    offloads: int = 0
    ppe_fallbacks: int = 0
    offload_waits: int = 0
    llp_invocations: int = 0
    llp_mode_switches: int = 0
    code_loads: int = 0
    llp_worker_seconds: float = 0.0
    bootstraps_done: int = 0
    data_hits: int = 0
    data_misses: int = 0
    data_bytes_transferred: int = 0
    # Fault tolerance (all zero on a fault-free run):
    offload_retries: int = 0      # failed SPE attempts that were retried
    retry_fallbacks: int = 0      # tasks that fell back to the PPE after
                                  # exhausting SPE attempts (or losing all SPEs)
    watchdog_timeouts: int = 0    # attempts abandoned by the watchdog
    dma_errors: int = 0           # DMA errors absorbed by MFC re-issues
    llp_recoveries: int = 0       # LLP chunks reclaimed from dead workers
    spe_blacklists: int = 0       # SPEs retired after consecutive failures
