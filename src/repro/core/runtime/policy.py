"""The scheduling-policy protocol and its registry.

A :class:`SchedulingPolicy` is the *decision* half of a runtime: which
SPE count a task should use (``llp_degree``), what to observe at every
dispatch/departure, how to re-baseline when the machine loses capacity,
and whether to admit an off-load the granularity test approved.  The
*mechanics* half — SPE acquisition, DMA timing, the tolerant off-load
path — lives in :class:`~repro.core.runtime.engine.OffloadEngine`, which
delegates every decision to its bound policy.

Policies register by name so experiments select them declaratively
(``SchedulerSpec(kind="mgps")``) and third-party policies plug in
without touching core::

    from repro.core.runtime import SchedulingPolicy, register_policy

    class Greedy(SchedulingPolicy):
        name = "greedy-llp"
        def llp_degree(self, ctx):
            return max(1, self.engine.machine.pool.n_free)

    register_policy("greedy-llp", lambda spec: Greedy(),
                    description="split loops over whatever is idle")

The factory receives the :class:`~repro.core.schedulers.SchedulerSpec`
being built, so policies can read its knobs (``llp_degree``,
``history_window``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..granularity import OffloadDecision
    from ...workloads.taskspec import TaskSpec
    from .context import ProcContext
    from .engine import OffloadEngine

__all__ = [
    "SchedulingPolicy",
    "PolicyInfo",
    "register_policy",
    "resolve_policy",
    "available_policies",
]


class SchedulingPolicy:
    """Base scheduling policy: every hook is a safe default.

    Two class attributes select the engine's wait discipline:

    * ``pinned`` — the policy owns no pool; each process off-loads to its
      ``ctx.pinned_spe`` (the Linux baseline's 1:1 mapping);
    * ``spin`` — the dispatching process busy-waits on the PPE for the
      off-load to complete instead of blocking (voluntary switch).

    ``bind`` is called once when the engine is constructed; it is the
    place to size history windows or register metrics off
    ``engine.metrics`` / ``engine.machine``.
    """

    name = "policy"
    description = ""
    pinned = False
    spin = False

    def __init__(self) -> None:
        self.engine: "OffloadEngine" = None  # set by bind()

    def bind(self, engine: "OffloadEngine") -> None:
        self.engine = engine

    # -- decision hooks ---------------------------------------------------
    def llp_degree(self, ctx: "ProcContext") -> int:
        """Desired SPEs per off-loaded task (1 = no loop parallelism)."""
        return 1

    def on_dispatch(self, time: float) -> None:
        """Called at every off-load dispatch."""

    def on_departure(self, start: float, end: float) -> None:
        """Called at every off-load completion."""

    def on_capacity_change(self) -> None:
        """Called after every SPE kill or blacklist (live set shrank)."""

    def admit(self, ctx: "ProcContext", task: "TaskSpec",
              decision: "OffloadDecision") -> bool:
        """Last-look veto over an off-load the granularity test approved."""
        return True


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry: how to build a policy and how to describe it."""

    name: str
    factory: Callable[[object], SchedulingPolicy]
    description: str = ""
    knobs: Tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: Dict[str, PolicyInfo] = {}


def register_policy(
    name: str,
    factory: Callable[[object], SchedulingPolicy],
    description: str = "",
    knobs: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[object], SchedulingPolicy]:
    """Register ``factory`` under ``name``; returns the factory.

    ``factory(spec)`` receives the :class:`SchedulerSpec` being built
    and returns a fresh :class:`SchedulingPolicy`.  ``knobs`` names the
    spec fields the policy reads (documentation for ``repro
    schedulers``).  Re-registering a taken name raises unless
    ``replace=True``.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"policy {name!r} is already registered; "
            f"pass replace=True to override it"
        )
    _REGISTRY[name] = PolicyInfo(
        name=name, factory=factory, description=description,
        knobs=tuple(knobs),
    )
    return factory


def resolve_policy(name: str) -> PolicyInfo:
    """Look up a registered policy; unknown names list every known one."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown scheduling policy {name!r}; known policies: {known}"
        )
    return _REGISTRY[name]


def available_policies() -> List[PolicyInfo]:
    """Every registered policy, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
