"""Event-accurate validation of the loop work-sharing model.

:class:`~repro.core.llp.LoopParallelModel` computes each invocation's
duration in closed form (so sweeps stay within event-count budgets).
This module executes the *same* protocol as actual concurrent simulation
processes — master issuing serialized signals, workers waking after
signal latency + DMA fetch, computing their chunks, returning ``Pass``
structures, the master folding them serially — and returns the measured
makespan.

``tests/test_llp_event_validation.py`` asserts the two agree for every
(task, k) combination, which pins the closed form against ordering and
bookkeeping mistakes that pure-arithmetic tests cannot see.
"""

from __future__ import annotations

from typing import List, Optional

from ..cell.mfc import MFC
from ..cell.params import CellParams
from ..sim.engine import Environment
from ..workloads.taskspec import TaskSpec
from .llp import LLPConfig, split_iterations

__all__ = ["simulate_invocation"]

US = 1e-6


def simulate_invocation(
    task: TaskSpec,
    k: int,
    params: Optional[CellParams] = None,
    config: Optional[LLPConfig] = None,
    master_fraction: Optional[float] = None,
    cross_cell_workers: int = 0,
) -> float:
    """Run one loop-parallel invocation as real concurrent processes.

    Returns the master's total task time (the quantity the closed-form
    model predicts).  Uses a fresh, private
    :class:`~repro.sim.engine.Environment`.
    """
    params = params or CellParams()
    config = config or LLPConfig()
    loop = task.loop
    if loop is not None:
        k = min(k, loop.iterations)
    if k == 1 or loop is None or loop.coverage <= 0.0:
        return task.spe_time

    mfc = MFC(params)
    serial = task.spe_time * (1.0 - loop.coverage)
    loop_total = task.spe_time * loop.coverage
    t_iter = loop_total / loop.iterations
    f = master_fraction if master_fraction is not None else 1.0 / k
    chunks = split_iterations(loop.iterations, k, f)

    env = Environment()
    signal_fired: List = [env.event() for _ in range(k - 1)]
    pass_returned: List = [env.event() for _ in range(k - 1)]

    def worker(j: int, w_iters: int):
        yield signal_fired[j]
        sig = params.spe_spe_signal
        if j >= (k - 1) - cross_cell_workers:
            sig += 0.5 * US
        yield env.timeout(sig)
        fetch = mfc.transfer_time(
            max(16, w_iters * loop.bytes_per_iteration), concurrent=k - 1
        )
        yield env.timeout(fetch)
        yield env.timeout(w_iters * t_iter)
        yield env.timeout(params.spe_spe_signal)  # Pass back to the master
        if not loop.reduction:
            commit = mfc.transfer_time(
                max(16, w_iters * max(16, loop.bytes_per_iteration // 2)),
                concurrent=k - 1,
            )
            yield env.timeout(commit)
        pass_returned[j].succeed(env.now)

    def master():
        yield env.timeout(config.setup)
        yield env.timeout(serial)
        # Issue one signal per worker, serialized on the master.
        for j in range(k - 1):
            yield env.timeout(config.signal_issue)
            signal_fired[j].succeed(env.now)
        yield env.timeout(chunks[0] * t_iter)
        # Join: wait for every worker's Pass, then fold them serially.
        yield env.all_of(pass_returned)
        yield env.timeout((k - 1) * config.pass_process)
        return env.now

    for j, w_iters in enumerate(chunks[1:]):
        env.process(worker(j, w_iters), name=f"worker{j}")
    m = env.process(master(), name="master")
    return env.run_until_complete(m)
