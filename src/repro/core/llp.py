"""Loop-level parallelism (LLP): the work-sharing runtime across SPEs.

Implements the mechanism of Section 5.3: a master SPE signals worker SPEs
(one serialized ``mfc_put`` of a ``Pass`` structure per worker), workers
DMA their input chunks from the master's local store / shared memory,
everyone computes a contiguous chunk of the loop, workers return results
via SPE->SPE ``Pass`` sends, and the master serially folds one ``Pass``
per worker (the global-reduction bottleneck the paper calls out) before
committing to main memory.

Two features of the paper's runtime are reproduced exactly:

* **master head start** — the master begins its chunk immediately after
  issuing signals while workers still wait on signal latency + DMA, so a
  naive equal split leaves the master idle at the join;
* **adaptive load unbalancing** — idle time observed at the join across
  repeated invocations of the same loop feeds back into the master's
  chunk fraction until master and workers finish together.

The per-invocation timing is closed-form (everything is deterministic
given the chunk sizes), which keeps simulated event counts tractable;
worker SPE *occupancy* is still realized in simulated time by the runtime
(see :mod:`repro.core.runtime`), so MGPS observes genuine SPE busyness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cell.mfc import MFC
from ..cell.params import CellParams
from ..obs.metrics import NULL_REGISTRY
from ..workloads.taskspec import TaskSpec

__all__ = [
    "LLPConfig",
    "LLPInvocation",
    "LoopParallelModel",
    "split_iterations",
    "LoopSchedule",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "AdaptiveChunkSchedule",
    "register_loop_schedule",
    "resolve_loop_schedule",
    "available_loop_schedules",
]

US = 1e-6


def split_iterations(n: int, k: int, master_fraction: float) -> List[int]:
    """Split ``n`` loop iterations over ``k`` SPEs, master first.

    The master receives ``round(master_fraction * n)`` (clamped so every
    SPE gets at least one iteration); workers split the remainder as
    evenly as possible, earlier workers taking the odd leftovers.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < 1:
        raise ValueError("n must be >= 1")
    if k == 1:
        return [n]
    if not (0.0 <= master_fraction < 1.0):
        raise ValueError(
            f"master_fraction must be within [0, 1) when k > 1, "
            f"got {master_fraction!r}"
        )
    if k > n:
        raise ValueError(
            f"cannot split {n} iterations over {k} SPEs without empty chunks"
        )
    m = int(round(master_fraction * n))
    m = max(1, min(m, n - (k - 1)))
    rest = n - m
    base, extra = divmod(rest, k - 1)
    chunks = [m] + [base + (1 if i < extra else 0) for i in range(k - 1)]
    assert sum(chunks) == n
    return chunks


@dataclass(frozen=True)
class LLPConfig:
    """Tunable constants of the work-sharing runtime.

    ``signal_issue`` is the master-side cost of posting one ``mfc_put``;
    ``pass_process`` is the master-side cost of folding one returned
    ``Pass`` structure (reduction accumulate / commit confirmation);
    ``setup`` is the per-invocation fixed cost (loop bounds distribution,
    barrier arming).  ``alpha`` is the feedback gain of adaptive
    unbalancing; ``adaptive=False`` freezes the master fraction at the
    equal split (ablation).

    ``schedule`` names the :class:`LoopSchedule` used to distribute
    iterations (``static`` — the paper's single split — is the default;
    see :func:`available_loop_schedules`).  ``chunk_size`` parameterizes
    the chunk-queue schedules: the fixed chunk of ``dynamic`` and the
    floor chunk of ``guided`` (0 = schedule-specific auto).
    """

    signal_issue: float = 0.5 * US
    pass_process: float = 2.75 * US
    setup: float = 2.0 * US
    alpha: float = 0.3
    adaptive: bool = True
    head_start_bias: float = 0.0  # additive initial bias on master fraction
    schedule: str = "static"
    chunk_size: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.alpha <= 1.0):
            raise ValueError("alpha must be within [0, 1]")
        for fieldname in ("signal_issue", "pass_process", "setup"):
            if getattr(self, fieldname) < 0:
                raise ValueError(f"{fieldname} must be non-negative")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be non-negative")
        resolve_loop_schedule(self.schedule)  # unknown names raise here


@dataclass(frozen=True)
class LLPInvocation:
    """Timing breakdown of one loop-parallel task invocation."""

    duration: float          # total task time on the master SPE
    k: int                   # SPEs used (master + workers)
    chunks: Tuple[int, ...]  # iteration split, master first
    master_compute: float
    worker_start_delay: float
    join_idle: float         # master idle at the join (pre-reduction)
    reduction_time: float
    master_fraction: float   # fraction used for this invocation
    schedule: str = "static"            # LoopSchedule that produced it
    chunk_counts: Tuple[int, ...] = ()  # chunks handed to each SPE


class LoopSchedule:
    """How loop iterations are distributed over the ``k`` SPEs.

    A schedule answers one question per invocation — who computes what —
    through :meth:`plan`, which returns ``(per_spe, sequence)`` with
    exactly one of the two set:

    * ``per_spe`` — a pre-computed partition, one chunk per SPE (master
      first), like the paper's single work-sharing split;
    * ``sequence`` — an ordered queue of chunk sizes handed out
      first-come-first-served as SPEs free up (self-scheduling).

    Schedules are stateless singletons; adaptive state lives on the
    :class:`LoopParallelModel` so independent runs never share feedback.
    :meth:`feedback` is called after every invocation with the realized
    per-SPE iteration shares and idle times at the join.
    """

    name = "schedule"
    description = ""

    def plan(
        self, model: "LoopParallelModel", function: str, n: int, k: int
    ) -> Tuple[Optional[List[int]], Optional[List[int]]]:
        raise NotImplementedError

    def feedback(
        self,
        model: "LoopParallelModel",
        function: str,
        k: int,
        shares: List[int],
        idle: List[float],
        t_iter: float,
    ) -> None:
        """Post-invocation adaptation hook (default: none)."""


class StaticSchedule(LoopSchedule):
    """The paper's single split with adaptive master load unbalancing."""

    name = "static"
    description = ("one chunk per SPE, master fraction tuned by the "
                   "paper's load unbalancing (default; bit-identical to "
                   "the pre-schedule runtime)")

    def plan(self, model, function, n, k):
        return split_iterations(n, k, model.master_fraction(function, k)), None


class DynamicSchedule(LoopSchedule):
    """Self-scheduling: fixed chunks handed out first-come-first-served."""

    name = "dynamic"
    description = ("self-scheduling with a fixed chunk size "
                   "(LLPConfig.chunk_size; 0 = n / 4k), grabbed "
                   "first-come-first-served")

    def plan(self, model, function, n, k):
        c = min(n, model.config.chunk_size or max(1, n // (4 * k)))
        seq = [c] * (n // c)
        if n % c:
            seq.append(n % c)
        return None, seq


class GuidedSchedule(LoopSchedule):
    """Guided self-scheduling: chunks shrink as the loop drains."""

    name = "guided"
    description = ("guided self-scheduling: each grab takes "
                   "ceil(remaining / k) iterations, floored at "
                   "LLPConfig.chunk_size (0 = 1)")

    def plan(self, model, function, n, k):
        floor_c = max(1, model.config.chunk_size)
        seq: List[int] = []
        remaining = n
        while remaining > 0:
            c = min(remaining, max(floor_c, -(-remaining // k)))
            seq.append(c)
            remaining -= c
        return None, seq


class AdaptiveChunkSchedule(LoopSchedule):
    """The paper's load unbalancing generalized to every SPE.

    Where :class:`StaticSchedule` tunes only the master's fraction, this
    schedule keeps a full per-SPE ratio vector per ``(function, k)`` and
    nudges it toward each SPE's observed capacity — its computed share
    plus whatever it could have computed during its idle time at the
    join.
    """

    name = "adaptive"
    description = ("per-SPE chunk ratios tuned from idle times observed "
                   "at the join, keyed by (function, k) like the paper's "
                   "master fraction")

    def plan(self, model, function, n, k):
        return _largest_remainder(n, model.chunk_ratios(function, k)), None

    def feedback(self, model, function, k, shares, idle, t_iter):
        if not model.config.adaptive or t_iter <= 0.0:
            return
        capacity = [s + i / t_iter for s, i in zip(shares, idle)]
        total = sum(capacity)
        if total <= 0.0:
            return
        a = model.config.alpha
        old = model.chunk_ratios(function, k)
        new = [
            max(1e-3, (1.0 - a) * r + a * (c / total))
            for r, c in zip(old, capacity)
        ]
        s = sum(new)
        model._ratios[(function, k)] = [r / s for r in new]


def _largest_remainder(n: int, weights: List[float]) -> List[int]:
    """Apportion ``n`` iterations by ``weights``, each share >= 1."""
    total = sum(weights)
    quotas = [w / total * n for w in weights]
    counts = [max(1, int(q)) for q in quotas]
    diff = n - sum(counts)
    if diff > 0:
        order = sorted(
            range(len(weights)),
            key=lambda i: quotas[i] - int(quotas[i]),
            reverse=True,
        )
        idx = 0
        while diff > 0:
            counts[order[idx % len(order)]] += 1
            idx += 1
            diff -= 1
    while diff < 0:  # min-1 clamping overshot on tiny loops
        i = max(range(len(counts)), key=lambda j: counts[j])
        counts[i] -= 1
        diff += 1
    return counts


_SCHEDULES: Dict[str, LoopSchedule] = {}


def register_loop_schedule(
    schedule: LoopSchedule, replace: bool = False
) -> LoopSchedule:
    """Register ``schedule`` under its ``name``; returns the schedule."""
    if schedule.name in _SCHEDULES and not replace:
        raise ValueError(
            f"loop schedule {schedule.name!r} is already registered; "
            f"pass replace=True to override it"
        )
    _SCHEDULES[schedule.name] = schedule
    return schedule


def resolve_loop_schedule(name: str) -> LoopSchedule:
    """Look up a loop schedule; unknown names list every known one."""
    if name not in _SCHEDULES:
        known = ", ".join(sorted(_SCHEDULES))
        raise ValueError(
            f"unknown loop schedule {name!r}; known schedules: {known}"
        )
    return _SCHEDULES[name]


def available_loop_schedules() -> List[LoopSchedule]:
    """Every registered loop schedule, sorted by name."""
    return [_SCHEDULES[name] for name in sorted(_SCHEDULES)]


for _schedule in (
    StaticSchedule(), DynamicSchedule(), GuidedSchedule(),
    AdaptiveChunkSchedule(),
):
    register_loop_schedule(_schedule)
del _schedule


class LoopParallelModel:
    """Computes LLP invocation timings and adapts chunk fractions.

    One instance is shared by all SPEs of a run; adaptive state is keyed
    by ``(function, k)`` exactly as the paper tunes "iteration
    distribution in each invocation" of the *same loop*.
    """

    def __init__(
        self,
        params: CellParams,
        config: Optional[LLPConfig] = None,
        metrics: Optional[object] = None,
        profiler: Optional[object] = None,
        tracer: Optional[object] = None,
        clock: Optional[object] = None,
    ) -> None:
        self.params = params
        self.config = config or LLPConfig()
        self.profiler = profiler
        # Optional trace sink for per-invocation chunk fan-out detail
        # (``llp_fanout`` events).  ``clock`` supplies the simulated
        # timestamp (the model itself is a synchronous closed form); a
        # disabled tracer is collapsed to None so the invoke hot path
        # pays one ``is None`` check when observability is off.
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        self.clock = clock
        self.mfc = MFC(params)
        self._schedule = resolve_loop_schedule(self.config.schedule)
        self._fraction: Dict[Tuple[str, int], float] = {}
        self._ratios: Dict[Tuple[str, int], List[float]] = {}
        self.invocations = 0
        self.total_join_idle = 0.0
        m = metrics if metrics is not None else NULL_REGISTRY
        # With the null registry every observe is a no-op; one flag lets
        # the per-invocation hot path skip the calls entirely.
        self._metrics_on = m is not NULL_REGISTRY
        self._m_invocations = m.counter(
            "llp.invocations", "loop-parallel task invocations"
        )
        self._m_chunk = m.histogram(
            "llp.chunk_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            help="iterations per SPE chunk (master and workers)",
        )
        self._m_join_idle = m.histogram(
            "llp.join_idle_us", help="master idle time at the join, us"
        )
        self._m_degree = m.histogram(
            "llp.degree", buckets=(1, 2, 3, 4, 5, 6, 7, 8, 16),
            help="SPEs per loop-parallel invocation",
        )
        self._m_fraction = m.gauge(
            "llp.master_fraction", "master chunk fraction of the last invocation"
        )

    # -- adaptive state ---------------------------------------------------
    def master_fraction(self, function: str, k: int) -> float:
        """Current master chunk fraction for ``(function, k)``."""
        key = (function, k)
        if key not in self._fraction:
            self._fraction[key] = min(0.9, 1.0 / k + self.config.head_start_bias)
        return self._fraction[key]

    def _update_fraction(self, function: str, k: int, f_opt: float) -> None:
        if not self.config.adaptive:
            return
        key = (function, k)
        f = self._fraction[key]
        a = self.config.alpha
        self._fraction[key] = min(0.9, max(1e-3, (1 - a) * f + a * f_opt))

    def chunk_ratios(self, function: str, k: int) -> List[float]:
        """Per-SPE chunk ratios for ``(function, k)`` (adaptive schedule)."""
        key = (function, k)
        if key not in self._ratios:
            self._ratios[key] = [1.0 / k] * k
        return self._ratios[key]

    # -- invocation timing --------------------------------------------------
    def invoke(
        self,
        task: TaskSpec,
        k: int,
        cross_cell_workers: int = 0,
        actor: str = "",
    ) -> LLPInvocation:
        """Timing of ``task`` executed with work-sharing over ``k`` SPEs.

        ``cross_cell_workers`` counts workers on the other Cell of a
        blade, whose signals pay the inter-chip penalty.  ``actor``
        names the master SPE in emitted ``llp_fanout`` trace events so
        the causal layer can attribute concurrent invocations.
        """
        prof = self.profiler
        if prof is None:
            return self._invoke(task, k, cross_cell_workers, actor)
        # The invocation model is a synchronous closed form (plus the
        # chunk-queue loop for non-static schedules) — safe to wall-time.
        with prof.section("llp.invoke"):
            inv = self._invoke(task, k, cross_cell_workers, actor)
        prof.count("llp.invocations")
        prof.count("llp.chunks", len(inv.chunks))
        return inv

    def _emit_fanout(
        self,
        task: TaskSpec,
        actor: str,
        base: float,
        master_end: float,
        worker_starts: List[float],
        worker_ends: List[float],
        inv: LLPInvocation,
    ) -> None:
        """Chunk fan-out/join detail for the causal span layer.

        Offsets are relative to the invocation's start (``base`` covers
        setup + the serial fraction), so a consumer can lay master and
        worker chunk spans on the simulated timeline.
        """
        now = self.clock() if self.clock is not None else 0.0
        self.tracer.emit(
            now, "llp", "model", "llp_fanout",
            function=task.function, k=inv.k, master=actor,
            schedule=inv.schedule, base=base,
            master_end=master_end,
            worker_starts=tuple(worker_starts),
            worker_ends=tuple(worker_ends),
            join_idle=inv.join_idle, reduction=inv.reduction_time,
            duration=inv.duration,
        )

    def _invoke(
        self,
        task: TaskSpec,
        k: int,
        cross_cell_workers: int = 0,
        actor: str = "",
    ) -> LLPInvocation:
        if k < 1:
            raise ValueError("k must be >= 1")
        loop = task.loop
        if loop is not None:
            k = min(k, loop.iterations)
        # Degenerate loops (no coverage, or so little that per-iteration
        # time underflows) run serially.
        if (
            k == 1
            or loop is None
            or loop.coverage <= 0.0
            or task.spe_time * loop.coverage / loop.iterations <= 1e-15
        ):
            return LLPInvocation(
                duration=task.spe_time, k=1, chunks=(loop.iterations if loop else 0,),
                master_compute=task.spe_time, worker_start_delay=0.0,
                join_idle=0.0, reduction_time=0.0, master_fraction=1.0,
                schedule=self.config.schedule, chunk_counts=(1,),
            )
        if self._schedule.name != "static":
            return self._invoke_scheduled(task, k, cross_cell_workers, actor)
        cfg = self.config
        p = self.params

        serial = task.spe_time * (1.0 - loop.coverage)
        loop_total = task.spe_time * loop.coverage
        t_iter = loop_total / loop.iterations

        f = self.master_fraction(task.function, k)
        chunks = split_iterations(loop.iterations, k, f)

        # Master: issue k-1 signals back to back, then compute its chunk.
        t_send = (k - 1) * cfg.signal_issue
        master_compute = chunks[0] * t_iter
        master_end = t_send + master_compute

        # Workers: signal latency (+ cross-cell penalty for some), input
        # DMA (concurrent streams share the EIB), compute, Pass back.
        # Worker chunks take at most two distinct sizes (base and
        # base + 1 from the even split), so the DMA timings — pure
        # functions of the byte count — are computed once per size
        # instead of twice per worker.
        worker_ends: List[float] = []
        start_delays: List[float] = []
        dma_cache: Dict[int, Tuple[float, float]] = {}
        for j, w_iters in enumerate(chunks[1:]):
            sig = p.spe_spe_signal
            if j >= (k - 1) - cross_cell_workers:
                sig += 0.5 * US  # inter-chip hop
            cached = dma_cache.get(w_iters)
            if cached is None:
                fetch = self.mfc.transfer_time(
                    max(16, w_iters * loop.bytes_per_iteration),
                    concurrent=k - 1,
                )
                commit_back = self.mfc.transfer_time(
                    max(16, w_iters * max(16, loop.bytes_per_iteration // 2)),
                    concurrent=k - 1,
                )
                dma_cache[w_iters] = (fetch, commit_back)
            else:
                fetch, commit_back = cached
            start = (j + 1) * cfg.signal_issue + sig + fetch
            end = start + w_iters * t_iter + p.spe_spe_signal + (
                0.0 if loop.reduction else commit_back
            )
            worker_ends.append(end)
            start_delays.append(start)

        join = max(master_end, max(worker_ends))
        join_idle = join - master_end
        # Master folds one Pass per worker, serially.
        reduction = (k - 1) * cfg.pass_process
        duration = cfg.setup + serial + join + reduction

        # Feedback from measured idle time (the paper's mechanism: "timing
        # idle periods in the SPEs across multiple invocations of the same
        # loop").  A positive imbalance means the workers finished after
        # the master (master idled at the join) -> the master should take
        # more iterations.  Moving x iterations to the master changes the
        # finish-time gap by x * t_iter * (1 + 1/(k-1)).
        d_mean = sum(start_delays) / len(start_delays)
        imbalance = max(worker_ends) - master_end
        delta_iters = imbalance / (t_iter * (1.0 + 1.0 / (k - 1)))
        self._update_fraction(
            task.function, k, f + delta_iters / loop.iterations
        )

        self.invocations += 1
        self.total_join_idle += join_idle
        if self._metrics_on:
            self._m_invocations.inc()
            self._m_degree.observe(k)
            for c in chunks:
                self._m_chunk.observe(c)
            self._m_join_idle.observe(join_idle * 1e6)
            self._m_fraction.set(f)
        inv = LLPInvocation(
            duration=duration,
            k=k,
            chunks=tuple(chunks),
            master_compute=master_compute,
            worker_start_delay=d_mean,
            join_idle=join_idle,
            reduction_time=reduction,
            master_fraction=f,
            schedule="static",
            chunk_counts=(1,) * k,
        )
        if self.tracer is not None:
            self._emit_fanout(task, actor, cfg.setup + serial, master_end,
                              start_delays, worker_ends, inv)
        return inv

    def _invoke_scheduled(
        self,
        task: TaskSpec,
        k: int,
        cross_cell_workers: int,
        actor: str = "",
    ) -> LLPInvocation:
        """Invocation timing under a non-static :class:`LoopSchedule`.

        The signalling protocol is the static split's: the master issues
        ``k-1`` serialized signals and starts computing; worker ``j``
        becomes available after its signal latency (+ inter-chip hop for
        cross-cell workers).  Chunk-queue schedules then hand chunks to
        whichever SPE frees up earliest; each grab costs one
        ``signal_issue`` and workers DMA each chunk's input.
        """
        cfg = self.config
        p = self.params
        loop = task.loop
        n = loop.iterations
        serial = task.spe_time * (1.0 - loop.coverage)
        t_iter = task.spe_time * loop.coverage / n

        avail = [(k - 1) * cfg.signal_issue]
        for j in range(k - 1):
            sig = p.spe_spe_signal
            if j >= (k - 1) - cross_cell_workers:
                sig += 0.5 * US  # inter-chip hop
            avail.append((j + 1) * cfg.signal_issue + sig)

        per_spe, sequence = self._schedule.plan(self, task.function, n, k)
        assignments: List[List[int]] = [[] for _ in range(k)]
        ends = list(avail)
        if per_spe is not None:
            for i, c in enumerate(per_spe):
                if c <= 0:
                    continue
                assignments[i].append(c)
                fetch = 0.0 if i == 0 else self.mfc.transfer_time(
                    max(16, c * loop.bytes_per_iteration), concurrent=k - 1
                )
                ends[i] += fetch + c * t_iter
        else:
            for c in sequence:
                i = min(range(k), key=lambda idx: (ends[idx], idx))
                assignments[i].append(c)
                fetch = 0.0 if i == 0 else self.mfc.transfer_time(
                    max(16, c * loop.bytes_per_iteration), concurrent=k - 1
                )
                ends[i] += cfg.signal_issue + fetch + c * t_iter
        shares = [sum(a) for a in assignments]
        assert sum(shares) == n, (self._schedule.name, shares, n)

        # Workers: one Pass back each, plus the commit of their whole
        # result set when the loop is not a reduction.
        for i in range(1, k):
            commit = 0.0
            if shares[i] and not loop.reduction:
                commit = self.mfc.transfer_time(
                    max(16, shares[i] * max(16, loop.bytes_per_iteration // 2)),
                    concurrent=k - 1,
                )
            ends[i] += p.spe_spe_signal + commit

        master_end = ends[0]
        join = max(ends)
        join_idle = join - master_end
        reduction = (k - 1) * cfg.pass_process
        duration = cfg.setup + serial + join + reduction

        self._schedule.feedback(
            self, task.function, k, shares, [join - e for e in ends], t_iter
        )

        f = shares[0] / n
        self.invocations += 1
        self.total_join_idle += join_idle
        if self._metrics_on:
            self._m_invocations.inc()
            self._m_degree.observe(k)
            for per_spe_chunks in assignments:
                for c in per_spe_chunks:
                    self._m_chunk.observe(c)
            self._m_join_idle.observe(join_idle * 1e6)
            self._m_fraction.set(f)
        delays = avail[1:]
        inv = LLPInvocation(
            duration=duration,
            k=k,
            chunks=tuple(shares),
            master_compute=shares[0] * t_iter,
            worker_start_delay=sum(delays) / len(delays),
            join_idle=join_idle,
            reduction_time=reduction,
            master_fraction=f,
            schedule=self._schedule.name,
            chunk_counts=tuple(len(a) for a in assignments),
        )
        if self.tracer is not None:
            self._emit_fanout(task, actor, cfg.setup + serial, master_end,
                              delays, ends[1:], inv)
        return inv
