"""Loop-level parallelism (LLP): the work-sharing runtime across SPEs.

Implements the mechanism of Section 5.3: a master SPE signals worker SPEs
(one serialized ``mfc_put`` of a ``Pass`` structure per worker), workers
DMA their input chunks from the master's local store / shared memory,
everyone computes a contiguous chunk of the loop, workers return results
via SPE->SPE ``Pass`` sends, and the master serially folds one ``Pass``
per worker (the global-reduction bottleneck the paper calls out) before
committing to main memory.

Two features of the paper's runtime are reproduced exactly:

* **master head start** — the master begins its chunk immediately after
  issuing signals while workers still wait on signal latency + DMA, so a
  naive equal split leaves the master idle at the join;
* **adaptive load unbalancing** — idle time observed at the join across
  repeated invocations of the same loop feeds back into the master's
  chunk fraction until master and workers finish together.

The per-invocation timing is closed-form (everything is deterministic
given the chunk sizes), which keeps simulated event counts tractable;
worker SPE *occupancy* is still realized in simulated time by the runtime
(see :mod:`repro.core.runtime`), so MGPS observes genuine SPE busyness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cell.mfc import MFC
from ..cell.params import CellParams
from ..obs.metrics import NULL_REGISTRY
from ..workloads.taskspec import TaskSpec

__all__ = ["LLPConfig", "LLPInvocation", "LoopParallelModel", "split_iterations"]

US = 1e-6


def split_iterations(n: int, k: int, master_fraction: float) -> List[int]:
    """Split ``n`` loop iterations over ``k`` SPEs, master first.

    The master receives ``round(master_fraction * n)`` (clamped so every
    SPE gets at least one iteration); workers split the remainder as
    evenly as possible, earlier workers taking the odd leftovers.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < 1:
        raise ValueError("n must be >= 1")
    if k == 1:
        return [n]
    if k > n:
        raise ValueError(f"cannot split {n} iterations over {k} SPEs")
    m = int(round(master_fraction * n))
    m = max(1, min(m, n - (k - 1)))
    rest = n - m
    base, extra = divmod(rest, k - 1)
    chunks = [m] + [base + (1 if i < extra else 0) for i in range(k - 1)]
    assert sum(chunks) == n
    return chunks


@dataclass(frozen=True)
class LLPConfig:
    """Tunable constants of the work-sharing runtime.

    ``signal_issue`` is the master-side cost of posting one ``mfc_put``;
    ``pass_process`` is the master-side cost of folding one returned
    ``Pass`` structure (reduction accumulate / commit confirmation);
    ``setup`` is the per-invocation fixed cost (loop bounds distribution,
    barrier arming).  ``alpha`` is the feedback gain of adaptive
    unbalancing; ``adaptive=False`` freezes the master fraction at the
    equal split (ablation).
    """

    signal_issue: float = 0.5 * US
    pass_process: float = 2.75 * US
    setup: float = 2.0 * US
    alpha: float = 0.3
    adaptive: bool = True
    head_start_bias: float = 0.0  # additive initial bias on master fraction

    def __post_init__(self) -> None:
        if not (0.0 <= self.alpha <= 1.0):
            raise ValueError("alpha must be within [0, 1]")
        for fieldname in ("signal_issue", "pass_process", "setup"):
            if getattr(self, fieldname) < 0:
                raise ValueError(f"{fieldname} must be non-negative")


@dataclass(frozen=True)
class LLPInvocation:
    """Timing breakdown of one loop-parallel task invocation."""

    duration: float          # total task time on the master SPE
    k: int                   # SPEs used (master + workers)
    chunks: Tuple[int, ...]  # iteration split, master first
    master_compute: float
    worker_start_delay: float
    join_idle: float         # master idle at the join (pre-reduction)
    reduction_time: float
    master_fraction: float   # fraction used for this invocation


class LoopParallelModel:
    """Computes LLP invocation timings and adapts chunk fractions.

    One instance is shared by all SPEs of a run; adaptive state is keyed
    by ``(function, k)`` exactly as the paper tunes "iteration
    distribution in each invocation" of the *same loop*.
    """

    def __init__(
        self,
        params: CellParams,
        config: Optional[LLPConfig] = None,
        metrics: Optional[object] = None,
    ) -> None:
        self.params = params
        self.config = config or LLPConfig()
        self.mfc = MFC(params)
        self._fraction: Dict[Tuple[str, int], float] = {}
        self.invocations = 0
        self.total_join_idle = 0.0
        m = metrics if metrics is not None else NULL_REGISTRY
        self._m_invocations = m.counter(
            "llp.invocations", "loop-parallel task invocations"
        )
        self._m_chunk = m.histogram(
            "llp.chunk_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            help="iterations per SPE chunk (master and workers)",
        )
        self._m_join_idle = m.histogram(
            "llp.join_idle_us", help="master idle time at the join, us"
        )
        self._m_degree = m.histogram(
            "llp.degree", buckets=(1, 2, 3, 4, 5, 6, 7, 8, 16),
            help="SPEs per loop-parallel invocation",
        )
        self._m_fraction = m.gauge(
            "llp.master_fraction", "master chunk fraction of the last invocation"
        )

    # -- adaptive state ---------------------------------------------------
    def master_fraction(self, function: str, k: int) -> float:
        """Current master chunk fraction for ``(function, k)``."""
        key = (function, k)
        if key not in self._fraction:
            self._fraction[key] = min(0.9, 1.0 / k + self.config.head_start_bias)
        return self._fraction[key]

    def _update_fraction(self, function: str, k: int, f_opt: float) -> None:
        if not self.config.adaptive:
            return
        key = (function, k)
        f = self._fraction[key]
        a = self.config.alpha
        self._fraction[key] = min(0.9, max(1e-3, (1 - a) * f + a * f_opt))

    # -- invocation timing --------------------------------------------------
    def invoke(
        self,
        task: TaskSpec,
        k: int,
        cross_cell_workers: int = 0,
    ) -> LLPInvocation:
        """Timing of ``task`` executed with work-sharing over ``k`` SPEs.

        ``cross_cell_workers`` counts workers on the other Cell of a
        blade, whose signals pay the inter-chip penalty.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        loop = task.loop
        if loop is not None:
            k = min(k, loop.iterations)
        # Degenerate loops (no coverage, or so little that per-iteration
        # time underflows) run serially.
        if (
            k == 1
            or loop is None
            or loop.coverage <= 0.0
            or task.spe_time * loop.coverage / loop.iterations <= 1e-15
        ):
            return LLPInvocation(
                duration=task.spe_time, k=1, chunks=(loop.iterations if loop else 0,),
                master_compute=task.spe_time, worker_start_delay=0.0,
                join_idle=0.0, reduction_time=0.0, master_fraction=1.0,
            )
        cfg = self.config
        p = self.params

        serial = task.spe_time * (1.0 - loop.coverage)
        loop_total = task.spe_time * loop.coverage
        t_iter = loop_total / loop.iterations

        f = self.master_fraction(task.function, k)
        chunks = split_iterations(loop.iterations, k, f)

        # Master: issue k-1 signals back to back, then compute its chunk.
        t_send = (k - 1) * cfg.signal_issue
        master_compute = chunks[0] * t_iter
        master_end = t_send + master_compute

        # Workers: signal latency (+ cross-cell penalty for some), input
        # DMA (concurrent streams share the EIB), compute, Pass back.
        worker_ends: List[float] = []
        start_delays: List[float] = []
        for j, w_iters in enumerate(chunks[1:]):
            sig = p.spe_spe_signal
            if j >= (k - 1) - cross_cell_workers:
                sig += 0.5 * US  # inter-chip hop
            fetch = self.mfc.transfer_time(
                max(16, w_iters * loop.bytes_per_iteration), concurrent=k - 1
            )
            start = (j + 1) * cfg.signal_issue + sig + fetch
            commit_back = self.mfc.transfer_time(
                max(16, w_iters * max(16, loop.bytes_per_iteration // 2)),
                concurrent=k - 1,
            )
            end = start + w_iters * t_iter + p.spe_spe_signal + (
                0.0 if loop.reduction else commit_back
            )
            worker_ends.append(end)
            start_delays.append(start)

        join = max(master_end, max(worker_ends))
        join_idle = join - master_end
        # Master folds one Pass per worker, serially.
        reduction = (k - 1) * cfg.pass_process
        duration = cfg.setup + serial + join + reduction

        # Feedback from measured idle time (the paper's mechanism: "timing
        # idle periods in the SPEs across multiple invocations of the same
        # loop").  A positive imbalance means the workers finished after
        # the master (master idled at the join) -> the master should take
        # more iterations.  Moving x iterations to the master changes the
        # finish-time gap by x * t_iter * (1 + 1/(k-1)).
        d_mean = sum(start_delays) / len(start_delays)
        imbalance = max(worker_ends) - master_end
        delta_iters = imbalance / (t_iter * (1.0 + 1.0 / (k - 1)))
        self._update_fraction(
            task.function, k, f + delta_iters / loop.iterations
        )

        self.invocations += 1
        self.total_join_idle += join_idle
        self._m_invocations.inc()
        self._m_degree.observe(k)
        for c in chunks:
            self._m_chunk.observe(c)
        self._m_join_idle.observe(join_idle * 1e6)
        self._m_fraction.set(f)
        return LLPInvocation(
            duration=duration,
            k=k,
            chunks=tuple(chunks),
            master_compute=master_compute,
            worker_start_delay=d_mean,
            join_idle=join_idle,
            reduction_time=reduction,
            master_fraction=f,
        )
