"""Counters, gauges and fixed-bucket histograms for scheduler decisions.

The paper's schedulers are feedback loops — MGPS watches a sliding window
of off-loads to estimate exposed task parallelism ``U``, the LLP runtime
tunes chunk sizes from observed SPE idle time, and the granularity test
accepts or throttles off-loads from measured kernel times.  This module
gives those decision points named, queryable instruments so a run can be
audited instead of summarized:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (e.g. the current MGPS degree);
* :class:`Histogram` — fixed-bucket distribution with interpolated
  percentiles (chunk sizes, off-load latencies, ``U`` samples);
* :class:`MetricsRegistry` — get-or-create instrument store with a
  deterministic, diff-stable snapshot/render.

Zero dependencies, no wall clock, no global state: a registry belongs to
one run, exactly like an :class:`~repro.sim.engine.Environment`.  When no
registry is supplied the runtimes fall back to :data:`NULL_REGISTRY`,
whose instruments are shared no-op singletons — the disabled path is one
method call that does nothing, so instrumentation never perturbs or
slows a sweep that did not ask for it.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "labeled",
    "stable_round",
]


def labeled(name: str, **labels: Any) -> str:
    """Append a Prometheus-style label suffix to a metric name.

    ``labeled("runtime.offloads", scheduler="mgps")`` gives
    ``'runtime.offloads{scheduler="mgps"}'``.  Labels are sorted so the
    same label set always yields the same key; use it to keep
    per-scheduler registries collision-free when merging them into one
    snapshot (see :meth:`MetricsRegistry.merge`).
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"

# 1-2-5 decades covering microseconds-to-hours style magnitudes; callers
# with a known range (chunk sizes, U samples) pass their own bounds.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(-6, 7) for m in (1, 2, 5)
)


def stable_round(value: Any, digits: int = 9) -> Any:
    """Round floats for diff-stable snapshots (and normalize -0.0)."""
    if isinstance(value, float):
        r = round(value, digits)
        return 0.0 if r == 0 else r
    return value


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def copy_as(self, name: str) -> "Counter":
        c = Counter(name, self.help)
        c.value = self.value
        return c

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": stable_round(self.value)}

    def render(self) -> str:
        return f"{self.value:g}"


class Gauge:
    """Last-written value of a quantity that goes up and down."""

    __slots__ = ("name", "help", "value", "updates")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def copy_as(self, name: str) -> "Gauge":
        g = Gauge(name, self.help)
        g.value = self.value
        g.updates = self.updates
        return g

    def merge_from(self, other: "Gauge") -> None:
        # Last write wins, as for a single gauge; an untouched gauge
        # (updates == 0) never overrides a written one.
        if other.updates:
            self.value = other.value
        self.updates += other.updates

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "value": stable_round(float(self.value)),
            "updates": self.updates,
        }

    def render(self) -> str:
        return f"{self.value:g}"


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    ``buckets`` are the upper (inclusive) bounds of the finite buckets;
    one overflow bucket catches everything above the last bound.  The
    bucket layout is frozen at creation so snapshots of the same
    instrument always diff cleanly.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total",
                 "min", "max")
    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def copy_as(self, name: str) -> "Histogram":
        h = Histogram(name, self.bounds, help=self.help)
        h.counts = list(self.counts)
        h.count = self.count
        h.total = self.total
        h.min = self.min
        h.max = self.max
        return h

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket "
                f"layouts"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated percentile ``p`` in [0, 100] (0.0 when empty)."""
        if not (0.0 <= p <= 100.0):
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.min if i == 0 else self.bounds[i - 1]
                hi = self.max if i == len(self.bounds) else self.bounds[i]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (target - cum) / n
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            cum += n
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "mean": stable_round(self.mean),
            "min": stable_round(self.min if self.count else 0.0),
            "max": stable_round(self.max if self.count else 0.0),
            "p50": stable_round(self.percentile(50)),
            "p90": stable_round(self.percentile(90)),
            "p99": stable_round(self.percentile(99)),
        }
        buckets = [
            [stable_round(b), n]
            for b, n in zip(self.bounds, self.counts)
            if n
        ]
        if self.counts[-1]:
            buckets.append(["+inf", self.counts[-1]])
        snap["buckets"] = buckets
        return snap

    def render(self) -> str:
        if self.count == 0:
            return "count=0"
        return (
            f"count={self.count} mean={self.mean:g} "
            f"p50={self.percentile(50):g} p90={self.percentile(90):g} "
            f"max={self.max:g}"
        )


class MetricsRegistry:
    """Get-or-create store of named instruments for one run."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        inst = self._metrics.get(name)
        if inst is None:
            inst = self._metrics[name] = cls(name, *args, **kwargs)
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets, help=help)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry", **labels: Any) -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry, in place.

        With ``labels``, every incoming name gains a :func:`labeled`
        suffix (``merge(reg, scheduler="mgps")`` files ``runtime.offloads``
        as ``runtime.offloads{scheduler="mgps"}``), so per-scheduler
        registries from a comparison combine into one snapshot without
        key collisions.  When a (suffixed) name already exists, same-kind
        instruments combine (counters add, gauges last-write-wins,
        same-layout histograms add bucket counts); a kind mismatch raises
        :class:`TypeError`.  Returns ``self`` for chaining.
        """
        for name in other.names():
            inst = other.get(name)
            target = labeled(name, **labels)
            mine = self._metrics.get(target)
            if mine is None:
                self._metrics[target] = inst.copy_as(target)
            elif mine.kind != inst.kind:
                raise TypeError(
                    f"metric {target!r} already registered as {mine.kind}, "
                    f"cannot merge a {inst.kind}"
                )
            else:
                mine.merge_from(inst)
        return self

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic dict snapshot: sorted names, rounded floats."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """Aligned text snapshot (the ``repro stats`` view)."""
        if not self._metrics:
            return "(no metrics recorded)"
        lines = [f"metrics snapshot ({len(self._metrics)} instruments)"]
        width = max(len(n) for n in self._metrics)
        for name in self.names():
            inst = self._metrics[name]
            lines.append(f"  {inst.kind:<9s} {name:<{width}s}  {inst.render()}")
        return "\n".join(lines)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    kind = "null"
    name = ""
    help = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def render(self) -> str:
        return "(disabled)"


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled path: every instrument is the same no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return "{}"

    def render(self) -> str:
        return "(metrics disabled)"


NULL_REGISTRY = NullRegistry()
