"""Critical-path extraction and aggregate latency breakdowns.

Consumes the causal trees from :mod:`repro.obs.causal` and answers the
question the raw percentiles cannot: *where did the time go* — per
job, per tenant, per template, and for the jobs that define the tail.

Every aggregate is deterministic: exemplar jobs are picked by the same
nearest-rank rule as :func:`repro.serve.slo.exact_percentile`, ties
break on job id, and all published floats go through
:func:`~repro.obs.metrics.stable_round`.  A run with zero completed
jobs yields an explicit empty breakdown (``completed == 0`` plus a
note) instead of a crash or a division by zero.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional

from .causal import JobTree, PHASE_ORDER
from .metrics import labeled, stable_round

__all__ = [
    "job_summary",
    "aggregate_breakdown",
    "top_slowest",
    "publish_breakdown",
    "render_explain",
]

_PERCENTILES = (50, 95, 99)


def _completed(trees: Mapping[int, JobTree]) -> List[JobTree]:
    return [t for t in trees.values() if t.status == "completed"]


def job_summary(tree: JobTree, tol: float = 1e-6) -> Dict[str, Any]:
    """One job's phase composition; validates reconciliation first."""
    tree.validate(tol)
    phases = tree.phase_durations()
    sojourn = tree.sojourn
    dominant = max(phases.items(), key=lambda kv: (kv[1], kv[0]))[0] \
        if phases else ""
    return {
        "job_id": tree.job_id,
        "tenant": tree.tenant,
        "template": tree.template,
        "variant": tree.variant,
        "status": tree.status,
        "sojourn_s": stable_round(sojourn),
        "phases_s": {k: stable_round(v) for k, v in phases.items()},
        "phase_shares": {
            k: stable_round(v / sojourn if sojourn > 0 else 0.0)
            for k, v in phases.items()
        },
        "dominant_phase": dominant,
    }


def _nearest_rank(sorted_trees: List[JobTree], p: float) -> JobTree:
    idx = max(0, math.ceil(p / 100.0 * len(sorted_trees)) - 1)
    return sorted_trees[idx]


def _group_breakdown(group: List[JobTree]) -> Dict[str, Any]:
    n = len(group)
    totals: Dict[str, float] = {}
    sojourn_total = 0.0
    for tree in group:
        sojourn_total += tree.sojourn
        for name, dur in tree.phase_durations().items():
            totals[name] = totals.get(name, 0.0) + dur
    ordered = [p for p in PHASE_ORDER if p in totals] + \
        sorted(k for k in totals if k not in PHASE_ORDER)
    by_latency = sorted(group, key=lambda t: (t.sojourn, t.job_id))
    exemplars = {}
    for p in _PERCENTILES:
        t = _nearest_rank(by_latency, p)
        s = job_summary(t)
        exemplars[f"p{p}"] = {
            "job_id": s["job_id"],
            "tenant": s["tenant"],
            "sojourn_s": s["sojourn_s"],
            "dominant_phase": s["dominant_phase"],
            "phase_shares": s["phase_shares"],
        }
    return {
        "jobs": n,
        "mean_sojourn_s": stable_round(sojourn_total / n),
        "mean_phase_s": {
            k: stable_round(totals[k] / n) for k in ordered
        },
        "phase_shares": {
            k: stable_round(
                totals[k] / sojourn_total if sojourn_total > 0 else 0.0
            )
            for k in ordered
        },
        "percentile_exemplars": exemplars,
    }


def aggregate_breakdown(trees: Mapping[int, JobTree]) -> Dict[str, Any]:
    """Overall + per-tenant + per-template latency breakdown.

    The empty state is explicit: with no completed jobs the result is
    ``{"completed": 0, "note": ...}`` and every consumer (CLI, report,
    bench rows) renders it as such rather than dividing by zero.
    """
    completed = _completed(trees)
    lost = sum(1 for t in trees.values() if t.status == "lost")
    if not completed:
        return {
            "completed": 0,
            "lost": lost,
            "note": "no completed jobs — nothing to attribute",
        }
    out: Dict[str, Any] = {"completed": len(completed), "lost": lost}
    out["overall"] = _group_breakdown(completed)
    tenants: Dict[str, List[JobTree]] = {}
    templates: Dict[str, List[JobTree]] = {}
    for t in completed:
        tenants.setdefault(t.tenant, []).append(t)
        templates.setdefault(t.template or "?", []).append(t)
    out["tenants"] = {
        name: _group_breakdown(group)
        for name, group in sorted(tenants.items())
    }
    out["templates"] = {
        name: _group_breakdown(group)
        for name, group in sorted(templates.items())
    }
    return out


def top_slowest(trees: Mapping[int, JobTree], k: int = 5,
                tenant: Optional[str] = None) -> List[Dict[str, Any]]:
    """The ``k`` slowest completed jobs, slowest first, ties on job id."""
    pool = _completed(trees)
    if tenant is not None:
        pool = [t for t in pool if t.tenant == tenant]
    pool.sort(key=lambda t: (-t.sojourn, t.job_id))
    return [job_summary(t) for t in pool[:k]]


def publish_breakdown(metrics, breakdown: Mapping[str, Any]) -> None:
    """Publish breakdown shares as ``serve.breakdown.*`` gauges."""
    metrics.gauge(
        "serve.breakdown.completed",
        help="completed jobs covered by the latency breakdown",
    ).set(breakdown.get("completed", 0))
    overall = breakdown.get("overall")
    if not overall:
        return
    for phase, share in overall["phase_shares"].items():
        key = phase.replace("-", "_")
        metrics.gauge(
            f"serve.breakdown.{key}_share",
            help=f"share of total sojourn spent in the {phase} phase",
        ).set(share)
    for tenant, group in breakdown.get("tenants", {}).items():
        for phase, share in group["phase_shares"].items():
            key = phase.replace("-", "_")
            metrics.gauge(
                labeled(f"serve.breakdown.{key}_share", tenant=tenant)
            ).set(share)


def _fmt_path(summary: Dict[str, Any]) -> List[str]:
    lines = [
        f"job {summary['job_id']} ({summary['tenant']}, "
        f"{summary['template'] or '?'} v{summary['variant']}): "
        f"sojourn {summary['sojourn_s']:.3f} s, "
        f"dominant phase {summary['dominant_phase']}"
    ]
    for name, dur in summary["phases_s"].items():
        share = summary["phase_shares"][name]
        lines.append(f"    {name:<26s} {dur:>12.3f} s  ({share:6.1%})")
    return lines


def render_explain(trees: Mapping[int, JobTree],
                   breakdown: Mapping[str, Any],
                   top: int = 5,
                   job: Optional[int] = None,
                   tenant: Optional[str] = None) -> str:
    """Human-readable attribution: critical paths + aggregate shares."""
    lines: List[str] = []
    if breakdown.get("completed", 0) == 0:
        lines.append("no completed jobs — nothing to attribute")
        lost = breakdown.get("lost", 0)
        total = len(trees)
        if total:
            lines.append(
                f"({total} job(s) observed: {lost} lost, "
                f"{total - lost} still in flight or shed)"
            )
        return "\n".join(lines)
    if job is not None:
        tree = trees.get(job)
        if tree is None:
            return f"job {job} not found in this trace"
        lines.extend(_fmt_path(job_summary(tree)))
        return "\n".join(lines)
    slowest = top_slowest(trees, k=top, tenant=tenant)
    scope = f" (tenant {tenant})" if tenant is not None else ""
    lines.append(
        f"top {len(slowest)} slowest of {breakdown['completed']} "
        f"completed jobs{scope}:"
    )
    for s in slowest:
        lines.append("")
        lines.extend(_fmt_path(s))
    lines.append("")
    lines.append("aggregate phase shares of total sojourn:")
    overall = breakdown["overall"]
    for name, share in overall["phase_shares"].items():
        lines.append(
            f"    {name:<26s} {overall['mean_phase_s'][name]:>12.3f} s mean"
            f"  ({share:6.1%})"
        )
    for tname, group in breakdown.get("tenants", {}).items():
        if tenant is not None and tname != tenant:
            continue
        dom = max(group["phase_shares"].items(),
                  key=lambda kv: (kv[1], kv[0]))[0]
        lines.append(
            f"    tenant {tname}: {group['jobs']} jobs, mean sojourn "
            f"{group['mean_sojourn_s']:.3f} s, dominant phase {dom}"
        )
    return "\n".join(lines)
