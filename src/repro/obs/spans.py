"""Span API: nested, attributed intervals layered on the Tracer.

A *span* is a named interval on one actor's timeline — an off-load from
dispatch to completion, a bootstrap from first to last task.  Spans are
recorded as paired ``span_begin``/``span_end`` :class:`TraceRecord`
entries on the ordinary :class:`~repro.sim.trace.Tracer`, so they ride
the existing trace infrastructure (filtering, JSONL persistence) and
export to Chrome/Perfetto "B"/"E" events with correct nesting.

Usage::

    spans = SpanRecorder(tracer, env)          # env supplies .now
    with spans.span("proc", "mpi0", "offload") as sp:
        ...
        sp.set(function=task.function)         # per-span attributes

Cost discipline: when the tracer is disabled, :meth:`SpanRecorder.span`
is a single attribute check returning a shared no-op span — no object
allocation, no time read.  Hot paths should avoid passing keyword
attributes at the call site (the kwargs dict would be built regardless)
and use :meth:`Span.set` inside an ``if tracer.enabled`` guard instead.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Union

from ..sim.trace import Tracer

__all__ = ["Span", "SpanRecorder", "NULL_SPAN"]


class Span:
    """One open interval; use as a context manager."""

    __slots__ = ("_recorder", "category", "actor", "name", "_attrs", "start")

    def __init__(
        self, recorder: "SpanRecorder", category: str, actor: str,
        name: str, attrs: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.category = category
        self.actor = actor
        self.name = name
        self._attrs = attrs
        self.start = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; they appear on the ``span_end`` record."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        rec = self._recorder
        self.start = rec.clock()
        depth = rec._depth.get(self.actor, 0)
        rec._depth[self.actor] = depth + 1
        rec.tracer.emit(
            self.start, self.category, self.actor, "span_begin",
            name=self.name, depth=depth,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = self._recorder
        depth = rec._depth.get(self.actor, 1) - 1
        if depth:
            rec._depth[self.actor] = depth
        else:
            rec._depth.pop(self.actor, None)
        payload: Dict[str, Any] = {"name": self.name, "depth": depth}
        if exc_type is not None:
            payload["error"] = exc_type.__name__
        payload.update(self._attrs)
        rec.tracer.emit(
            rec.clock(), self.category, self.actor, "span_end", payload
        )
        return False


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()
    start = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Binds a tracer to a clock and tracks per-actor nesting depth.

    ``clock`` is either a zero-argument callable returning the current
    time or an object with a ``now`` attribute (an
    :class:`~repro.sim.engine.Environment`).
    """

    __slots__ = ("tracer", "clock", "_depth")

    def __init__(self, tracer: Tracer, clock: Union[Callable[[], float], Any]) -> None:
        self.tracer = tracer
        if callable(clock):
            self.clock = clock
        else:
            self.clock = lambda: clock.now
        self._depth: Dict[str, int] = {}

    def span(self, category: str, actor: str, name: str, **attrs: Any):
        """Open a span; returns :data:`NULL_SPAN` when tracing is off."""
        if not self.tracer.enabled:
            return NULL_SPAN
        return Span(self, category, actor, name, attrs)
