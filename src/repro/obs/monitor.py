"""Scheduler health monitor: rule-based verdicts over a finished run.

PR 1 gave runs spans, metrics and exporters; this module *interprets*
them.  The paper's argument is a set of health properties — EDTLP keeps
all eight SPEs fed, MGPS throttles LLP on the window utilization ``U``,
LLP's adaptive unbalancing shrinks join idle — and each detector here
checks one of them against a run's span stream (:class:`Tracer`) and
:class:`~repro.obs.metrics.MetricsRegistry`:

================  ===========================================================
detector          fires when
================  ===========================================================
spe-starvation    an SPE idles beyond a threshold while the PPE run queue
                  was non-empty (off-loads blocked waiting for an SPE)
mgps-oscillation  the MGPS window repeatedly toggles LLP on/off across
                  consecutive decisions (hysteresis failure)
window-u-sat      the window shows low exposed TLP (``U`` at or below half
                  the SPEs) for most decisions yet LLP never fires
llp-imbalance     master/worker join idle for one loop does not shrink
                  across invocations (adaptive unbalancing not converging)
granularity-churn the granularity test flips accept<->reject repeatedly
                  for the same function (off-load decision flapping)
fault-storm       injected faults forced a high ratio of retried off-load
                  attempts (the tolerance machinery is saturating)
degraded-capacity SPEs were lost to kills or blacklisting; critical when
                  no SPE survived and everything ran on the PPE
queue-saturation  the serving front-end shed a high fraction of offered
                  jobs, or its queues ran near the admission bound for
                  much of the run (inert unless a serving run recorded
                  arrivals)
blade-breaker     a blade's circuit breaker opened; critical when it
                  flapped open repeatedly without a completed recovery
                  (inert unless the resilience layer recorded opens)
hedge-storm       speculative hedges were issued for a high fraction of
                  dispatched units — the straggler threshold is too low
                  or the fleet is systemically slow
deadline-shedding deadline enforcement aborted a high fraction of
                  admitted jobs (the fleet cannot meet the contracted
                  deadlines at this load)
================  ===========================================================

Findings are structured (:class:`HealthFinding`) so CI can assert on them
(``repro health`` exits non-zero when any fire) and the HTML report can
render them.  The threshold mini-language (``"spe_idle_ratio>0.25"``) is
shared with ``repro stats --fail-on`` via :func:`parse_threshold`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..sim.trace import TraceRecord, Tracer

__all__ = [
    "HealthFinding",
    "HealthMonitor",
    "MonitorConfig",
    "Threshold",
    "analyze_run",
    "parse_threshold",
    "render_findings",
    "resolve_metric",
]


# -- threshold mini-language --------------------------------------------------

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_THRESHOLD_RE = re.compile(
    r"^\s*([A-Za-z_][\w.{}=\",-]*?)\s*(>=|<=|==|!=|>|<)\s*"
    r"([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*$"
)


@dataclass(frozen=True)
class Threshold:
    """One parsed rule: ``metric op value`` describes a *bad* condition."""

    metric: str
    op: str
    value: float

    def violated(self, observed: float) -> bool:
        """True when ``observed`` satisfies the (bad) condition."""
        return _OPS[self.op](observed, self.value)

    def __str__(self) -> str:
        return f"{self.metric}{self.op}{self.value:g}"


def parse_threshold(expr: str) -> Threshold:
    """Parse ``"spe_idle_ratio>0.25"`` into a :class:`Threshold`.

    The metric side is a bare name (summary key or registry metric name,
    label suffixes included); the operator is one of ``> >= < <= == !=``;
    the value is a number.  Raises :class:`ValueError` on anything else.
    """
    m = _THRESHOLD_RE.match(expr)
    if m is None:
        raise ValueError(
            f"cannot parse threshold {expr!r} "
            f"(expected e.g. 'spe_idle_ratio>0.25')"
        )
    return Threshold(m.group(1), m.group(2), float(m.group(3)))


def resolve_metric(metric: str, summary: Mapping[str, Any], registry) -> float:
    """Look up a threshold's metric in the summary, then the registry.

    An unknown name raises :class:`ValueError` that *lists every known
    metric name*, so a typo in ``--fail-on`` (or a monitor config) is
    diagnosed in one round trip instead of by guesswork.
    """
    if metric in summary:
        return float(summary[metric])
    inst = registry.get(metric) if registry is not None else None
    if inst is not None:
        return float(inst.value)
    known = sorted(
        set(summary)
        | (set(registry.names()) if registry is not None else set())
    )
    raise ValueError(
        f"unknown metric {metric!r}; known metrics: {', '.join(known)}"
    )


# -- findings -----------------------------------------------------------------

@dataclass(frozen=True)
class HealthFinding:
    """One detector verdict on one run."""

    detector: str
    severity: str  # "warning" | "critical"
    summary: str
    evidence: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "summary": self.summary,
            "evidence": dict(self.evidence),
        }


def render_findings(findings: List[HealthFinding]) -> str:
    """Terminal rendering of a finding list (the ``repro health`` view)."""
    if not findings:
        return "health: OK (0 findings)"
    lines = [f"health: {len(findings)} finding(s)"]
    for f in findings:
        lines.append(f"  [{f.severity}] {f.detector}: {f.summary}")
        for key in sorted(f.evidence):
            lines.append(f"      {key} = {f.evidence[key]}")
    return "\n".join(lines)


# -- configuration ------------------------------------------------------------

@dataclass(frozen=True)
class MonitorConfig:
    """Detector thresholds, grounded in the paper's operating points.

    Defaults are calibrated so a healthy Figure-8 MGPS run reports zero
    findings while the known pathologies (LLP trigger disabled, adaptive
    unbalancing frozen, flapping granularity test) fire.
    """

    # spe-starvation: idle fraction that counts as starved, provided the
    # run queue was non-empty (at least one off-load blocked for an SPE).
    spe_idle_ratio: float = 0.5
    starvation_min_waits: int = 1
    # mgps-oscillation: LLP on/off direction changes across consecutive
    # window decisions.  A healthy run settles after at most a couple.
    oscillation_toggles: int = 6
    oscillation_min_decisions: int = 8
    # window-u-saturation: "low U" is U <= saturation_u_fraction * n_spes
    # (the paper's trigger point is half the SPEs); the detector fires
    # when at least saturation_low_windows of decisions are low-U yet LLP
    # never activated.
    saturation_u_fraction: float = 0.5
    saturation_low_windows: float = 0.5
    saturation_min_decisions: int = 4
    # llp-imbalance: for loops with at least imbalance_min_invocations,
    # the mean join idle of the last third must fall below
    # imbalance_shrink_ratio x the first third's, unless it is already
    # under imbalance_floor_us (converged).
    imbalance_min_invocations: int = 9
    imbalance_shrink_ratio: float = 0.9
    imbalance_floor_us: float = 2.0
    # granularity-churn: accept<->reject reversals per function.
    churn_flips: int = 4
    # fault-storm: retried attempts / total off-load dispatches above this
    # ratio (with at least storm_min_events dispatches) means the
    # tolerance machinery is absorbing a storm rather than stray faults.
    storm_retry_ratio: float = 0.25
    storm_min_events: int = 8
    # queue-saturation: fires when rejected/arrivals exceeds
    # queue_rejection_ratio, or the p90 of the serving queue-depth
    # histogram reaches queue_depth_ratio x the admission bound.  Needs
    # at least queue_min_arrivals offered jobs; a run with no serving
    # metrics never fires it.
    queue_rejection_ratio: float = 0.1
    queue_depth_ratio: float = 0.8
    queue_min_arrivals: int = 20
    # blade-breaker: any open is worth a warning; breaker_flap_opens
    # opens with zero completed recoveries escalates to critical.
    breaker_min_opens: int = 1
    breaker_flap_opens: int = 3
    # hedge-storm: hedges / dispatched units above this ratio (with at
    # least hedge_min_units dispatched) means speculation is systemic.
    hedge_storm_ratio: float = 0.25
    hedge_min_units: int = 8
    # deadline-shedding: deadline aborts / admitted above this ratio.
    deadline_abort_ratio: float = 0.1

    def with_(self, **kwargs: Any) -> "MonitorConfig":
        return replace(self, **kwargs)


# -- monitor ------------------------------------------------------------------

def _registry_value(registry, name: str, default: float = 0.0) -> float:
    inst = registry.get(name) if registry is not None else None
    if inst is None:
        return default
    return float(inst.value)


_SPE_UTIL_RE = re.compile(r'^spe\.utilization\{spe="(?P<spe>[^"]+)"\}$')
_FLIP_PREFIX = "granularity.flips."


class HealthMonitor:
    """Runs every detector over one finished run's telemetry."""

    def __init__(self, config: Optional[MonitorConfig] = None) -> None:
        self.config = config or MonitorConfig()

    # -- shared readers ---------------------------------------------------
    def _makespan(self, tracer: Optional[Tracer], registry) -> float:
        raw = _registry_value(registry, "run.raw_makespan_s")
        if raw > 0:
            return raw
        if tracer is not None and tracer.records:
            return max(r.time for r in tracer.records)
        return 0.0

    def _n_spes(self, tracer: Optional[Tracer], registry) -> int:
        n = int(_registry_value(registry, "run.n_spes"))
        if n > 0:
            return n
        if tracer is not None:
            actors = {r.actor for r in tracer.records if r.category == "spe"}
            if actors:
                return len(actors)
        return 8

    def _spe_utilizations(
        self, tracer: Optional[Tracer], registry, makespan: float
    ) -> Dict[str, float]:
        """Per-SPE busy fraction: registry gauges first, trace fallback."""
        out: Dict[str, float] = {}
        if registry is not None:
            for name in registry.names():
                m = _SPE_UTIL_RE.match(name)
                if m:
                    out[m.group("spe")] = float(registry.get(name).value)
        if out or tracer is None or makespan <= 0:
            return out
        busy: Dict[str, float] = {}
        open_at: Dict[str, float] = {}
        for r in tracer.records:
            if r.category != "spe":
                continue
            if r.event == "task_start":
                open_at.setdefault(r.actor, r.time)
            elif r.event == "task_end" and r.actor in open_at:
                busy[r.actor] = busy.get(r.actor, 0.0) + r.time - open_at.pop(r.actor)
        # A task left open by an aborted run is busy through the end.
        for actor, since in open_at.items():
            busy[actor] = busy.get(actor, 0.0) + makespan - since
        return {a: b / makespan for a, b in busy.items()}

    @staticmethod
    def _decisions(tracer: Optional[Tracer]) -> List[TraceRecord]:
        if tracer is None:
            return []
        return tracer.filter(category="sched", event="decision")

    # -- detectors --------------------------------------------------------
    def _detect_spe_starvation(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        waits = _registry_value(registry, "runtime.offload_waits")
        if waits < cfg.starvation_min_waits:
            return  # run queue never backed up: idle SPEs are slack, not starvation
        makespan = self._makespan(tracer, registry)
        utils = self._spe_utilizations(tracer, registry, makespan)
        if not utils:
            return
        n_spes = self._n_spes(tracer, registry)
        starved = {
            spe: round(1.0 - u, 4)
            for spe, u in sorted(utils.items())
            if 1.0 - u > cfg.spe_idle_ratio
        }
        # SPEs that never ran a task have no gauge only in the
        # trace-fallback path; count them as fully idle.
        missing = n_spes - len(utils)
        for i in range(missing):
            starved[f"(untracked spe {i})"] = 1.0
        if not starved:
            return
        worst = max(starved.values())
        findings.append(HealthFinding(
            detector="spe-starvation",
            severity="critical" if worst > 0.75 else "warning",
            summary=(
                f"{len(starved)} of {n_spes} SPEs idled more than "
                f"{cfg.spe_idle_ratio:.0%} of the run while "
                f"{waits:.0f} off-loads blocked waiting for an SPE"
            ),
            evidence={
                "idle_ratio_by_spe": starved,
                "offload_waits": waits,
                "threshold": cfg.spe_idle_ratio,
            },
        ))

    def _detect_mgps_oscillation(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        decisions = self._decisions(tracer)
        if len(decisions) < cfg.oscillation_min_decisions:
            return
        actives = [bool(d.get("active")) for d in decisions]
        toggles = sum(1 for a, b in zip(actives, actives[1:]) if a != b)
        if toggles < cfg.oscillation_toggles:
            return
        findings.append(HealthFinding(
            detector="mgps-oscillation",
            severity="warning",
            summary=(
                f"LLP toggled on/off {toggles} times across "
                f"{len(decisions)} window decisions — the U window is not "
                f"providing hysteresis"
            ),
            evidence={
                "toggles": toggles,
                "decisions": len(decisions),
                "toggle_rate": round(toggles / len(decisions), 4),
                "threshold": cfg.oscillation_toggles,
            },
        ))

    def _detect_window_u_saturation(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        decisions = self._decisions(tracer)
        if len(decisions) < cfg.saturation_min_decisions:
            return
        n_spes = self._n_spes(tracer, registry)
        u_low = n_spes * cfg.saturation_u_fraction
        low = [d for d in decisions if float(d.get("u", 0)) <= u_low]
        llp_fired = (
            any(bool(d.get("active")) for d in decisions)
            or _registry_value(registry, "llp.invocations") > 0
        )
        if llp_fired:
            return
        low_fraction = len(low) / len(decisions)
        if low_fraction < cfg.saturation_low_windows:
            return
        findings.append(HealthFinding(
            detector="window-u-saturation",
            severity="critical",
            summary=(
                f"{low_fraction:.0%} of {len(decisions)} window decisions "
                f"saw U <= {u_low:g} (low exposed TLP on {n_spes} SPEs) "
                f"but loop-level parallelism never fired"
            ),
            evidence={
                "decisions": len(decisions),
                "low_u_decisions": len(low),
                "u_threshold": u_low,
                "llp_invocations": _registry_value(registry, "llp.invocations"),
            },
        ))

    def _detect_llp_imbalance(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        if tracer is None:
            return
        series: Dict[Tuple[str, int], List[float]] = {}
        for r in tracer.filter(event="llp_invoke"):
            key = (str(r.get("function")), int(r.get("k", 0)))
            series.setdefault(key, []).append(float(r.get("join_idle_us", 0.0)))
        for (function, k), idles in sorted(series.items()):
            n = len(idles)
            if n < cfg.imbalance_min_invocations:
                continue
            third = n // 3
            first = sum(idles[:third]) / third
            last = sum(idles[-third:]) / third
            if last <= cfg.imbalance_floor_us:
                continue  # converged to negligible idle
            if last < first * cfg.imbalance_shrink_ratio:
                continue  # shrinking as the paper's feedback promises
            findings.append(HealthFinding(
                detector="llp-imbalance",
                severity="warning",
                summary=(
                    f"join idle for loop {function!r} (k={k}) is not "
                    f"shrinking: {first:.2f} us early vs {last:.2f} us "
                    f"late over {n} invocations — adaptive unbalancing "
                    f"is not converging"
                ),
                evidence={
                    "function": function,
                    "k": k,
                    "invocations": n,
                    "first_third_mean_us": round(first, 3),
                    "last_third_mean_us": round(last, 3),
                },
            ))

    def _detect_granularity_churn(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        if registry is None:
            return
        churned: Dict[str, float] = {}
        for name in registry.names():
            if name.startswith(_FLIP_PREFIX):
                flips = float(registry.get(name).value)
                if flips >= cfg.churn_flips:
                    churned[name[len(_FLIP_PREFIX):]] = flips
        if not churned:
            return
        worst_fn = max(churned, key=lambda f: churned[f])
        findings.append(HealthFinding(
            detector="granularity-churn",
            severity="warning",
            summary=(
                f"granularity test flapped accept<->reject for "
                f"{len(churned)} function(s); worst is {worst_fn!r} with "
                f"{churned[worst_fn]:.0f} reversals"
            ),
            evidence={"flips_by_function": churned,
                      "threshold": cfg.churn_flips},
        ))

    def _detect_fault_storm(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        offloads = _registry_value(registry, "runtime.offloads")
        retries = _registry_value(registry, "runtime.offload_retries")
        fallbacks = _registry_value(registry, "runtime.retry_fallbacks")
        attempts = offloads + fallbacks
        if attempts < cfg.storm_min_events:
            return
        failed = retries + fallbacks
        ratio = failed / attempts
        if ratio <= cfg.storm_retry_ratio:
            return
        findings.append(HealthFinding(
            detector="fault-storm",
            severity="warning",
            summary=(
                f"{failed:.0f} of {attempts:.0f} off-load attempts failed "
                f"({ratio:.0%} > {cfg.storm_retry_ratio:.0%}) — injected "
                f"faults are saturating the retry machinery"
            ),
            evidence={
                "offloads": offloads,
                "offload_retries": retries,
                "retry_fallbacks": fallbacks,
                "failed_ratio": round(ratio, 4),
                "threshold": cfg.storm_retry_ratio,
            },
        ))

    def _detect_degraded_capacity(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        kills = _registry_value(registry, "faults.spe_kills")
        blacklists = _registry_value(registry, "runtime.spe_blacklists")
        lost = kills + blacklists
        if lost <= 0:
            return
        n_spes = self._n_spes(tracer, registry)
        live = _registry_value(registry, "run.live_spes", default=n_spes - lost)
        findings.append(HealthFinding(
            detector="degraded-capacity",
            severity="critical" if live <= 0 else "warning",
            summary=(
                f"{lost:.0f} of {n_spes} SPEs left service "
                f"({kills:.0f} killed, {blacklists:.0f} blacklisted); "
                + (
                    "no SPE survived — the whole run fell back to the PPE"
                    if live <= 0
                    else f"{live:.0f} SPEs carried the remaining load"
                )
            ),
            evidence={
                "spe_kills": kills,
                "spe_blacklists": blacklists,
                "live_spes": live,
                "n_spes": n_spes,
            },
        ))

    def _detect_queue_saturation(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        arrivals = _registry_value(registry, "serve.arrivals")
        if arrivals < cfg.queue_min_arrivals:
            return  # not a serving run (or too few jobs to judge)
        rejected = _registry_value(registry, "serve.rejected")
        ratio = rejected / arrivals
        capacity = _registry_value(registry, "serve.queue_capacity")
        depth = registry.get("serve.queue_depth") if registry is not None else None
        depth_p90 = (
            float(depth.percentile(90))
            if depth is not None and getattr(depth, "count", 0) else 0.0
        )
        depth_hot = (
            capacity > 0 and depth_p90 >= cfg.queue_depth_ratio * capacity
        )
        shedding = ratio > cfg.queue_rejection_ratio
        if not shedding and not depth_hot:
            return
        findings.append(HealthFinding(
            detector="queue-saturation",
            severity="critical" if shedding else "warning",
            summary=(
                f"the serving front-end shed {rejected:.0f} of "
                f"{arrivals:.0f} offered jobs ({ratio:.0%}) "
                + (
                    f"and queue depth p90 {depth_p90:.0f} ran at "
                    f">= {cfg.queue_depth_ratio:.0%} of the admission "
                    f"bound {capacity:.0f}"
                    if depth_hot
                    else f"(rejection threshold "
                    f"{cfg.queue_rejection_ratio:.0%})"
                )
            ),
            evidence={
                "arrivals": arrivals,
                "rejected": rejected,
                "rejection_ratio": round(ratio, 4),
                "queue_depth_p90": round(depth_p90, 2),
                "queue_capacity": capacity,
                "threshold": cfg.queue_rejection_ratio,
            },
        ))

    def _detect_blade_breaker(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        opens = _registry_value(registry, "serve.breaker_opens")
        if opens < cfg.breaker_min_opens:
            return
        closes = _registry_value(registry, "serve.breaker_closes")
        probes = _registry_value(registry, "serve.breaker_probes")
        flapping = opens >= cfg.breaker_flap_opens and closes <= 0
        findings.append(HealthFinding(
            detector="blade-breaker",
            severity="critical" if flapping else "warning",
            summary=(
                f"blade circuit breakers opened {opens:.0f} time(s) "
                + (
                    f"with no completed recovery in {probes:.0f} probes "
                    f"— a blade is stuck sick"
                    if flapping
                    else f"and closed {closes:.0f} time(s) after probing"
                )
            ),
            evidence={
                "breaker_opens": opens,
                "breaker_closes": closes,
                "breaker_probes": probes,
                "threshold": cfg.breaker_min_opens,
            },
        ))

    def _detect_hedge_storm(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        units = _registry_value(registry, "serve.dispatched_units")
        if units < cfg.hedge_min_units:
            return
        hedges = _registry_value(registry, "serve.hedges")
        ratio = hedges / units
        if ratio <= cfg.hedge_storm_ratio:
            return
        wins = _registry_value(registry, "serve.hedge_wins")
        findings.append(HealthFinding(
            detector="hedge-storm",
            severity="warning",
            summary=(
                f"{hedges:.0f} of {units:.0f} dispatched units were "
                f"hedged ({ratio:.0%} > {cfg.hedge_storm_ratio:.0%}) — "
                f"speculation is systemic, not tail rescue "
                f"({wins:.0f} hedge wins)"
            ),
            evidence={
                "hedges": hedges,
                "hedge_wins": wins,
                "dispatched_units": units,
                "hedge_ratio": round(ratio, 4),
                "threshold": cfg.hedge_storm_ratio,
            },
        ))

    def _detect_deadline_shedding(
        self, tracer, registry, findings: List[HealthFinding]
    ) -> None:
        cfg = self.config
        admitted = _registry_value(registry, "serve.admitted")
        if admitted < cfg.queue_min_arrivals:
            return
        aborts = _registry_value(registry, "serve.deadline_aborts")
        ratio = aborts / admitted
        if ratio <= cfg.deadline_abort_ratio:
            return
        findings.append(HealthFinding(
            detector="deadline-shedding",
            severity="warning",
            summary=(
                f"deadline enforcement shed {aborts:.0f} of "
                f"{admitted:.0f} admitted jobs ({ratio:.0%} > "
                f"{cfg.deadline_abort_ratio:.0%}) — the fleet cannot "
                f"meet the contracted deadlines at this load"
            ),
            evidence={
                "deadline_aborts": aborts,
                "admitted": admitted,
                "abort_ratio": round(ratio, 4),
                "threshold": cfg.deadline_abort_ratio,
            },
        ))

    # -- entry point ------------------------------------------------------
    def analyze(self, tracer: Optional[Tracer], registry) -> List[HealthFinding]:
        """All findings for one run, in detector-catalogue order."""
        findings: List[HealthFinding] = []
        self._detect_spe_starvation(tracer, registry, findings)
        self._detect_mgps_oscillation(tracer, registry, findings)
        self._detect_window_u_saturation(tracer, registry, findings)
        self._detect_llp_imbalance(tracer, registry, findings)
        self._detect_granularity_churn(tracer, registry, findings)
        self._detect_fault_storm(tracer, registry, findings)
        self._detect_degraded_capacity(tracer, registry, findings)
        self._detect_queue_saturation(tracer, registry, findings)
        self._detect_blade_breaker(tracer, registry, findings)
        self._detect_hedge_storm(tracer, registry, findings)
        self._detect_deadline_shedding(tracer, registry, findings)
        return findings


def analyze_run(
    tracer: Optional[Tracer],
    registry,
    config: Optional[MonitorConfig] = None,
) -> List[HealthFinding]:
    """Convenience wrapper: one call, all detectors."""
    return HealthMonitor(config).analyze(tracer, registry)
