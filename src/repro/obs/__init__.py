"""Observability: spans, metrics and trace export for scheduler runs.

The runtimes in :mod:`repro.core` make feedback-driven decisions (MGPS's
utilization window, the LLP chunk tuner, the granularity test); this
package makes those decisions observable without perturbing them:

* :mod:`repro.obs.spans` — nested, attributed intervals recorded through
  the existing :class:`~repro.sim.trace.Tracer`;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  in a per-run :class:`MetricsRegistry` (no-op when absent);
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON, JSONL
  record sink, and deterministic metrics snapshots;
* :mod:`repro.obs.monitor` — rule-based post-run health detectors
  (starvation, oscillation, saturation, imbalance, churn);
* :mod:`repro.obs.report` — one self-contained HTML performance report
  per run (inline SVG, no network);
* :mod:`repro.obs.bench` — the tracked benchmark trajectory and its
  regression gate over the committed ``BENCH_*.json`` baselines;
* :mod:`repro.obs.profile` — low-overhead wall-clock profiling of the
  simulation hot path (scoped timers, heap tallies, events/sec);
* :mod:`repro.obs.causal` — post-hoc causal span trees (per-job serve
  lifecycles, off-load attempt/backoff/fallback/LLP-fan-out trees);
* :mod:`repro.obs.attribution` — critical-path extraction and
  aggregate latency breakdowns (``serve.breakdown.*``);
* :mod:`repro.obs.timeseries` — deterministic sim-time-bucketed gauge
  series sampled from a finished trace.

Everything is stdlib-only and hangs off per-run objects — no globals.
"""

from .attribution import (
    aggregate_breakdown,
    job_summary,
    publish_breakdown,
    render_explain,
    top_slowest,
)
from .bench import (
    check_baselines,
    check_perf_floors,
    compare,
    measure_core,
    measure_faults,
    measure_serve,
    measure_throughput,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_snapshot,
    write_trace_jsonl,
)
from .causal import (
    JobTree,
    PHASE_ORDER,
    ReconciliationError,
    SpanNode,
    build_job_trees,
    build_offload_trees,
    critical_path,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    labeled,
)
from .monitor import (
    HealthFinding,
    HealthMonitor,
    MonitorConfig,
    Threshold,
    analyze_run,
    parse_threshold,
    render_findings,
    resolve_metric,
)
from .profile import (
    Profiler,
    profile_chrome_events,
    render_profile,
    write_profile_trace,
)
from .report import render_report, write_report
from .spans import NULL_SPAN, Span, SpanRecorder
from .timeseries import TimeSeries, sample_timeseries

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "labeled",
    "Span",
    "SpanRecorder",
    "NULL_SPAN",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_metrics_snapshot",
    "HealthFinding",
    "HealthMonitor",
    "MonitorConfig",
    "Threshold",
    "analyze_run",
    "parse_threshold",
    "render_findings",
    "resolve_metric",
    "render_report",
    "write_report",
    "Profiler",
    "profile_chrome_events",
    "render_profile",
    "write_profile_trace",
    "measure_core",
    "measure_faults",
    "measure_serve",
    "measure_throughput",
    "compare",
    "check_baselines",
    "check_perf_floors",
    "JobTree",
    "PHASE_ORDER",
    "ReconciliationError",
    "SpanNode",
    "build_job_trees",
    "build_offload_trees",
    "critical_path",
    "aggregate_breakdown",
    "job_summary",
    "publish_breakdown",
    "render_explain",
    "top_slowest",
    "TimeSeries",
    "sample_timeseries",
]
