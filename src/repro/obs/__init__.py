"""Observability: spans, metrics and trace export for scheduler runs.

The runtimes in :mod:`repro.core` make feedback-driven decisions (MGPS's
utilization window, the LLP chunk tuner, the granularity test); this
package makes those decisions observable without perturbing them:

* :mod:`repro.obs.spans` — nested, attributed intervals recorded through
  the existing :class:`~repro.sim.trace.Tracer`;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  in a per-run :class:`MetricsRegistry` (no-op when absent);
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON, JSONL
  record sink, and deterministic metrics snapshots.

Everything is stdlib-only and hangs off per-run objects — no globals.
"""

from .export import (
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_snapshot,
    write_trace_jsonl,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .spans import NULL_SPAN, Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "Span",
    "SpanRecorder",
    "NULL_SPAN",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_metrics_snapshot",
]
