"""The tracked benchmark trajectory: measurement, baselines, gates.

The repo keeps two committed baseline files at its root:

* ``BENCH_core.json`` — makespans/off-load counts for the four headline
  schedulers (serial, EDTLP, static EDTLP-LLP, MGPS) on a Figure-8-style
  workload, written by ``benchmarks/bench_schedulers.py``;
* ``BENCH_obs.json`` — the observability-overhead summary, written by
  ``benchmarks/bench_obs_overhead.py``;
* ``BENCH_faults.json`` — the fault-tolerance ladder, written by
  ``benchmarks/bench_faults.py``;
* ``BENCH_serve.json`` — serving-layer SLOs (tail latency, goodput,
  rejection rate) per dispatch policy with and without autoscaling,
  written by ``benchmarks/bench_serve.py``;
* ``BENCH_dag.json`` — the workflow-DAG grid (cache-cold vs cache-warm
  vs bootstop-on), gating the stage cache's 100% warm hit rate, digest
  identity across repeat submissions, the >= 30% bootstop savings and
  exact job conservation, written by ``repro bench --write --only dag``;
* ``BENCH_perf.json`` — the wall-clock throughput grid (events/sec and
  jobs per wall-second for the fig8 and serve scenarios), written by
  ``benchmarks/bench_throughput.py`` or ``repro bench --write``.

Simulated quantities are deterministic (same seed, same arithmetic), so
a drift in any non-``_wall`` field is a real behavior change — that is
the regression gate ``repro bench --check`` (and its thin wrapper
``benchmarks/check_bench.py``) enforces.  Wall-clock fields carry a
``_wall`` suffix (:func:`is_wall_field`) and are **informational only**
in :func:`compare` — never diffed against the baseline.

The one exception is deliberate and one-sided: the ``*_per_sec_wall``
throughput rates in ``BENCH_perf.json`` are enforced as *floors* by
:func:`check_perf_floors` — the current rate must stay above
``baseline * (1 - tolerance)`` with a generous default tolerance
(:data:`PERF_REGRESSION_TOLERANCE`, 30%) that absorbs machine noise but
catches order-of-magnitude hot-path regressions.  The floor *ratchets*:
``repro bench --write`` records the current machine's throughput, so
every landed speedup raises the bar for the next change.  Tune the
tolerance per invocation (``repro bench --check --perf-tolerance 0.5``)
or via the ``REPRO_PERF_TOLERANCE`` environment variable (useful on
noisy CI runners).

:func:`measure_core` produces the current numbers, :func:`compare`
diffs a payload against a committed baseline with per-metric
tolerances, :func:`measure_throughput` times the throughput grid, and
:func:`check_baselines` runs the whole gate.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional, Tuple

# NOTE: repro.core imports repro.obs at module load (for NULL_REGISTRY),
# so this module must not import repro.core at the top level; the
# scheduler/runner imports happen inside the functions that need them.
from .metrics import stable_round

__all__ = [
    "CORE_BASELINE",
    "OBS_BASELINE",
    "FAULTS_BASELINE",
    "SERVE_BASELINE",
    "DAG_BASELINE",
    "PERF_BASELINE",
    "REQUIRED_CORE_KEYS",
    "REQUIRED_OBS_KEYS",
    "REQUIRED_FAULTS_KEYS",
    "REQUIRED_SERVE_KEYS",
    "REQUIRED_DAG_KEYS",
    "REQUIRED_PERF_KEYS",
    "DEFAULT_TOLERANCES",
    "PERF_REGRESSION_TOLERANCE",
    "PERF_TOLERANCE_ENV",
    "perf_tolerance",
    "is_wall_field",
    "find_repo_root",
    "core_schedulers",
    "measure_core",
    "measure_dag",
    "measure_faults",
    "measure_serve",
    "measure_throughput",
    "PERF_SERVE_DURATION_S",
    "PERF_SERVE_ARRIVAL_RATE",
    "check_perf_floors",
    "stable_payload",
    "write_baseline",
    "flatten",
    "compare",
    "check_baselines",
]

CORE_BASELINE = "BENCH_core.json"
OBS_BASELINE = "BENCH_obs.json"
FAULTS_BASELINE = "BENCH_faults.json"
SERVE_BASELINE = "BENCH_serve.json"
DAG_BASELINE = "BENCH_dag.json"
PERF_BASELINE = "BENCH_perf.json"

# The workload every tracked benchmark shares (Figure-8-style: few
# bootstraps, many tasks -> MGPS must fall back on loop parallelism).
BOOTSTRAPS = 3
TASKS = 200
SEED = 0

REQUIRED_CORE_KEYS = (
    "workload", "schedulers", "speedup_over_serial", "llp_schedules"
)
REQUIRED_FAULTS_KEYS = (
    "workload",
    "fault_free",
    "zero_fault_tolerant",
    "faulty",
    "fleet_faults",
)
REQUIRED_OBS_KEYS = (
    "workload",
    "makespan_s",
    "offloads",
    "on_over_off_ratio_wall",
    "metrics_over_off_ratio_wall",
    "profiler_over_off_ratio_wall",
    "causal_over_off_ratio_wall",
)
REQUIRED_SERVE_KEYS = (
    "workload",
    "policies",
    "digests_identical",
    "breakdown",
)
REQUIRED_DAG_KEYS = (
    "workload",
    "grid",
    "bootstop_savings",
    "warm_hit_rate",
    "warm_digest_identical",
)
REQUIRED_PERF_KEYS = (
    "workload",
    "scenarios",
)

# The serving grid: every tracked dispatch policy, elastic and fixed.
SERVE_POLICIES = ("static-block", "least-loaded", "work-stealing")
SERVE_DURATION_S = 1800.0
SERVE_ARRIVAL_RATE = 0.05

# The throughput grid's serving scale: a horizon long enough that the
# fleet completes >= 10^4 jobs, so jobs-per-wall-second measures the
# steady-state dispatch path rather than JobCompiler warm-up (at the
# SLO-grid scale above, six template compilations dominate the wall
# time and the rate says nothing about the kernel).  The SLO grid and
# its digest oracle stay at the small scale.
PERF_SERVE_DURATION_S = 72000.0
PERF_SERVE_ARRIVAL_RATE = 0.25

# Relative tolerance per flattened metric path suffix.  Simulated values
# are bit-deterministic, but rounding through ``stable_round`` and JSON
# can move the last digit, so "exact" is a tiny epsilon, not 0.0.
_EXACT = 1e-9
DEFAULT_TOLERANCES = {
    "makespan_s": _EXACT,
    "spe_utilization": _EXACT,
    "offloads": 0.0,
    "llp_invocations": 0.0,
    "ppe_fallbacks": 0.0,
    "speedup_over_serial": 1e-6,
}
_DEFAULT_TOL = _EXACT

# Throughput floor: a ``*_per_sec_wall`` rate in BENCH_perf.json may not
# fall below ``baseline * (1 - tolerance)``.  30% absorbs host noise
# while catching real hot-path regressions; override per call
# (``check_perf_floors(..., tolerance=...)``, ``repro bench --check
# --perf-tolerance``) or via the environment for noisy CI runners.
PERF_REGRESSION_TOLERANCE = 0.30
PERF_TOLERANCE_ENV = "REPRO_PERF_TOLERANCE"


def perf_tolerance(override: Optional[float] = None) -> float:
    """Effective throughput-floor tolerance (override > env > default)."""
    if override is not None:
        return float(override)
    env = os.environ.get(PERF_TOLERANCE_ENV)
    if env:
        return float(env)
    return PERF_REGRESSION_TOLERANCE


def is_wall_field(path: str) -> bool:
    """True for wall-clock field names/paths (leaf ends with ``_wall``).

    Wall-clock fields are informational only: :func:`compare` never
    diffs them and :func:`stable_payload` serializes them verbatim.
    """
    return path.rsplit(".", 1)[-1].endswith("_wall")


def find_repo_root(start: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Walk up from ``start`` to the directory holding the baselines.

    Recognizes the repo root by ``.git`` or an existing baseline file;
    falls back to the package checkout root (three levels above this
    module: ``src/repro/obs`` -> repo).
    """
    here = pathlib.Path(start or pathlib.Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / ".git").exists() or (candidate / CORE_BASELINE).exists():
            return candidate
    return pathlib.Path(__file__).resolve().parents[3]


def core_schedulers() -> List[Tuple[str, "SchedulerSpec"]]:
    """The tracked scheduler ladder, slowest first."""
    from ..core.schedulers import edtlp, mgps, static_hybrid

    return [
        ("serial", edtlp(n_processes=1, label="serial")),
        ("edtlp", edtlp()),
        ("edtlp-llp4", static_hybrid(4)),
        ("mgps", mgps()),
    ]


def measure_core(
    bootstraps: int = BOOTSTRAPS,
    tasks: int = TASKS,
    seed: int = SEED,
    time_source=time.perf_counter,
) -> Dict[str, Any]:
    """Run the scheduler ladder once; returns the ``BENCH_core`` payload.

    All fields are deterministic except the per-scheduler
    ``seconds_wall`` timings.
    """
    from ..core.runner import run_experiment
    from ..workloads.traces import Workload

    rows: Dict[str, Dict[str, Any]] = {}
    for name, spec in core_schedulers():
        wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed)
        t0 = time_source()
        result = run_experiment(spec, wl, seed=seed)
        wall = time_source() - t0
        rows[name] = {
            "makespan_s": result.makespan,
            "spe_utilization": result.spe_utilization,
            "offloads": result.offloads,
            "ppe_fallbacks": result.ppe_fallbacks,
            "llp_invocations": result.llp_invocations,
            "seconds_wall": wall,
        }
    serial = rows["serial"]["makespan_s"]

    # One row per registered loop schedule on the always-LLP hybrid
    # (EDTLP-LLP4), the scheduler whose makespan is most sensitive to
    # iteration distribution.  The ``static`` row must reproduce the
    # ladder's edtlp-llp4 row exactly — same spec, default schedule.
    from dataclasses import replace

    from ..core.llp import LLPConfig, available_loop_schedules
    from ..core.schedulers import static_hybrid

    schedule_rows: Dict[str, Dict[str, Any]] = {}
    for sched in available_loop_schedules():
        wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed)
        spec = static_hybrid(
            4, llp_config=replace(LLPConfig(), schedule=sched.name)
        )
        t0 = time_source()
        result = run_experiment(spec, wl, seed=seed)
        wall = time_source() - t0
        schedule_rows[sched.name] = {
            "makespan_s": result.makespan,
            "llp_invocations": result.llp_invocations,
            "seconds_wall": wall,
        }

    return {
        "workload": {
            "bootstraps": bootstraps,
            "tasks_per_bootstrap": tasks,
            "seed": seed,
        },
        "schedulers": rows,
        "speedup_over_serial": {
            name: serial / rows[name]["makespan_s"] for name in rows
        },
        "llp_schedules": schedule_rows,
    }


def measure_faults(
    bootstraps: int = BOOTSTRAPS,
    tasks: int = TASKS,
    seed: int = SEED,
    time_source=time.perf_counter,
) -> Dict[str, Any]:
    """Measure fault-handling overhead; returns the ``BENCH_faults`` payload.

    Three tracked MGPS runs of the shared workload:

    * ``fault_free`` — the plain fast path (no fault machinery at all);
    * ``zero_fault_tolerant`` — a *null* fault plan, so every off-load
      goes through the tolerant retry/watchdog path but no fault ever
      fires: its ``overhead_ratio`` over the fault-free makespan is the
      cost of the tolerance machinery itself;
    * ``faulty`` — a fixed small storm (two SPE kills, transient
      off-load and DMA error rates) exercising retries, blacklisting and
      MGPS degradation.

    A fourth tracked section, ``fleet_faults``, covers the serving
    layer's node-tier resilience: a small deterministic chaos grid
    (seeded storm plans under hedging + circuit breaker) plus one
    deadline-enforcement cell.  Its gated invariants are zero lost
    jobs and bit-identical per-job digests versus the fault-free run.

    ``digest_match`` fields record the headline invariant: application
    results are bit-identical to the fault-free run.  All fields are
    deterministic except ``seconds_wall``.
    """
    from ..core.runner import run_experiment
    from ..core.schedulers import mgps
    from ..faults import FaultPlan, SPEKill
    from ..workloads.traces import Workload

    def one(faults):
        wl = Workload(
            bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed
        )
        t0 = time_source()
        result = run_experiment(mgps(), wl, seed=seed, faults=faults)
        wall = time_source() - t0
        return result, wall

    clean, clean_wall = one(None)
    tolerant, tolerant_wall = one(FaultPlan(seed=seed))
    storm_plan = FaultPlan(
        seed=seed,
        offload_fail_rate=0.05,
        dma_error_rate=0.02,
        spe_kills=(SPEKill(spe=2, time=2e-4), SPEKill(spe=5, time=4e-4)),
    )
    faulty, faulty_wall = one(storm_plan)

    return {
        "workload": {
            "bootstraps": bootstraps,
            "tasks_per_bootstrap": tasks,
            "seed": seed,
            "scheduler": "mgps",
        },
        "fault_free": {
            "makespan_s": clean.makespan,
            "offloads": clean.offloads,
            "seconds_wall": clean_wall,
        },
        "zero_fault_tolerant": {
            "makespan_s": tolerant.makespan,
            "offloads": tolerant.offloads,
            "overhead_ratio": tolerant.makespan / clean.makespan,
            "digest_match": tolerant.result_digest == clean.result_digest,
            "offload_retries": int(tolerant.extras.get("offload_retries", 0)),
            "retry_fallbacks": int(tolerant.extras.get("retry_fallbacks", 0)),
            "seconds_wall": tolerant_wall,
        },
        "faulty": {
            "makespan_s": faulty.makespan,
            "slowdown_ratio": faulty.makespan / clean.makespan,
            "digest_match": faulty.result_digest == clean.result_digest,
            "spe_kills": int(faulty.extras.get("spe_kills", 0)),
            "spe_blacklists": int(faulty.extras.get("spe_blacklists", 0)),
            "offload_retries": int(faulty.extras.get("offload_retries", 0)),
            "retry_fallbacks": int(faulty.extras.get("retry_fallbacks", 0)),
            "dma_errors": int(faulty.extras.get("dma_errors", 0)),
            "live_spes": int(faulty.extras.get("live_spes", 0)),
            "seconds_wall": faulty_wall,
        },
        "fleet_faults": measure_fleet_faults(seed=seed,
                                             time_source=time_source),
    }


def measure_fleet_faults(
    seed: int = SEED,
    time_source=time.perf_counter,
) -> Dict[str, Any]:
    """The tracked ``fleet_faults`` cell of the ``BENCH_faults`` payload.

    A small deterministic chaos soak (3 seeded storm plans, hedging and
    circuit breaker enabled) plus one deadline-enforcement run.  Gated
    invariants: zero lost jobs across every plan, digest maps
    bit-identical to the fault-free run, and deadline aborts firing in
    the enforcement cell.  All fields deterministic except
    ``seconds_wall``.
    """
    from ..serve import (
        BladeSlow,
        FleetFaultPlan,
        JobTemplate,
        ResilienceConfig,
        ServeConfig,
        TenantSpec,
        run_service,
    )
    from ..serve.chaos import ChaosConfig, run_chaos

    t0 = time_source()
    soak = run_chaos(ChaosConfig(
        plans=3, seed=seed, mix="storm", duration_s=1800.0,
        arrival_rate=0.05, blades=4,
    ))
    # Deadline-enforcement cell: a tight-deadline tenant on a small
    # fleet with a permanent straggler, so shedding must engage.
    small = JobTemplate("small-bag", bootstraps=2, tasks_per_bootstrap=60,
                        variants=2)
    deadline_cfg = ServeConfig(
        tenants=(TenantSpec("deadline", small, arrival="poisson",
                            arrival_rate=0.08, deadline_s=120.0),),
        duration_s=1200.0,
        seed=seed,
        dispatch="least-loaded",
        min_blades=2,
        max_blades=2,
        queue_capacity=4096,
        faults=FleetFaultPlan(
            slows=(BladeSlow(blade=0, at=100.0, factor=4.0),), seed=seed
        ),
        resilience=ResilienceConfig(enforce_deadlines=True),
    )
    deadline_run = run_service(deadline_cfg)
    wall = time_source() - t0
    ds = deadline_run.summary
    return {
        "plans": soak.config.plans,
        "mix": soak.config.mix,
        "seed": soak.config.seed,
        "clean_completed": soak.clean_completed,
        "lost_jobs": sum(o.lost for o in soak.outcomes),
        "digests_identical": all(
            not any("digest" in v for v in o.violations)
            for o in soak.outcomes
        ),
        "invariants_ok": soak.ok,
        "hedges": soak.total_hedges,
        "hedge_wins": sum(o.hedge_wins for o in soak.outcomes),
        "breaker_cycles": soak.total_breaker_cycles,
        "worst_p99_s": max(o.p99_s for o in soak.outcomes),
        "deadline_aborts": ds["deadline_aborts"],
        "deadline_conservation_ok": (
            ds["admitted"] == ds["completed"] + ds["cancelled"]
            + ds["deadline_aborts"] + deadline_run.lost_jobs
        ),
        "seconds_wall": wall,
    }


def measure_serve(
    seed: int = SEED,
    duration_s: float = SERVE_DURATION_S,
    arrival_rate: float = SERVE_ARRIVAL_RATE,
    time_source=time.perf_counter,
) -> Dict[str, Any]:
    """Run the serving grid; returns the ``BENCH_serve`` payload.

    One run per (dispatch policy, elasticity) cell on the default tenant
    mix, recording tail latency, goodput and rejection accounting, plus
    one digest-invariance sweep: with open-loop tenants (identical
    submission sets per policy), every dispatch policy must produce
    bit-identical per-job digest maps — ``digests_identical`` is that
    invariant.  All fields are deterministic except ``seconds_wall``.

    The ``breakdown`` block carries tracked latency-attribution rows
    (overall and per-tenant sojourn phase shares from one traced
    static-block fixed run) plus ``digest_invariant_under_tracing``,
    proving the causal collection never perturbs outcomes.
    """
    from ..serve import ServeConfig, default_tenants, run_service

    tenants = default_tenants(arrival_rate=arrival_rate)
    policies: Dict[str, Dict[str, Any]] = {}
    for dispatch in SERVE_POLICIES:
        cells: Dict[str, Any] = {}
        for label, autoscale in (("fixed", False), ("autoscale", True)):
            cfg = ServeConfig(
                tenants=tenants,
                duration_s=duration_s,
                seed=seed,
                dispatch=dispatch,
                autoscale=autoscale,
            )
            t0 = time_source()
            result = run_service(cfg)
            wall = time_source() - t0
            s = result.summary
            ups = sum(1 for _t, d, _n in result.autoscaler_events if d == "up")
            downs = sum(
                1 for _t, d, _n in result.autoscaler_events if d == "down"
            )
            cells[label] = {
                "completed": s["completed"],
                "rejected": s["rejected"],
                "deadline_misses": s["deadline_misses"],
                "latency_p50_s": s["latency_p50_s"],
                "latency_p95_s": s["latency_p95_s"],
                "latency_p99_s": s["latency_p99_s"],
                "goodput_jps": s["goodput_jps"],
                "rejection_rate": s["rejection_rate"],
                "makespan_s": result.makespan,
                "scale_ups": ups,
                "scale_downs": downs,
                "seconds_wall": wall,
            }
        policies[dispatch] = cells

    # Digest invariance: open-loop tenants only, so the submission sets
    # (and hence the digest-map key sets) are identical across policies
    # and the full maps must match key for key.  Closed-loop tenants
    # would only shrink/grow the key set, never change a shared key's
    # digest — the stricter full-map equality is the better gate.
    open_loop = tuple(t for t in tenants if t.arrival != "closed")
    digest_maps = []
    for dispatch in SERVE_POLICIES:
        cfg = ServeConfig(
            tenants=open_loop,
            duration_s=duration_s,
            seed=seed,
            dispatch=dispatch,
            autoscale=False,
        )
        digest_maps.append(run_service(cfg).digest_map())
    digests_identical = all(m == digest_maps[0] for m in digest_maps[1:])

    # Latency attribution rows: one traced static-block fixed run,
    # folded into causal job trees and aggregated per tenant.  The same
    # configuration is re-run untraced and its digest map compared —
    # attaching the tracer must never change a simulated outcome.
    from ..sim.trace import Tracer
    from .attribution import aggregate_breakdown
    from .causal import build_job_trees

    base_cfg = ServeConfig(
        tenants=tenants,
        duration_s=duration_s,
        seed=seed,
        dispatch=SERVE_POLICIES[0],
        autoscale=False,
    )
    tracer = Tracer(enabled=True)
    traced = run_service(base_cfg, tracer=tracer)
    untraced = run_service(base_cfg)
    full = aggregate_breakdown(build_job_trees(tracer))
    breakdown: Dict[str, Any] = {
        "completed": full["completed"],
        "lost": full.get("lost", 0),
        "digest_invariant_under_tracing":
            traced.digest_map() == untraced.digest_map(),
    }
    if full["completed"]:
        breakdown["overall"] = {
            "jobs": full["overall"]["jobs"],
            "mean_sojourn_s": full["overall"]["mean_sojourn_s"],
            "phase_shares": full["overall"]["phase_shares"],
        }
        breakdown["tenants"] = {
            name: {
                "jobs": g["jobs"],
                "mean_sojourn_s": g["mean_sojourn_s"],
                "phase_shares": g["phase_shares"],
            }
            for name, g in full["tenants"].items()
        }
    else:
        breakdown["note"] = full.get("note", "no completed jobs")

    return {
        "workload": {
            "seed": seed,
            "duration_s": duration_s,
            "arrival_rate": arrival_rate,
            "tenants": [t.name for t in tenants],
        },
        "policies": policies,
        "digests_identical": digests_identical,
        "breakdown": breakdown,
    }


# The tracked workflow scale: a full autoMRE-sized bootstrap fan-out so
# the bootstop cell has room to demonstrate its >= 30% savings.
DAG_REPLICATES = 100
DAG_CONFLICT = 0.15


def measure_dag(
    seed: int = SEED,
    replicates: int = DAG_REPLICATES,
    conflict: float = DAG_CONFLICT,
    time_source=time.perf_counter,
) -> Dict[str, Any]:
    """Run the workflow-DAG grid; returns the ``BENCH_dag`` payload.

    Four cells over the raxml-style workflow (check -> infer ->
    bootstrap fan-out -> consensus):

    * ``cache-cold`` — one submission, bootstop off: the full fan-out
      runs, every stage is a cache miss;
    * ``cache-warm`` — two identical sequential submissions sharing a
      cache: the second must hit on *every* stage (``warm_hit_rate``)
      and reproduce the first's final digest bit for bit
      (``warm_digest_identical``) with a near-zero makespan;
    * ``bootstop`` — converging workload with the autoMRE monitor on:
      ``bootstop_savings`` is the cancelled fraction of the fan-out,
      gated at >= 30% with exact job conservation and zero losses;
    * ``bootstop-diverging`` — the control: independent random
      topologies (``conflict=1``) keep support values moving longer,
      so the monitor demonstrably needs more replicates and cancels a
      smaller share of the fan-out than the converging cell.

    All fields are deterministic except the per-cell ``seconds_wall``.
    """
    from ..serve import BootstopConfig, DagConfig, raxml_workflow, run_dag

    def cell(config: DagConfig) -> Tuple[Dict[str, Any], Any]:
        t0 = time_source()
        result = run_dag(config)
        wall = time_source() - t0
        s = result.serve.summary
        return {
            "admitted": s["admitted"],
            "completed": s["completed"],
            "cancelled": s["cancelled"],
            "aborted": s["deadline_aborts"],
            "lost": result.serve.lost_jobs,
            "conservation_ok": result.conservation_ok,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "cache_hit_rate": result.cache_hit_rate,
            "wasted_work_avoided_s": result.wasted_work_avoided_s,
            "bootstop_cancelled": result.bootstop_cancelled,
            "bootstop_savings": result.bootstop_savings,
            "makespan": stable_round(result.makespan),
            "final_digest": result.final_digests[0],
            "seconds_wall": wall,
        }, result

    grid: Dict[str, Dict[str, Any]] = {}
    cold_wf = raxml_workflow(replicates=replicates, conflict=conflict)
    grid["cache-cold"], cold = cell(DagConfig(workflow=cold_wf, seed=seed))

    warm_row, warm = cell(DagConfig(
        workflow=raxml_workflow(replicates=replicates, conflict=conflict),
        submissions=2, seed=seed,
    ))
    # The run-level hit rate mixes the cold first submission in; the
    # warm gate is the *second* workflow alone: every stage cached.
    rewf = warm.workflows[1]
    warm_row["warm_hit_rate"] = (
        rewf["cache_hits"] / rewf["stages_total"]
        if rewf["stages_total"] else 0.0
    )
    warm_row["warm_makespan"] = rewf["makespan_s"]
    warm_digest_identical = (
        warm.final_digests[0] == warm.final_digests[1]
        and warm.final_digests[0] == cold.final_digests[0]
    )
    warm_row["warm_digest_identical"] = warm_digest_identical
    grid["cache-warm"] = warm_row

    grid["bootstop"], stopped = cell(DagConfig(
        workflow=raxml_workflow(replicates=replicates, conflict=conflict),
        seed=seed, bootstop=BootstopConfig(),
    ))

    grid["bootstop-diverging"], _ = cell(DagConfig(
        workflow=raxml_workflow(replicates=replicates, conflict=1.0),
        seed=seed, bootstop=BootstopConfig(),
    ))

    return {
        "workload": {
            "seed": seed,
            "workflow": cold_wf.name,
            "replicates": replicates,
            "conflict": conflict,
            "stages": [st.name for st in cold_wf.stages],
            "bootstop": BootstopConfig().describe(),
        },
        "grid": grid,
        "bootstop_savings": stopped.bootstop_savings,
        "bootstop_saved_s": stable_round(stopped.bootstop_saved_s),
        "warm_hit_rate": warm_row["warm_hit_rate"],
        "warm_digest_identical": warm_digest_identical,
        "conservation_ok": all(
            row["conservation_ok"] for row in grid.values()
        ),
        "lost_jobs": sum(row["lost"] for row in grid.values()),
    }


def measure_throughput(
    bootstraps: int = BOOTSTRAPS,
    tasks: int = TASKS,
    seed: int = SEED,
    duration_s: float = PERF_SERVE_DURATION_S,
    arrival_rate: float = PERF_SERVE_ARRIVAL_RATE,
    reps: int = 3,
    time_source=time.perf_counter,
    small_duration_s: float = SERVE_DURATION_S,
    small_arrival_rate: float = SERVE_ARRIVAL_RATE,
) -> Dict[str, Any]:
    """Time the throughput grid; returns the ``BENCH_perf`` payload.

    Three tracked scenarios, each run ``reps`` times with the best
    (fastest) wall time kept to damp host noise:

    * ``fig8`` — the shared MGPS Figure-8-style workload, reporting
      kernel events per wall-second;
    * ``serve`` — the serving run at throughput scale (static-block,
      fixed fleet, >= 10^4 completed jobs), reporting events per
      wall-second *and* completed jobs per wall-second;
    * ``serve_small`` — the same service at the SLO-grid scale
      (:data:`SERVE_DURATION_S`), kept as the warm-up-dominated point of
      the jobs-per-wall-second grid.

    The ``events``/``jobs`` counts are deterministic and gate through
    :func:`compare` like any other field; the ``*_per_sec_wall`` rates
    are enforced only as one-sided floors by :func:`check_perf_floors`.
    """
    from ..core.runner import run_experiment
    from ..core.schedulers import mgps
    from ..serve import ServeConfig, default_tenants, run_service
    from ..workloads.traces import Workload

    def best_of(fn):
        best, result = float("inf"), None
        for _ in range(max(1, reps)):
            t0 = time_source()
            result = fn()
            best = min(best, time_source() - t0)
        return best, result

    def fig8_run():
        wl = Workload(
            bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed
        )
        return run_experiment(mgps(), wl, seed=seed)

    fig8_wall, fig8 = best_of(fig8_run)

    def serve_run(dur, rate):
        def run():
            cfg = ServeConfig(
                tenants=default_tenants(arrival_rate=rate),
                duration_s=dur,
                seed=seed,
            )
            return run_service(cfg)
        return run

    serve_wall, serve = best_of(serve_run(duration_s, arrival_rate))
    serve_jobs = serve.summary["completed"]
    small_wall, small = best_of(
        serve_run(small_duration_s, small_arrival_rate)
    )
    small_jobs = small.summary["completed"]

    def rate(count, wall):
        return count / wall if wall > 0 else 0.0

    def serve_row(result, jobs, wall):
        return {
            "events": result.events_processed,
            "jobs": jobs,
            "events_per_sec_wall": rate(result.events_processed, wall),
            "jobs_per_sec_wall": rate(jobs, wall),
            "seconds_wall": wall,
        }

    return {
        "workload": {
            "bootstraps": bootstraps,
            "tasks_per_bootstrap": tasks,
            "seed": seed,
            "serve_duration_s": duration_s,
            "serve_arrival_rate": arrival_rate,
            "serve_small_duration_s": small_duration_s,
            "serve_small_arrival_rate": small_arrival_rate,
            "reps": reps,
        },
        "scenarios": {
            "fig8": {
                "events": fig8.events_processed,
                "events_per_sec_wall": rate(fig8.events_processed, fig8_wall),
                "seconds_wall": fig8_wall,
            },
            "serve": serve_row(serve, serve_jobs, serve_wall),
            "serve_small": serve_row(small, small_jobs, small_wall),
        },
    }


def check_perf_floors(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """One-sided throughput floors over a ``BENCH_perf`` payload pair.

    Every ``*_per_sec_wall`` rate in the baseline must be met by the
    current measurement up to the tolerance: ``current >= baseline *
    (1 - tolerance)``.  Being *faster* than the baseline never fails —
    commit the improvement with ``repro bench --write`` to ratchet the
    floor up.  Returns violation dicts shaped like :func:`compare`'s.
    """
    tol = perf_tolerance(tolerance)
    violations: List[Dict[str, Any]] = []
    base_scen = baseline.get("scenarios", {})
    cur_scen = current.get("scenarios", {})
    for scenario in sorted(base_scen):
        for key in sorted(base_scen[scenario]):
            if not key.endswith("_per_sec_wall"):
                continue
            base_rate = float(base_scen[scenario][key])
            path = f"scenarios.{scenario}.{key}"
            cur_rate = cur_scen.get(scenario, {}).get(key)
            if cur_rate is None:
                violations.append({
                    "path": path, "kind": "missing",
                    "baseline": base_rate, "current": None,
                })
                continue
            floor = base_rate * (1.0 - tol)
            if float(cur_rate) < floor:
                violations.append({
                    "path": path, "kind": "throughput",
                    "baseline": base_rate, "current": float(cur_rate),
                    "floor": floor, "tolerance": tol,
                })
    return violations


def stable_payload(payload: Any) -> Any:
    """Diff-stable form: sorted keys, rounded floats, ``_wall`` verbatim.

    Wall-clock fields are expected to differ between runs; everything
    else rounds through :func:`~repro.obs.metrics.stable_round` so two
    measurements of the same simulation serialize byte-identically.
    """
    if isinstance(payload, dict):
        return {
            k: (v if isinstance(k, str) and is_wall_field(k)
                else stable_payload(v))
            for k, v in sorted(payload.items())
        }
    if isinstance(payload, (list, tuple)):
        return [stable_payload(v) for v in payload]
    if isinstance(payload, float):
        return stable_round(payload)
    return payload


def write_baseline(root: pathlib.Path, name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Write one ``BENCH_*.json`` baseline at the repo root."""
    path = pathlib.Path(root) / name
    path.write_text(
        json.dumps(stable_payload(payload), indent=2, sort_keys=True) + "\n"
    )
    return path


def flatten(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Nested dict -> {'a.b.c': leaf}; lists indexed numerically."""
    out: Dict[str, Any] = {}
    if isinstance(payload, dict):
        for k, v in payload.items():
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(payload, (list, tuple)):
        for i, v in enumerate(payload):
            out.update(flatten(v, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = payload
    return out


def _tolerance_for(path: str, tolerances: Dict[str, float]) -> float:
    leaf = path.rsplit(".", 1)[-1]
    for key in (path, leaf):
        if key in tolerances:
            return tolerances[key]
    for key, tol in tolerances.items():
        if path.startswith(key + ".") or path.endswith("." + key):
            return tol
    return _DEFAULT_TOL


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerances: Optional[Dict[str, float]] = None,
) -> List[Dict[str, Any]]:
    """Diff two benchmark payloads; returns the list of violations.

    Wall-clock fields (path leaf ending in ``_wall``) are skipped.
    Numeric leaves compare with a per-metric relative tolerance; other
    leaves (workload descriptors, labels) must match exactly.  Missing
    or extra non-wall leaves are violations too: a baseline that loses a
    metric silently is as suspect as one that drifts.
    """
    tol_map = dict(DEFAULT_TOLERANCES)
    tol_map.update(tolerances or {})
    # Round both sides the way baselines are serialized, so a fresh
    # in-memory measurement compares cleanly against a committed file.
    cur = {
        k: v for k, v in flatten(stable_payload(current)).items()
        if not is_wall_field(k)
    }
    base = {
        k: v for k, v in flatten(stable_payload(baseline)).items()
        if not is_wall_field(k)
    }
    violations: List[Dict[str, Any]] = []
    for path in sorted(base.keys() | cur.keys()):
        if path not in cur:
            violations.append({"path": path, "kind": "missing",
                               "baseline": base[path], "current": None})
            continue
        if path not in base:
            violations.append({"path": path, "kind": "new",
                               "baseline": None, "current": cur[path]})
            continue
        b, c = base[path], cur[path]
        if isinstance(b, (int, float)) and isinstance(c, (int, float)) \
                and not isinstance(b, bool) and not isinstance(c, bool):
            tol = _tolerance_for(path, tol_map)
            scale = max(abs(float(b)), abs(float(c)), 1e-12)
            if abs(float(c) - float(b)) > tol * scale + 1e-12:
                violations.append({
                    "path": path, "kind": "drift",
                    "baseline": b, "current": c, "tolerance": tol,
                })
        elif b != c:
            violations.append({"path": path, "kind": "changed",
                               "baseline": b, "current": c})
    return violations


def render_violations(violations: List[Dict[str, Any]]) -> str:
    if not violations:
        return "bench: OK (all tracked metrics within tolerance)"
    lines = [f"bench: {len(violations)} metric(s) drifted from baseline"]
    for v in violations:
        if v["kind"] == "drift":
            lines.append(
                f"  [drift]   {v['path']}: {v['baseline']} -> {v['current']}"
                f" (tol {v['tolerance']:g})"
            )
        elif v["kind"] == "throughput":
            lines.append(
                f"  [throughput] {v['path']}: {v['current']:.0f}/s fell "
                f"below the floor {v['floor']:.0f}/s "
                f"(baseline {v['baseline']:.0f}/s, tol {v['tolerance']:g})"
            )
        else:
            lines.append(
                f"  [{v['kind']}] {v['path']}: "
                f"{v['baseline']!r} -> {v['current']!r}"
            )
    return "\n".join(lines)


def _load(path: pathlib.Path) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def check_baselines(
    root: Optional[pathlib.Path] = None,
    current_core: Optional[Dict[str, Any]] = None,
    current_faults: Optional[Dict[str, Any]] = None,
    current_serve: Optional[Dict[str, Any]] = None,
    current_dag: Optional[Dict[str, Any]] = None,
    current_perf: Optional[Dict[str, Any]] = None,
    perf_floor_tolerance: Optional[float] = None,
) -> Tuple[bool, str]:
    """The regression gate: committed baselines vs a fresh measurement.

    Re-measures the core ladder (pass ``current_core`` to reuse an
    existing measurement), diffs it against ``BENCH_core.json``,
    cross-checks ``BENCH_obs.json``'s deterministic fields against the
    same run — both files describe the identical workload, so their
    MGPS makespans must agree — and diffs fresh
    :func:`measure_faults` / :func:`measure_serve` / :func:`measure_dag`
    runs against ``BENCH_faults.json`` / ``BENCH_serve.json`` /
    ``BENCH_dag.json`` (serve re-asserts cross-policy digest identity;
    dag re-asserts the 100% warm-cache hit rate, warm digest identity,
    the >= 30% bootstop savings and exact job conservation with zero
    losses).  Finally it checks the
    ``BENCH_perf.json`` throughput grid: deterministic counts diff like
    any baseline, and the ``*_per_sec_wall`` rates must stay above their
    :func:`check_perf_floors` floor (``perf_floor_tolerance`` overrides
    the default; see :func:`perf_tolerance`).  Returns
    ``(ok, report_text)``.
    """
    root = pathlib.Path(root) if root is not None else find_repo_root()
    lines: List[str] = []
    ok = True

    core_path = root / CORE_BASELINE
    if not core_path.exists():
        return False, f"bench: missing baseline {core_path}"
    baseline = _load(core_path)
    missing = [k for k in REQUIRED_CORE_KEYS if k not in baseline]
    if missing:
        return False, f"bench: {CORE_BASELINE} lacks required keys {missing}"
    current = current_core or measure_core(
        bootstraps=baseline["workload"].get("bootstraps", BOOTSTRAPS),
        tasks=baseline["workload"].get("tasks_per_bootstrap", TASKS),
        seed=baseline["workload"].get("seed", SEED),
    )
    violations = compare(current, baseline)
    lines.append(render_violations(violations))
    ok &= not violations

    obs_path = root / OBS_BASELINE
    if not obs_path.exists():
        lines.append(f"bench: missing baseline {obs_path}")
        ok = False
    else:
        obs = _load(obs_path)
        missing = [k for k in REQUIRED_OBS_KEYS if k not in obs]
        if missing:
            lines.append(f"bench: {OBS_BASELINE} lacks required keys {missing}")
            ok = False
        else:
            obs_wl = obs["workload"]
            mgps_row = current["schedulers"].get("mgps", {})
            if (
                obs_wl.get("scheduler") == "mgps"
                and obs_wl.get("bootstraps") == current["workload"]["bootstraps"]
                and obs_wl.get("tasks_per_bootstrap")
                    == current["workload"]["tasks_per_bootstrap"]
            ):
                cross = compare(
                    {"makespan_s": mgps_row.get("makespan_s"),
                     "offloads": mgps_row.get("offloads")},
                    {"makespan_s": obs["makespan_s"],
                     "offloads": obs["offloads"]},
                )
                if cross:
                    lines.append(f"bench: {OBS_BASELINE} disagrees with the "
                                 f"core ladder on the shared MGPS workload")
                    lines.append(render_violations(cross))
                    ok = False
                else:
                    lines.append(f"bench: {OBS_BASELINE} consistent with the "
                                 f"core ladder (shared MGPS workload)")
            else:
                lines.append(f"bench: {OBS_BASELINE} workload differs from "
                             f"the core ladder; structural check only")

    faults_path = root / FAULTS_BASELINE
    if not faults_path.exists():
        lines.append(f"bench: missing baseline {faults_path}")
        ok = False
    else:
        faults_base = _load(faults_path)
        missing = [k for k in REQUIRED_FAULTS_KEYS if k not in faults_base]
        if missing:
            lines.append(
                f"bench: {FAULTS_BASELINE} lacks required keys {missing}"
            )
            ok = False
        else:
            fcur = current_faults or measure_faults(
                bootstraps=faults_base["workload"].get("bootstraps", BOOTSTRAPS),
                tasks=faults_base["workload"].get(
                    "tasks_per_bootstrap", TASKS
                ),
                seed=faults_base["workload"].get("seed", SEED),
            )
            fviol = compare(fcur, faults_base)
            if fviol:
                lines.append(f"bench: {FAULTS_BASELINE} drifted")
                lines.append(render_violations(fviol))
                ok = False
            else:
                lines.append(
                    f"bench: {FAULTS_BASELINE} OK (fault-tolerance ladder "
                    f"within tolerance)"
                )
            for scenario in ("zero_fault_tolerant", "faulty"):
                if not fcur.get(scenario, {}).get("digest_match", False):
                    lines.append(
                        f"bench: {FAULTS_BASELINE}: {scenario} application "
                        f"results diverged from the fault-free run"
                    )
                    ok = False
            fleet = fcur.get("fleet_faults", {})
            if fleet.get("lost_jobs", -1) != 0:
                lines.append(
                    f"bench: {FAULTS_BASELINE}: fleet_faults lost "
                    f"{fleet.get('lost_jobs')} job(s) under chaos"
                )
                ok = False
            if not fleet.get("digests_identical", False):
                lines.append(
                    f"bench: {FAULTS_BASELINE}: fleet_faults digests "
                    f"diverged from the fault-free run"
                )
                ok = False
            if not fleet.get("invariants_ok", False):
                lines.append(
                    f"bench: {FAULTS_BASELINE}: fleet_faults chaos "
                    f"invariants failed"
                )
                ok = False
            if not fleet.get("deadline_conservation_ok", False):
                lines.append(
                    f"bench: {FAULTS_BASELINE}: fleet_faults deadline "
                    f"cell broke admitted == completed + cancelled "
                    f"+ aborted + lost"
                )
                ok = False

    serve_path = root / SERVE_BASELINE
    if not serve_path.exists():
        lines.append(f"bench: missing baseline {serve_path}")
        ok = False
    else:
        serve_base = _load(serve_path)
        missing = [k for k in REQUIRED_SERVE_KEYS if k not in serve_base]
        if missing:
            lines.append(
                f"bench: {SERVE_BASELINE} lacks required keys {missing}"
            )
            ok = False
        else:
            scur = current_serve or measure_serve(
                seed=serve_base["workload"].get("seed", SEED),
                duration_s=serve_base["workload"].get(
                    "duration_s", SERVE_DURATION_S
                ),
                arrival_rate=serve_base["workload"].get(
                    "arrival_rate", SERVE_ARRIVAL_RATE
                ),
            )
            sviol = compare(scur, serve_base)
            if sviol:
                lines.append(f"bench: {SERVE_BASELINE} drifted")
                lines.append(render_violations(sviol))
                ok = False
            else:
                lines.append(
                    f"bench: {SERVE_BASELINE} OK (serving SLO grid within "
                    f"tolerance)"
                )
            if not scur.get("digests_identical", False):
                lines.append(
                    f"bench: {SERVE_BASELINE}: per-job digests diverged "
                    f"across dispatch policies"
                )
                ok = False

    dag_path = root / DAG_BASELINE
    if not dag_path.exists():
        lines.append(f"bench: missing baseline {dag_path}")
        ok = False
    else:
        dag_base = _load(dag_path)
        missing = [k for k in REQUIRED_DAG_KEYS if k not in dag_base]
        if missing:
            lines.append(
                f"bench: {DAG_BASELINE} lacks required keys {missing}"
            )
            ok = False
        else:
            dwl = dag_base.get("workload", {})
            dcur = current_dag or measure_dag(
                seed=dwl.get("seed", SEED),
                replicates=dwl.get("replicates", DAG_REPLICATES),
                conflict=dwl.get("conflict", DAG_CONFLICT),
            )
            dviol = compare(dcur, dag_base)
            if dviol:
                lines.append(f"bench: {DAG_BASELINE} drifted")
                lines.append(render_violations(dviol))
                ok = False
            else:
                lines.append(
                    f"bench: {DAG_BASELINE} OK (workflow grid within "
                    f"tolerance)"
                )
            # Semantic gates beyond drift: these hold against *any*
            # baseline, so a stale --write cannot weaken them.
            if dcur.get("warm_hit_rate") != 1.0:
                lines.append(
                    f"bench: {DAG_BASELINE}: repeat submission missed the "
                    f"stage cache (warm hit rate "
                    f"{dcur.get('warm_hit_rate', 0.0):.0%}, want 100%)"
                )
                ok = False
            if not dcur.get("warm_digest_identical", False):
                lines.append(
                    f"bench: {DAG_BASELINE}: warm workflow digest diverged "
                    f"from the cache-cold run"
                )
                ok = False
            if dcur.get("bootstop_savings", 0.0) < 0.30:
                lines.append(
                    f"bench: {DAG_BASELINE}: bootstop cancelled only "
                    f"{dcur.get('bootstop_savings', 0.0):.0%} of the "
                    f"fan-out (want >= 30%)"
                )
                ok = False
            if not dcur.get("conservation_ok", False):
                lines.append(
                    f"bench: {DAG_BASELINE}: a workflow cell broke "
                    f"admitted == completed + cancelled + aborted + lost"
                )
                ok = False
            if dcur.get("lost_jobs", 1) != 0:
                lines.append(
                    f"bench: {DAG_BASELINE}: workflow grid lost "
                    f"{dcur.get('lost_jobs')} jobs (want 0)"
                )
                ok = False

    perf_path = root / PERF_BASELINE
    if not perf_path.exists():
        lines.append(f"bench: missing baseline {perf_path}")
        ok = False
    else:
        perf_base = _load(perf_path)
        missing = [k for k in REQUIRED_PERF_KEYS if k not in perf_base]
        if missing:
            lines.append(
                f"bench: {PERF_BASELINE} lacks required keys {missing}"
            )
            ok = False
        else:
            pwl = perf_base.get("workload", {})
            pcur = current_perf or measure_throughput(
                bootstraps=pwl.get("bootstraps", BOOTSTRAPS),
                tasks=pwl.get("tasks_per_bootstrap", TASKS),
                seed=pwl.get("seed", SEED),
                duration_s=pwl.get(
                    "serve_duration_s", PERF_SERVE_DURATION_S
                ),
                arrival_rate=pwl.get(
                    "serve_arrival_rate", PERF_SERVE_ARRIVAL_RATE
                ),
                reps=pwl.get("reps", 3),
                small_duration_s=pwl.get(
                    "serve_small_duration_s", SERVE_DURATION_S
                ),
                small_arrival_rate=pwl.get(
                    "serve_small_arrival_rate", SERVE_ARRIVAL_RATE
                ),
            )
            # Deterministic counts gate like any baseline; wall rates
            # are excluded automatically (``_wall`` suffix) and only
            # their one-sided floors below can fail the gate.
            pviol = compare(pcur, perf_base)
            pviol += check_perf_floors(
                pcur, perf_base, tolerance=perf_floor_tolerance
            )
            if pviol:
                lines.append(f"bench: {PERF_BASELINE} drifted")
                lines.append(render_violations(pviol))
                ok = False
            else:
                tol = perf_tolerance(perf_floor_tolerance)
                lines.append(
                    f"bench: {PERF_BASELINE} OK (throughput above the "
                    f"{tol:.0%}-regression floor)"
                )
    return bool(ok), "\n".join(lines)
