"""Deterministic windowed time-series, sampled post-hoc from a trace.

The future auto-tuner (the ``mgps-auto`` ROADMAP item) needs *signals
over time*, not end-of-run scalars: how blade utilization, queue depth
and in-flight load evolved across the run, and how SPE capacity
decayed under faults.  A live sampler process would inject kernel
events and perturb the determinism baselines, so this module instead
folds the finished :class:`~repro.sim.trace.Tracer` record stream into
fixed sim-time buckets — a pure function of the trace, bit-identical
across runs of the same config.

Semantics per series (bucket ``b`` covers ``[b*w, (b+1)*w)``):

* step gauges (``queue_depth``, ``in_flight``, per-blade
  ``bladeN.queue``, ``active_blades``, ``live_spes``) are sampled at
  the bucket's *end* — the value the step function holds at
  ``(b+1)*w``;
* utilization series (``bladeN.u``) are the fraction of the bucket
  covered by that blade's busy intervals (dispatch overhead plus
  service segments), in ``[0, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .metrics import stable_round

__all__ = ["TimeSeries", "sample_timeseries"]

DEFAULT_BUCKETS = 60


@dataclass
class TimeSeries:
    """Bucketed gauges: ``series[name][b]`` is the value in bucket b."""

    window_s: float
    times: Tuple[float, ...]                 # bucket start times
    series: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    @property
    def n_buckets(self) -> int:
        return len(self.times)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window_s": stable_round(self.window_s),
            "times": [stable_round(t) for t in self.times],
            "series": {
                name: [stable_round(v) for v in vals]
                for name, vals in sorted(self.series.items())
            },
        }


def _sample_steps(changes: List[Tuple[float, float]], edges: List[float],
                  initial: float = 0.0) -> Tuple[float, ...]:
    """Value of a step function (``(time, delta)`` list) at each edge."""
    out: List[float] = []
    value = initial
    i = 0
    changes = sorted(changes)
    for edge in edges:
        while i < len(changes) and changes[i][0] <= edge:
            value += changes[i][1]
            i += 1
        out.append(max(0.0, value))
    return tuple(out)


def _sample_levels(levels: List[Tuple[float, float]], edges: List[float],
                   initial: float) -> Tuple[float, ...]:
    """Value of a piecewise-constant ``(time, new_value)`` series."""
    out: List[float] = []
    value = initial
    i = 0
    levels = sorted(levels)
    for edge in edges:
        while i < len(levels) and levels[i][0] <= edge:
            value = levels[i][1]
            i += 1
        out.append(value)
    return tuple(out)


def _busy_fraction(intervals: List[Tuple[float, float]], lo: float,
                   hi: float) -> float:
    width = hi - lo
    if width <= 0:
        return 0.0
    covered = 0.0
    for a, b in intervals:
        covered += max(0.0, min(b, hi) - max(a, lo))
    return min(1.0, covered / width)


def sample_timeseries(source, window_s: Optional[float] = None,
                      horizon: Optional[float] = None) -> TimeSeries:
    """Fold a trace into windowed gauges.

    ``source`` is a Tracer or record iterable.  ``horizon`` defaults to
    the last record's timestamp; ``window_s`` defaults to
    ``horizon / 60`` so any run yields a plottable series.  Which
    series appear depends on what the trace contains: serving runs
    contribute queue/in-flight/blade series, fault runs contribute
    ``live_spes``.
    """
    records = list(getattr(source, "records", source))
    if horizon is None:
        horizon = records[-1].time if records else 0.0
    if horizon <= 0.0:
        return TimeSeries(window_s=window_s or 1.0, times=())
    if window_s is None:
        window_s = horizon / DEFAULT_BUCKETS
    n = max(1, int(math.ceil(horizon / window_s - 1e-12)))
    times = tuple(b * window_s for b in range(n))
    edges = [(b + 1) * window_s for b in range(n)]

    frontend: List[Tuple[float, float]] = []     # admission-heap deltas
    in_flight: List[Tuple[float, float]] = []    # jobs in system deltas
    blade_queue: Dict[str, List[Tuple[float, float]]] = {}
    blade_busy: Dict[str, List[Tuple[float, float]]] = {}
    blade_open: Dict[str, float] = {}            # open busy-segment start
    unit_remaining: Dict[str, int] = {}          # jobs left in running unit
    active_levels: List[Tuple[float, float]] = []
    spe_levels: List[Tuple[float, float]] = []
    initial_spes: Optional[float] = None
    blades_seen: set = set()
    had_serve = False

    for rec in records:
        cat, ev, t = rec.category, rec.event, rec.time
        if cat == "serve":
            had_serve = True
            if ev == "admit":
                frontend.append((t, 1.0))
                in_flight.append((t, 1.0))
            elif ev == "unit":
                frontend.append((t, -float(len(rec.get("jobs", ())))))
            elif ev == "enqueue":
                blades_seen.add(rec.actor)
                blade_queue.setdefault(rec.actor, []).append((t, 1.0))
            elif ev == "unit-start":
                blades_seen.add(rec.actor)
                blade_queue.setdefault(rec.actor, []).append((t, -1.0))
                blade_open.setdefault(rec.actor, t)
                unit_remaining[rec.actor] = len(rec.get("jobs", ()))
            elif ev == "steal":
                victim = rec.get("victim")
                if victim is not None:
                    blade_queue.setdefault(f"blade{victim}", []) \
                        .append((t, -1.0))
            elif ev == "lost":
                in_flight.append((t, -1.0))
            elif ev == "finish":
                in_flight.append((t, -1.0))
                left = unit_remaining.get(rec.actor, 0) - 1
                unit_remaining[rec.actor] = left
                if left <= 0:
                    # Last job of the running unit: the blade goes idle
                    # (a back-to-back unit reopens the segment at its
                    # own unit-start).
                    start = blade_open.pop(rec.actor, None)
                    if start is not None and t > start:
                        blade_busy.setdefault(rec.actor, []) \
                            .append((start, t))
            elif ev == "failover":
                unit_remaining.pop(rec.actor, None)
                start = blade_open.pop(rec.actor, None)
                if start is not None and t > start:
                    blade_busy.setdefault(rec.actor, []).append((start, t))
            elif ev in ("scale-up", "scale-down"):
                active_levels.append((t, float(rec.get("active", 0))))
            elif ev == "blade-kill":
                blade = f"blade{rec.get('blade')}"
                # A dead blade's queue drains to survivors instantly.
                blade_queue.setdefault(blade, []).append((t, -1e9))
        elif cat == "fault" and ev == "spe_kill":
            live = rec.get("live_spes")
            if live is not None:
                if initial_spes is None:
                    initial_spes = float(live) + 1.0
                spe_levels.append((t, float(live)))

    # Close any still-open blade segments at the horizon.
    for blade, start in blade_open.items():
        if horizon > start:
            blade_busy.setdefault(blade, []).append((start, horizon))

    series: Dict[str, Tuple[float, ...]] = {}
    if had_serve:
        series["queue_depth"] = _sample_steps(frontend, edges)
        series["in_flight"] = _sample_steps(in_flight, edges)
        if active_levels:
            series["active_blades"] = _sample_levels(
                active_levels, edges, initial=float(len(blades_seen))
            )
        for blade in sorted(blades_seen):
            series[f"{blade}.queue"] = _sample_steps(
                blade_queue.get(blade, []), edges
            )
            intervals = blade_busy.get(blade, [])
            series[f"{blade}.u"] = tuple(
                _busy_fraction(intervals, b * window_s, (b + 1) * window_s)
                for b in range(n)
            )
    if spe_levels:
        series["live_spes"] = _sample_levels(
            spe_levels, edges, initial=initial_spes or 0.0
        )
    return TimeSeries(window_s=window_s, times=times, series=series)
