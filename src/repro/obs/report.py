"""Self-contained HTML performance report for one scheduler run.

``render_report`` turns a finished run's span stream + metrics registry
(+ the health monitor's findings) into a single HTML file with inline
CSS and inline SVG — no scripts, no network, no external URLs — so the
artifact can be attached to a CI run or mailed around and still open a
decade later.  Sections (each with a stable anchor, asserted by tests):

* ``#summary`` — headline stat tiles (makespan, SPE utilization, ...);
* ``#findings`` — the health monitor's verdicts as a table;
* ``#gantt`` — one utilization lane per SPE actor, master vs LLP-worker
  task intervals;
* ``#u-series`` — the MGPS window-``U`` estimate per decision with the
  LLP trigger threshold marked;
* ``#latency`` — off-load dispatch-to-completion latency histogram;
* ``#llp-adaptation`` — the master chunk fraction per loop invocation
  (the adaptive-unbalancing trajectory);
* ``#serving`` — the serving lane: per-tenant SLO table (tail latency,
  goodput, rejection and deadline-miss rates), job sojourn histogram
  and fleet lifecycle events; present only when the run carried
  ``serve.*`` metrics (``repro serve``);
* ``#perf`` — the wall-clock profile lane: top sections by exclusive
  time as self-vs-child bars, kernel events/sec and heap tallies
  (empty state when no :class:`~repro.obs.profile.Profiler` was
  attached to the run);
* ``#faults`` — injected faults and the runtime's recovery actions as a
  time-ordered event table (empty state when the run was fault-free).

Charts follow the fixed mark specs (2px lines, thin rounded bars, 2px
surface gaps, hairline grid) and a categorical palette validated for
color-vision deficiency; identity is never carried by color alone (every
multi-series chart has a legend, marks carry native ``<title>``
tooltips, and the findings table pairs severity color with a glyph and
label).
"""

from __future__ import annotations

import html
import math
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.trace import Tracer
from .monitor import HealthFinding

__all__ = ["render_report", "write_report"]


# -- data extraction ----------------------------------------------------------

def _makespan(tracer: Optional[Tracer], registry) -> float:
    inst = registry.get("run.raw_makespan_s") if registry is not None else None
    if inst is not None and inst.value > 0:
        return float(inst.value)
    if tracer is not None and tracer.records:
        return max(r.time for r in tracer.records)
    return 0.0


def _value(registry, name: str, default: float = 0.0) -> float:
    inst = registry.get(name) if registry is not None else None
    return float(inst.value) if inst is not None else default


def _spe_lanes(
    tracer: Optional[Tracer], registry, makespan: float
) -> Dict[str, List[Tuple[float, float, str, str]]]:
    """Per-SPE task intervals: actor -> [(start, end, role, function)].

    Actors known only from the registry's per-SPE utilization gauges
    (SPEs that never ran a task) get an empty lane, so starvation is
    *visible* rather than silently cropped.
    """
    lanes: Dict[str, List[Tuple[float, float, str, str]]] = {}
    if registry is not None:
        for name in registry.names():
            if name.startswith('spe.utilization{spe="'):
                lanes.setdefault(name[len('spe.utilization{spe="'):-2], [])
    open_at: Dict[str, Tuple[float, str, str]] = {}
    for r in (tracer.records if tracer is not None else ()):
        if r.category != "spe":
            continue
        if r.event == "task_start":
            role = "worker" if r.get("role") == "worker" else "master"
            open_at[r.actor] = (r.time, role, str(r.get("function", "")))
            lanes.setdefault(r.actor, [])
        elif r.event == "task_end" and r.actor in open_at:
            t0, role, fn = open_at.pop(r.actor)
            lanes[r.actor].append((t0, r.time, role, fn))
    for actor, (t0, role, fn) in open_at.items():
        lanes[actor].append((t0, makespan, role, fn))
    return {a: lanes[a] for a in sorted(lanes)}


def _u_series(tracer: Optional[Tracer]) -> List[Tuple[float, float, bool]]:
    """(time, U, llp_active) per MGPS window decision."""
    if tracer is None:
        return []
    return [
        (r.time, float(r.get("u", 0)), bool(r.get("active")))
        for r in tracer.filter(category="sched", event="decision")
    ]


def _adaptation_series(
    tracer: Optional[Tracer],
) -> Dict[str, List[Tuple[int, float, float]]]:
    """Per loop: [(invocation index, master_fraction, join_idle_us)].

    The series key names the active :class:`~repro.core.llp.LoopSchedule`
    whenever it is not the default single split, so self-scheduling runs
    are distinguishable in the chart legend.
    """
    series: Dict[str, List[Tuple[int, float, float]]] = {}
    if tracer is None:
        return series
    for r in tracer.filter(event="llp_invoke"):
        schedule = r.get("schedule", "static")
        suffix = "" if schedule == "static" else f", {schedule}"
        key = f"{r.get('function')} (k={r.get('k')}{suffix})"
        seq = series.setdefault(key, [])
        seq.append((
            len(seq),
            float(r.get("master_fraction", 0.0)),
            float(r.get("join_idle_us", 0.0)),
        ))
    return series


def _llp_schedule_note(tracer: Optional[Tracer]) -> str:
    """Chart note: active loop schedule(s) with chunk-assignment counts."""
    if tracer is None:
        return ""
    per_schedule: Dict[str, Tuple[int, int]] = {}
    for r in tracer.filter(event="llp_invoke"):
        name = str(r.get("schedule", "static"))
        chunks = sum(r.get("chunk_counts", ()) or ())
        invocations, total_chunks = per_schedule.get(name, (0, 0))
        per_schedule[name] = (invocations + 1, total_chunks + chunks)
    if not per_schedule:
        return ""
    parts = ", ".join(
        f"{name}: {inv} invocations, {chunks} chunks assigned"
        for name, (inv, chunks) in sorted(per_schedule.items())
    )
    return f'<p class="chart-note">Loop schedule &#8212; {_esc(parts)}</p>'


# -- svg primitives -----------------------------------------------------------

_W = 720          # chart viewBox width
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 52, 16, 12, 30


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 10:
        return f"{v:.0f}"
    if abs(v) >= 1:
        return f"{v:.1f}".rstrip("0").rstrip(".")
    return f"{v:.2g}"


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Clean tick positions covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    for m in (1, 2, 5, 10):
        if raw <= m * mag:
            step = m * mag
            break
    first = math.ceil(lo / step) * step
    out = []
    t = first
    while t <= hi + 1e-12:
        out.append(round(t, 12))
        t += step
    return out or [lo]


def _grid_and_axes(
    plot_h: float,
    x_lo: float, x_hi: float, y_lo: float, y_hi: float,
    x_label: str, y_label: str,
    x_fmt=None, y_fmt=None,
    y_axis: bool = True, x_ticks: bool = True,
) -> Tuple[str, Any, Any]:
    """Hairline grid + tick labels; returns (svg, x_scale, y_scale).

    ``y_axis=False`` drops the horizontal gridlines and y tick labels
    (Gantt lanes label themselves); ``x_ticks=False`` drops numeric x
    labels (categorical bins label their own marks).
    """
    plot_w = _W - _PAD_L - _PAD_R
    span_x = (x_hi - x_lo) or 1.0
    span_y = (y_hi - y_lo) or 1.0
    sx = lambda v: _PAD_L + (v - x_lo) / span_x * plot_w
    sy = lambda v: _PAD_T + plot_h - (v - y_lo) / span_y * plot_h
    x_fmt = x_fmt or _fmt
    y_fmt = y_fmt or _fmt
    parts = []
    if y_axis:
        for t in _ticks(y_lo, y_hi):
            y = sy(t)
            parts.append(
                f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}" '
                f'x2="{_W - _PAD_R}" y2="{y:.1f}"/>'
            )
            parts.append(
                f'<text class="tick" x="{_PAD_L - 6}" y="{y + 3:.1f}" '
                f'text-anchor="end">{_esc(y_fmt(t))}</text>'
            )
    if x_ticks:
        for t in _ticks(x_lo, x_hi, 8):
            x = sx(t)
            parts.append(
                f'<text class="tick" x="{x:.1f}" y="{_PAD_T + plot_h + 14}" '
                f'text-anchor="middle">{_esc(x_fmt(t))}</text>'
            )
    parts.append(
        f'<line class="axis" x1="{_PAD_L}" y1="{_PAD_T + plot_h}" '
        f'x2="{_W - _PAD_R}" y2="{_PAD_T + plot_h}"/>'
    )
    parts.append(
        f'<text class="axis-label" x="{_W - _PAD_R}" '
        f'y="{_PAD_T + plot_h + 26}" text-anchor="end">{_esc(x_label)}</text>'
    )
    if y_label:
        parts.append(
            f'<text class="axis-label" x="{_PAD_L}" y="{_PAD_T - 2}" '
            f'text-anchor="start">{_esc(y_label)}</text>'
        )
    return "".join(parts), sx, sy


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    """Inline legend: [(css-class, label)] -> swatch + text row."""
    items = "".join(
        f'<span class="key"><span class="swatch {cls}"></span>{_esc(lab)}</span>'
        for cls, lab in entries
    )
    return f'<div class="legend">{items}</div>'


# -- charts -------------------------------------------------------------------

def _gantt_svg(
    lanes: Dict[str, List[Tuple[float, float, str, str]]], makespan: float
) -> str:
    if not lanes or makespan <= 0:
        return '<p class="empty">No SPE task intervals recorded.</p>'
    lane_h, gap = 18, 6
    plot_h = len(lanes) * (lane_h + gap) - gap
    unit = 1e3 if makespan < 0.5 else 1.0
    unit_name = "ms" if unit == 1e3 else "s"
    grid, sx, _sy = _grid_and_axes(
        plot_h, 0.0, makespan * unit, 0.0, 1.0,
        f"time [{unit_name}]", "",
        y_axis=False,
    )
    parts = [grid]
    busy_of = {
        a: sum(e - s for s, e, _r, _f in iv) / makespan
        for a, iv in lanes.items()
    }
    for i, (actor, intervals) in enumerate(lanes.items()):
        y = _PAD_T + i * (lane_h + gap)
        parts.append(
            f'<text class="tick" x="{_PAD_L - 6}" y="{y + lane_h / 2 + 3}" '
            f'text-anchor="end">{_esc(actor)} '
            f'{busy_of[actor]:.0%}</text>'
        )
        parts.append(
            f'<rect class="lane" x="{_PAD_L}" y="{y}" '
            f'width="{_W - _PAD_L - _PAD_R}" height="{lane_h}"/>'
        )
        for s, e, role, fn in intervals:
            x0, x1 = sx(s * unit), sx(e * unit)
            w = max(x1 - x0 - 0.5, 0.75)  # 0.5px surface gap between tasks
            cls = "s3" if role == "worker" else "s1"
            title = (f"{fn} on {actor} ({role}): "
                     f"{(e - s) * 1e6:.1f} us at t={s * unit:.3f} {unit_name}")
            parts.append(
                f'<rect class="{cls}" x="{x0:.2f}" y="{y + 1}" '
                f'width="{w:.2f}" height="{lane_h - 2}">'
                f'<title>{_esc(title)}</title></rect>'
            )
    height = _PAD_T + plot_h + _PAD_B
    svg = (f'<svg viewBox="0 0 {_W} {height}" role="img" '
           f'aria-label="SPE utilization Gantt">{"".join(parts)}</svg>')
    return _legend([("s1", "task (master SPE)"),
                    ("s3", "LLP worker chunk")]) + svg


def _u_series_svg(
    series: List[Tuple[float, float, bool]], n_spes: int, threshold: float
) -> str:
    if not series:
        return ('<p class="empty">No MGPS window decisions recorded '
                '(scheduler without a utilization window).</p>')
    plot_h = 180
    xs = list(range(len(series)))
    y_hi = max(n_spes, max(u for _t, u, _a in series))
    grid, sx, sy = _grid_and_axes(
        plot_h, 0, max(len(series) - 1, 1), 0, y_hi,
        "window decision #", "U (exposed task parallelism)",
    )
    pts = " ".join(
        f"{sx(i):.1f},{sy(u):.1f}" for i, (_t, u, _a) in zip(xs, series)
    )
    thr_y = sy(threshold)
    parts = [grid]
    parts.append(
        f'<line class="threshold" x1="{_PAD_L}" y1="{thr_y:.1f}" '
        f'x2="{_W - _PAD_R}" y2="{thr_y:.1f}"/>'
    )
    parts.append(
        f'<text class="threshold-label" x="{_W - _PAD_R - 4}" '
        f'y="{thr_y - 4:.1f}" text-anchor="end">'
        f'LLP trigger (U &#8804; {_fmt(threshold)})</text>'
    )
    parts.append(f'<polyline class="line s1" points="{pts}"/>')
    for i, (t, u, active) in zip(xs, series):
        state = "LLP on" if active else "LLP off"
        parts.append(
            f'<circle class="dot {"s1" if active else "hollow"}" '
            f'cx="{sx(i):.1f}" cy="{sy(u):.1f}" r="3">'
            f'<title>decision {i}: U={_fmt(u)}, {state}, '
            f't={t * 1e3:.3f} ms</title></circle>'
        )
    height = _PAD_T + plot_h + _PAD_B
    svg = (f'<svg viewBox="0 0 {_W} {height}" role="img" '
           f'aria-label="Window utilization U per decision">'
           f'{"".join(parts)}</svg>')
    return _legend([("s1", "U estimate (filled dot: LLP active)")]) + svg


def _latency_svg(registry) -> str:
    hist = registry.get("runtime.offload_latency_us") if registry else None
    if hist is None or getattr(hist, "count", 0) == 0:
        return '<p class="empty">No off-load latency samples recorded.</p>'
    snap = hist.snapshot()
    buckets = snap["buckets"]
    if not buckets:
        return '<p class="empty">No off-load latency samples recorded.</p>'
    plot_h = 180
    n = len(buckets)
    max_count = max(c for _b, c in buckets)
    grid, _sx, sy = _grid_and_axes(
        plot_h, 0, n, 0, max_count,
        "latency bucket [us, upper bound]", "off-loads",
        x_ticks=False,  # buckets are categorical bins, labeled per bar
    )
    plot_w = _W - _PAD_L - _PAD_R
    slot = plot_w / n
    bar_w = min(24.0, slot - 2.0)  # 2px surface gap between bars
    parts = [grid]
    for i, (bound, count) in enumerate(buckets):
        x = _PAD_L + i * slot + (slot - bar_w) / 2
        y = sy(count)
        h = _PAD_T + plot_h - y
        r = min(4.0, h / 2, bar_w / 2)
        label = "+inf" if bound == "+inf" else _fmt(float(bound))
        # Rounded data end, square baseline.
        parts.append(
            f'<path class="s1" d="M{x:.1f},{_PAD_T + plot_h:.1f} '
            f'V{y + r:.1f} Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} '
            f'H{x + bar_w - r:.1f} Q{x + bar_w:.1f},{y:.1f} '
            f'{x + bar_w:.1f},{y + r:.1f} V{_PAD_T + plot_h:.1f} Z">'
            f'<title>&#8804; {_esc(label)} us: {count} off-loads</title>'
            f'</path>'
        )
        parts.append(
            f'<text class="tick" x="{x + bar_w / 2:.1f}" '
            f'y="{_PAD_T + plot_h + 14}" text-anchor="middle">'
            f'{_esc(label)}</text>'
        )
    stats = (f'p50 {_fmt(snap["p50"])} us &#183; '
             f'p90 {_fmt(snap["p90"])} us &#183; '
             f'p99 {_fmt(snap["p99"])} us &#183; '
             f'max {_fmt(snap["max"])} us')
    height = _PAD_T + plot_h + _PAD_B
    svg = (f'<svg viewBox="0 0 {_W} {height}" role="img" '
           f'aria-label="Off-load latency histogram">{"".join(parts)}</svg>')
    return f'<p class="chart-note">{stats}</p>{svg}'


_PHASE_CLASS = {
    "admission": "p1",
    "blade-queue": "p2",
    "dispatch-overhead": "p4",
    "service": "p3",
}


def _phase_class(name: str) -> str:
    # Aborted attempts, requeue hops and anything unexpected render in
    # the critical hue so failover cost is visually loud.
    return _PHASE_CLASS.get(name, "p5")


def _stacked_bar(label: str, shares: Dict[str, float], detail: str) -> str:
    """One horizontal 100%-stacked phase bar with a row label."""
    bar_h, label_w = 18, 150
    plot_w = _W - label_w - _PAD_R
    parts = [
        f'<text class="tick" x="{label_w - 8}" y="{bar_h / 2 + 3:.1f}" '
        f'text-anchor="end">{_esc(label)}</text>'
    ]
    x = float(label_w)
    for name, share in shares.items():
        w = max(0.0, share) * plot_w
        if w <= 0.0:
            continue
        parts.append(
            f'<rect class="{_phase_class(name)}" x="{x:.1f}" y="0" '
            f'width="{w:.1f}" height="{bar_h}">'
            f'<title>{_esc(label)} &#8212; {_esc(name)}: '
            f'{share:.1%}{_esc(detail)}</title></rect>'
        )
        x += w
    return (f'<svg viewBox="0 0 {_W} {bar_h}" class="phase-bar" '
            f'role="img" aria-label="Phase breakdown: {_esc(label)}">'
            f'{"".join(parts)}</svg>')


def _sparkline(label: str, values: Sequence[float], note: str = "") -> str:
    """A small inline trend line for one windowed gauge series."""
    h, label_w = 34, 150
    plot_w = _W - label_w - _PAD_R
    hi = max(values) if values else 0.0
    if hi <= 0.0:
        hi = 1.0
    n = max(1, len(values) - 1)
    pts = " ".join(
        f"{label_w + i / n * plot_w:.1f},"
        f"{2 + (h - 4) * (1 - v / hi):.1f}"
        for i, v in enumerate(values)
    )
    peak = max(values) if values else 0.0
    tail = note or f"peak {_fmt(peak)}"
    return (
        f'<svg viewBox="0 0 {_W} {h}" class="spark-row" role="img" '
        f'aria-label="{_esc(label)} over time">'
        f'<text class="tick" x="{label_w - 8}" y="{h / 2 + 3:.1f}" '
        f'text-anchor="end">{_esc(label)}</text>'
        f'<polyline class="spark" points="{pts}"/>'
        f'<text class="tick" x="{_W - _PAD_R}" y="{h / 2 + 3:.1f}" '
        f'text-anchor="end">{_esc(tail)}</text></svg>'
    )


def _attribution_html(tracer) -> str:
    """Serve phase-breakdown bars + windowed sparklines for #latency.

    Returns '' for non-serving runs (the off-load histogram already
    covers them); a serving run with zero completed jobs gets an
    explicit empty state instead of a division by zero.
    """
    if tracer is None:
        return ""
    records = getattr(tracer, "records", ())
    if not any(r.category == "serve" for r in records):
        return ""
    from .attribution import aggregate_breakdown
    from .causal import build_job_trees
    from .timeseries import sample_timeseries

    trees = build_job_trees(tracer)
    breakdown = aggregate_breakdown(trees)
    parts = ['<h3>Sojourn phase breakdown</h3>']
    if breakdown.get("completed", 0) == 0:
        lost = breakdown.get("lost", 0)
        parts.append(
            '<p class="empty">No completed jobs &#8212; nothing to '
            f'attribute ({len(trees)} observed, {lost} lost).</p>'
        )
        return "".join(parts)
    overall = breakdown["overall"]
    legend = [(_phase_class(name), name)
              for name in overall["phase_shares"]]
    seen = set()
    legend = [e for e in legend
              if not (e[0] in seen or seen.add(e[0]))]
    parts.append(_legend(legend))
    parts.append(_stacked_bar(
        f"all jobs ({overall['jobs']})", overall["phase_shares"],
        f" &#183; mean sojourn {overall['mean_sojourn_s']:.2f} s",
    ))
    for tenant, group in breakdown.get("tenants", {}).items():
        parts.append(_stacked_bar(
            f"{tenant} ({group['jobs']})", group["phase_shares"],
            f" &#183; mean sojourn {group['mean_sojourn_s']:.2f} s",
        ))
    for p, ex in overall["percentile_exemplars"].items():
        parts.append(_stacked_bar(
            f"{p} exemplar (job {ex['job_id']})", ex["phase_shares"],
            f" &#183; sojourn {ex['sojourn_s']:.2f} s",
        ))
    ts = sample_timeseries(tracer)
    spark_keys = [k for k in ("queue_depth", "in_flight") if k in ts.series]
    spark_keys += sorted(k for k in ts.series if k.endswith(".u"))
    if spark_keys:
        parts.append(
            f'<h3>Windowed series ({ts.window_s:.0f} s buckets)</h3>'
        )
        for key in spark_keys:
            vals = list(ts.series[key])
            note = (f"peak {max(vals):.0%}" if key.endswith(".u")
                    else "")
            parts.append(_sparkline(key, vals, note))
    return "".join(parts)


def _adaptation_svg(series: Dict[str, List[Tuple[int, float, float]]]) -> str:
    if not series:
        return ('<p class="empty">No loop-parallel invocations recorded '
                '(LLP never fired).</p>')
    # Fixed-order categorical slots; beyond three series, fold the
    # shortest into "other" rather than cycling hues.
    keys = sorted(series, key=lambda k: -len(series[k]))
    shown, folded = keys[:3], keys[3:]
    plot_h = 180
    n_max = max(len(series[k]) for k in shown)
    f_vals = [f for k in shown for _i, f, _j in series[k]]
    y_lo = min(0.0, min(f_vals))
    y_hi = max(1.0, max(f_vals))
    grid, sx_raw, sy = _grid_and_axes(
        plot_h, 0, max(n_max - 1, 1), y_lo, y_hi,
        "loop invocation #", "master chunk fraction",
        y_fmt=lambda v: f"{v:.2g}",
    )
    parts = [grid]
    slot_classes = ["s1", "s2", "s3"]
    for cls, key in zip(slot_classes, shown):
        seq = series[key]
        scale = (n_max - 1) / max(len(seq) - 1, 1) if n_max > 1 else 1.0
        pts = " ".join(
            f"{sx_raw(i * scale):.1f},{sy(f):.1f}" for i, f, _j in seq
        )
        parts.append(f'<polyline class="line {cls}" points="{pts}"/>')
        last_i, last_f, last_j = seq[-1]
        parts.append(
            f'<circle class="dot {cls}" cx="{sx_raw(last_i * scale):.1f}" '
            f'cy="{sy(last_f):.1f}" r="4">'
            f'<title>{_esc(key)}: fraction {last_f:.3f} after '
            f'{len(seq)} invocations (join idle {last_j:.2f} us)</title>'
            f'</circle>'
        )
    height = _PAD_T + plot_h + _PAD_B
    svg = (f'<svg viewBox="0 0 {_W} {height}" role="img" '
           f'aria-label="LLP chunk adaptation">{"".join(parts)}</svg>')
    note = ""
    if folded:
        note = (f'<p class="chart-note">{len(folded)} further loop '
                f'series omitted: {_esc(", ".join(folded))}</p>')
    return _legend(list(zip(slot_classes, shown))) + svg + note


_FAULT_EVENT_LABELS = {
    "spe_kill": ("injected", "SPE failed permanently"),
    "spe_blacklist": ("recovery", "SPE blacklisted by the runtime"),
    "offload_fail": ("injected", "transient off-load failure"),
    "dma_error": ("injected", "DMA transfer error"),
    "offload_retry": ("recovery", "off-load retried after backoff"),
    "retry_fallback": ("recovery", "task fell back to the PPE"),
    "llp_recovery": ("recovery", "loop chunks reclaimed from dead worker"),
    "task_abort": ("injected", "task aborted by SPE death"),
    # fleet-tier faults and the resilience layer's responses
    "blade-kill": ("injected", "node fault: blade died"),
    "blade-slow": ("injected", "blade became a straggler"),
    "blade-recover": ("recovery", "straggler blade returned to speed"),
    "blade-flap": ("injected", "blade crashed (will rejoin)"),
    "blade-rejoin": ("recovery", "flapped blade rejoined on probation"),
    "link-degrade": ("injected", "dispatch link latency degraded"),
    "link-restore": ("recovery", "dispatch link latency restored"),
    "breaker": ("recovery", "circuit breaker changed state"),
    "hedge": ("recovery", "straggling unit speculatively re-dispatched"),
    "hedge-win": ("recovery", "hedge clone finished first"),
    "hedge-cancel": ("recovery", "losing hedge copy cancelled"),
    "deadline-abort": ("injected", "job shed: deadline unreachable"),
}

# Serve-category events that belong in the fault lane alongside the
# category="fault" records of the offline runtime.
_SERVE_FAULT_EVENTS = frozenset({
    "blade-kill", "blade-slow", "blade-recover", "blade-flap",
    "blade-rejoin", "link-degrade", "link-restore", "breaker",
    "hedge", "hedge-win", "hedge-cancel", "deadline-abort",
})


def _fault_events(tracer: Optional[Tracer]) -> List[Any]:
    """Time-ordered fault-category records (plus SPE-death task aborts
    and the serving layer's fleet-fault / resilience events)."""
    if tracer is None:
        return []
    return [
        r for r in tracer.records
        if r.category == "fault"
        or (r.category == "spe" and r.event == "task_abort")
        or (r.category == "serve" and r.event in _SERVE_FAULT_EVENTS)
    ]


def _faults_html(tracer: Optional[Tracer], registry) -> str:
    events = _fault_events(tracer)
    if not events:
        return ('<p class="empty">No faults injected or detected &#8212; '
                'the run was fault-free.</p>')
    counters = [
        ("retries", _value(registry, "runtime.offload_retries")),
        ("PPE fallbacks after retries",
         _value(registry, "runtime.retry_fallbacks")),
        ("watchdog timeouts", _value(registry, "runtime.watchdog_timeouts")),
        ("DMA errors", _value(registry, "faults.dma_errors")),
        ("SPE kills", _value(registry, "faults.spe_kills")),
        ("blacklists", _value(registry, "runtime.spe_blacklists")),
        ("live SPEs at end", _value(registry, "run.live_spes")),
        ("blade deaths", _value(registry, "serve.blade_deaths")),
        ("blade crashes (flap)", _value(registry, "serve.blade_crashes")),
        ("blade rejoins", _value(registry, "serve.blade_rejoins")),
        ("breaker opens", _value(registry, "serve.breaker_opens")),
        ("breaker closes", _value(registry, "serve.breaker_closes")),
        ("breaker probes", _value(registry, "serve.breaker_probes")),
        ("hedges", _value(registry, "serve.hedges")),
        ("hedge wins", _value(registry, "serve.hedge_wins")),
        ("deadline aborts", _value(registry, "serve.deadline_aborts")),
    ]
    note = " &#183; ".join(
        f"{_esc(lab)} {_fmt(v)}" for lab, v in counters if v > 0
    )
    rows = []
    shown = events if len(events) <= 200 else events[:200]
    for r in shown:
        kind, desc = _FAULT_EVENT_LABELS.get(r.event, ("injected", r.event))
        chip = "critical" if kind == "injected" else "warning"
        detail = "; ".join(
            f"{k}={v}" for k, v in sorted(r.data) if k != "function"
        )
        rows.append(
            f'<tr><td class="mono">{r.time * 1e3:.3f} ms</td>'
            f'<td><span class="chip {chip}">{_esc(kind)}</span></td>'
            f'<td class="mono">{_esc(r.event)}</td>'
            f'<td class="mono">{_esc(r.actor)}</td>'
            f'<td>{_esc(desc)}'
            f'<div class="evidence">{_esc(detail)}</div></td></tr>'
        )
    extra = ""
    if len(events) > len(shown):
        extra = (f'<p class="chart-note">{len(events) - len(shown)} further '
                 f'fault events omitted.</p>')
    head = f'<p class="chart-note">{note}</p>' if note else ""
    return (
        f"{head}"
        '<table><thead><tr><th>time</th><th>kind</th><th>event</th>'
        '<th>actor</th><th>detail</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>{extra}'
    )


_SERVE_TENANT_RE = re.compile(
    r'^serve\.(?P<key>latency_p50_s|latency_p95_s|latency_p99_s|'
    r'rejection_rate|deadline_miss_rate|goodput_jps)'
    r'\{tenant="(?P<tenant>[^"]+)"\}$'
)

_SERVE_OPS_EVENTS = {
    "scale-up": "autoscaler activated one more blade",
    "scale-down": "autoscaler drained and parked one blade",
    "blade-kill": "node fault: blade died",
    "failover": "orphaned jobs re-dispatched to surviving blades",
    "lost": "job lost to total fleet failure",
    "blade-slow": "node fault: blade service times stretched",
    "blade-recover": "blade slowdown ended; nominal speed restored",
    "blade-flap": "node fault: blade crashed (will rejoin)",
    "blade-rejoin": "flapped blade rejoined the fleet on probation",
    "link-degrade": "node fault: dispatch link latency added",
    "link-restore": "dispatch link latency removed",
    "breaker": "circuit breaker changed state",
    "hedge": "straggling unit speculatively re-dispatched",
    "hedge-win": "hedge copy finished first",
    "hedge-cancel": "losing hedge twin cancelled",
    "deadline-abort": "unit shed: deadline unreachable",
    "workflow-cancel": "queued job cancelled: bootstop converged",
}

# Workflow-DAG lifecycle events rendered in the ``#workflows`` lane.
_WORKFLOW_EVENTS = {
    "workflow-start": "workflow submitted; first stages released",
    "stage-ready": "stage dependencies met; fan-out submitted",
    "cache-hit": "stage served from the digest-keyed result cache",
    "bootstop-converged": "support values stable: fan-out suffix cancelled",
    "stage-done": "stage resolved; downstream stages released",
    "workflow-done": "workflow complete; consensus digest folded",
}


def _serve_latency_svg(registry) -> str:
    hist = registry.get("serve.latency_s") if registry else None
    if hist is None or getattr(hist, "count", 0) == 0:
        return '<p class="empty">No completed jobs recorded.</p>'
    snap = hist.snapshot()
    buckets = snap["buckets"]
    if not buckets:
        return '<p class="empty">No completed jobs recorded.</p>'
    plot_h = 180
    n = len(buckets)
    max_count = max(c for _b, c in buckets)
    grid, _sx, sy = _grid_and_axes(
        plot_h, 0, n, 0, max_count,
        "sojourn bucket [s, upper bound]", "jobs",
        x_ticks=False,
    )
    plot_w = _W - _PAD_L - _PAD_R
    slot = plot_w / n
    bar_w = min(24.0, slot - 2.0)  # 2px surface gap between bars
    parts = [grid]
    for i, (bound, count) in enumerate(buckets):
        x = _PAD_L + i * slot + (slot - bar_w) / 2
        y = sy(count)
        h = _PAD_T + plot_h - y
        r = min(4.0, h / 2, bar_w / 2)
        label = "+inf" if bound == "+inf" else _fmt(float(bound))
        parts.append(
            f'<path class="s2" d="M{x:.1f},{_PAD_T + plot_h:.1f} '
            f'V{y + r:.1f} Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} '
            f'H{x + bar_w - r:.1f} Q{x + bar_w:.1f},{y:.1f} '
            f'{x + bar_w:.1f},{y + r:.1f} V{_PAD_T + plot_h:.1f} Z">'
            f'<title>&#8804; {_esc(label)} s: {count} jobs</title>'
            f'</path>'
        )
        parts.append(
            f'<text class="tick" x="{x + bar_w / 2:.1f}" '
            f'y="{_PAD_T + plot_h + 14}" text-anchor="middle">'
            f'{_esc(label)}</text>'
        )
    height = _PAD_T + plot_h + _PAD_B
    return (f'<svg viewBox="0 0 {_W} {height}" role="img" '
            f'aria-label="Job sojourn time histogram">{"".join(parts)}</svg>')


def _serving_html(tracer: Optional[Tracer], registry) -> Optional[str]:
    """The serving lane, or None when the run had no serving metrics."""
    arrivals = _value(registry, "serve.arrivals")
    if arrivals <= 0:
        return None
    headline = [
        ("offered", _fmt(arrivals)),
        ("admitted", _fmt(_value(registry, "serve.admitted"))),
        ("rejected", _fmt(_value(registry, "serve.rejected"))),
        ("completed", _fmt(_value(registry, "serve.completed"))),
        ("p50", f"{_value(registry, 'serve.latency_p50_s'):.1f} s"),
        ("p95", f"{_value(registry, 'serve.latency_p95_s'):.1f} s"),
        ("p99", f"{_value(registry, 'serve.latency_p99_s'):.1f} s"),
        ("goodput", f"{_value(registry, 'serve.goodput_jps') * 3600:.1f} jobs/h"),
        ("rejection rate", f"{_value(registry, 'serve.rejection_rate'):.1%}"),
        ("deadline misses", _fmt(_value(registry, "serve.deadline_misses"))),
        ("failovers", _fmt(_value(registry, "serve.failovers"))),
        ("active blades", _fmt(_value(registry, "serve.active_blades"))),
    ]
    note = " &#183; ".join(f"{_esc(k)} {_esc(v)}" for k, v in headline)
    parts = [f'<p class="chart-note">{note}</p>',
             _serve_latency_svg(registry)]
    # Per-tenant SLO table from the labeled summary gauges.
    tenants: Dict[str, Dict[str, float]] = {}
    if registry is not None:
        for name in registry.names():
            m = _SERVE_TENANT_RE.match(name)
            if m:
                tenants.setdefault(m.group("tenant"), {})[m.group("key")] = (
                    float(registry.get(name).value)
                )
    if tenants:
        rows = []
        for tenant in sorted(tenants):
            t = tenants[tenant]
            rows.append(
                f'<tr><td class="mono">{_esc(tenant)}</td>'
                f'<td class="mono">{t.get("latency_p50_s", 0):.1f}</td>'
                f'<td class="mono">{t.get("latency_p95_s", 0):.1f}</td>'
                f'<td class="mono">{t.get("latency_p99_s", 0):.1f}</td>'
                f'<td class="mono">{t.get("goodput_jps", 0) * 3600:.1f}</td>'
                f'<td class="mono">{t.get("rejection_rate", 0):.1%}</td>'
                f'<td class="mono">{t.get("deadline_miss_rate", 0):.1%}</td>'
                f'</tr>'
            )
        parts.append(
            '<table><thead><tr><th>tenant</th><th>p50 [s]</th>'
            '<th>p95 [s]</th><th>p99 [s]</th><th>goodput [jobs/h]</th>'
            '<th>rejected</th><th>deadline misses</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>'
        )
    # Fleet lifecycle events (scaling, node deaths, failover).
    ops = [
        r for r in (tracer.records if tracer is not None else ())
        if r.category == "serve" and r.event in _SERVE_OPS_EVENTS
    ]
    if ops:
        rows = []
        for r in ops[:200]:
            detail = "; ".join(f"{k}={v}" for k, v in sorted(r.data))
            chip = ("critical"
                    if r.event in ("blade-kill", "blade-flap", "lost",
                                   "deadline-abort")
                    else "warning")
            rows.append(
                f'<tr><td class="mono">{r.time:.1f} s</td>'
                f'<td><span class="chip {chip}">{_esc(r.event)}</span></td>'
                f'<td class="mono">{_esc(r.actor)}</td>'
                f'<td>{_esc(_SERVE_OPS_EVENTS[r.event])}'
                f'<div class="evidence">{_esc(detail)}</div></td></tr>'
            )
        parts.append(
            '<table><thead><tr><th>time</th><th>event</th><th>actor</th>'
            '<th>detail</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>'
        )
    return "".join(parts)


def _workflows_html(tracer: Optional[Tracer], registry) -> Optional[str]:
    """The workflow-DAG lane, or None when the run served no workflows."""
    workflows = _value(registry, "serve.dag.workflows")
    if workflows <= 0:
        return None
    hits = _value(registry, "serve.dag.cache_hits")
    misses = _value(registry, "serve.dag.cache_misses")
    lookups = hits + misses
    headline = [
        ("workflows", _fmt(workflows)),
        ("stages", _fmt(_value(registry, "serve.dag.stages"))),
        ("cache hits", _fmt(hits)),
        ("cache misses", _fmt(misses)),
        ("hit rate", f"{hits / lookups if lookups else 0.0:.1%}"),
        ("wasted work avoided",
         f"{_value(registry, 'serve.dag.wasted_work_avoided_s'):.1f} s"),
        ("bootstop cancelled",
         _fmt(_value(registry, "serve.dag.bootstop_cancelled"))),
        ("bootstop savings",
         f"{_value(registry, 'serve.dag.bootstop_savings'):.1%}"),
        ("service-s saved",
         f"{_value(registry, 'serve.dag.bootstop_saved_s'):.1f} s"),
    ]
    note = " &#183; ".join(f"{_esc(k)} {_esc(v)}" for k, v in headline)
    parts = [f'<p class="chart-note">{note}</p>']
    # Stage lifecycle log: submissions, cache hits, bootstop, resolution.
    events = [
        r for r in (tracer.records if tracer is not None else ())
        if r.category == "serve" and (r.event in _WORKFLOW_EVENTS
                                      or r.event == "workflow-cancel")
    ]
    if events:
        rows = []
        shown = [r for r in events if r.event != "workflow-cancel"]
        cancels = len(events) - len(shown)
        for r in shown[:200]:
            detail = "; ".join(f"{k}={v}" for k, v in sorted(r.data))
            chip = ("good" if r.event in ("cache-hit", "bootstop-converged",
                                          "workflow-done")
                    else "warning")
            rows.append(
                f'<tr><td class="mono">{r.time:.1f} s</td>'
                f'<td><span class="chip {chip}">{_esc(r.event)}</span></td>'
                f'<td class="mono">{_esc(r.actor)}</td>'
                f'<td>{_esc(_WORKFLOW_EVENTS[r.event])}'
                f'<div class="evidence">{_esc(detail)}</div></td></tr>'
            )
        parts.append(
            '<table><thead><tr><th>time</th><th>event</th><th>actor</th>'
            '<th>detail</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>'
        )
        if cancels:
            parts.append(
                f'<p class="chart-note">{cancels} workflow-cancel '
                f'events (one per cancelled replicate) appear in the '
                f'serving lane&#8217;s ops log.</p>'
            )
    return "".join(parts)


def _kernel_note(registry) -> str:
    """Kernel-health chips for the ``#perf`` lane.

    Reads the deterministic ``run.kernel.*`` gauges the runner publishes
    from :meth:`Environment.kernel_stats`; empty string when the run had
    no metrics registry attached (the gauges are simply absent).
    """
    if registry is None or registry.get("run.kernel.pool_hit_rate") is None:
        return ""
    pool = _value(registry, "run.kernel.pool_hit_rate")
    batch = _value(registry, "run.kernel.batch_advance_fraction")
    occ = _value(registry, "run.kernel.near_occupancy_p95")
    pool_chip = "good" if pool >= 0.9 else "warning"
    # Batch advance is honestly 0 under a profiler (the profiled loop
    # steps one event at a time), so it renders as plain text, not a
    # health verdict.
    return (
        '<p class="chart-note">event kernel &#183; '
        f'<span class="chip {pool_chip}">pool hit {pool:.1%}</span> '
        f'batch advance {batch:.1%} &#183; '
        f'near-bucket p95 {occ:.0f}</p>'
    )


def _perf_html(profile: Optional[Dict[str, Any]], registry=None) -> str:
    """The ``#perf`` lane: wall-clock profile of the run's hot path.

    Always rendered (stable anchor); shows an empty-state note when the
    run had no profiler attached.  ``registry`` additionally feeds the
    kernel-health chips (``run.kernel.*`` gauges).
    """
    kernel = _kernel_note(registry)
    if not profile or not profile.get("sections"):
        return kernel + (
                '<p class="empty">No wall-clock profile attached &#8212; '
                'run <span class="mono">repro profile</span> or '
                '<span class="mono">repro report</span> (which attaches '
                'the profiler automatically) to populate this lane.</p>')
    sections = profile["sections"]
    counters = profile.get("counters", {})
    rates = profile.get("rates", {})
    events = counters.get("sim.events_processed",
                          counters.get("sim.heap_pops", 0))
    note = (f'wall {profile.get("wall_s", 0.0):.3f} s &#183; '
            f'{_fmt(events)} kernel events &#183; '
            f'{_fmt(rates.get("events_per_wall_second", 0.0))} events/s '
            f'&#183; heap {_fmt(counters.get("sim.heap_pushes", 0))} pushes '
            f'/ {_fmt(counters.get("sim.heap_pops", 0))} pops')
    top = sorted(
        sections.items(), key=lambda kv: kv[1]["self_s"], reverse=True
    )[:12]
    # Self-vs-child horizontal bars: exclusive time in series-1, time
    # spent in nested sections in series-3, scaled to the widest total.
    row_h, gap = 20, 6
    label_w = 220
    bar_max = _W - label_w - _PAD_R - 70
    max_total = max(row[1]["total_s"] for row in top) or 1.0
    parts = []
    for i, (name, row) in enumerate(top):
        y = i * (row_h + gap)
        self_w = bar_max * row["self_s"] / max_total
        child_w = bar_max * (row["total_s"] - row["self_s"]) / max_total
        tip = (f'{name}: {row["calls"]} calls, total '
               f'{row["total_s"] * 1e3:.2f} ms, self '
               f'{row["self_s"] * 1e3:.2f} ms, p50 {row["p50_us"]:.1f} us, '
               f'p95 {row["p95_us"]:.1f} us')
        parts.append(
            f'<text class="tick" x="{label_w - 8}" y="{y + row_h - 6}" '
            f'text-anchor="end">{_esc(name)}</text>'
            f'<rect class="s1" x="{label_w}" y="{y}" '
            f'width="{max(self_w, 1.0):.1f}" height="{row_h - 4}" rx="3">'
            f'<title>{_esc(tip)}</title></rect>'
            f'<rect class="s3" x="{label_w + max(self_w, 1.0):.1f}" '
            f'y="{y}" width="{child_w:.1f}" height="{row_h - 4}" rx="3">'
            f'<title>{_esc(tip)}</title></rect>'
            f'<text class="tick" '
            f'x="{label_w + max(self_w, 1.0) + child_w + 6:.1f}" '
            f'y="{y + row_h - 6}">{row["total_s"] * 1e3:.1f} ms</text>'
        )
    height = len(top) * (row_h + gap)
    svg = (f'<svg viewBox="0 0 {_W} {height}" role="img" '
           f'aria-label="Top wall-clock sections">{"".join(parts)}</svg>')
    rows = []
    for name, row in top:
        rows.append(
            f'<tr><td class="mono">{_esc(name)}</td>'
            f'<td class="mono">{row["calls"]}</td>'
            f'<td class="mono">{row["total_s"] * 1e3:.2f}</td>'
            f'<td class="mono">{row["self_s"] * 1e3:.2f}</td>'
            f'<td class="mono">{row["p50_us"]:.1f}</td>'
            f'<td class="mono">{row["p95_us"]:.1f}</td></tr>'
        )
    table = (
        '<table><thead><tr><th>section</th><th>calls</th>'
        '<th>total [ms]</th><th>self [ms]</th><th>p50 [us]</th>'
        '<th>p95 [us]</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )
    legend = _legend([
        ("s1", "self (exclusive) time"),
        ("s3", "time in nested sections"),
    ])
    return f'{kernel}<p class="chart-note">{note}</p>{legend}{svg}{table}'


def _findings_table(findings: Sequence[HealthFinding]) -> str:
    if not findings:
        return ('<p class="ok"><span class="chip good">&#10003; OK</span> '
                'All detectors passed &#8212; no findings.</p>')
    rows = []
    for f in findings:
        glyph = "&#10007;" if f.severity == "critical" else "&#9888;"
        evidence = "; ".join(
            f"{k}={f.evidence[k]}" for k in sorted(f.evidence)
        )
        rows.append(
            f'<tr><td><span class="chip {_esc(f.severity)}">{glyph} '
            f'{_esc(f.severity)}</span></td>'
            f'<td class="mono">{_esc(f.detector)}</td>'
            f'<td>{_esc(f.summary)}'
            f'<div class="evidence">{_esc(evidence)}</div></td></tr>'
        )
    return (
        '<table><thead><tr><th>severity</th><th>detector</th>'
        '<th>finding</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


# -- page ---------------------------------------------------------------------

_CSS = """
:root { color-scheme: light dark; }
body.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  --lane: #f0efec; --border: rgba(11,11,11,0.10);
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --lane: #242422; --border: rgba(255,255,255,0.10);
  }
}
main { max-width: 860px; margin: 0 auto; padding: 24px 20px 48px; }
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 0 0 8px; }
.meta { color: var(--text-secondary); margin: 0 0 16px; }
section { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 0 0 16px; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 108px; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 22px; font-weight: 600; }
svg { width: 100%; height: auto; display: block; }
svg text { font: 10px system-ui, -apple-system, "Segoe UI", sans-serif; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--baseline); stroke-width: 1; }
.tick { fill: var(--muted); }
.axis-label { fill: var(--text-secondary); }
.lane { fill: var(--lane); }
rect.s1, path.s1, circle.s1 { fill: var(--series-1); }
rect.s2, path.s2, circle.s2 { fill: var(--series-2); }
rect.s3, path.s3, circle.s3 { fill: var(--series-3); }
polyline.line { fill: none; stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
polyline.s1 { stroke: var(--series-1); }
polyline.s2 { stroke: var(--series-2); }
polyline.s3 { stroke: var(--series-3); }
circle.dot { stroke: var(--surface-1); stroke-width: 2; }
circle.hollow { fill: var(--surface-1); stroke: var(--series-1); }
.threshold { stroke: var(--critical); stroke-width: 1; }
.threshold-label { fill: var(--text-secondary); }
.legend { display: flex; gap: 16px; flex-wrap: wrap;
  color: var(--text-secondary); font-size: 12px; margin: 0 0 8px; }
.key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.swatch.s1 { background: var(--series-1); }
.swatch.s2 { background: var(--series-2); }
.swatch.s3 { background: var(--series-3); }
rect.p1 { fill: var(--series-1); }
rect.p2 { fill: var(--series-2); }
rect.p3 { fill: var(--series-3); }
rect.p4 { fill: var(--warning); }
rect.p5 { fill: var(--critical); }
.swatch.p1 { background: var(--series-1); }
.swatch.p2 { background: var(--series-2); }
.swatch.p3 { background: var(--series-3); }
.swatch.p4 { background: var(--warning); }
.swatch.p5 { background: var(--critical); }
svg.phase-bar { display: block; margin: 4px 0; }
svg.spark-row { display: block; margin: 2px 0; }
polyline.spark { fill: none; stroke: var(--series-1); stroke-width: 1.5;
  stroke-linejoin: round; }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--text-secondary); font-weight: 600;
  font-size: 12px; border-bottom: 1px solid var(--baseline); padding: 6px 10px; }
td { border-bottom: 1px solid var(--grid); padding: 8px 10px;
  vertical-align: top; }
.mono { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
  font-size: 13px; }
.evidence { color: var(--muted); font-size: 12px; margin-top: 2px; }
.chip { display: inline-block; border-radius: 999px; padding: 1px 10px;
  font-size: 12px; font-weight: 600; color: #fff; white-space: nowrap; }
.chip.good { background: var(--good); }
.chip.warning { background: var(--warning); color: #0b0b0b; }
.chip.critical { background: var(--critical); }
.empty, .chart-note { color: var(--muted); font-size: 13px; }
.ok { margin: 0; }
footer { color: var(--muted); font-size: 12px; }
"""


def render_report(
    tracer: Optional[Tracer],
    registry,
    findings: Optional[Sequence[HealthFinding]] = None,
    title: str = "Scheduler run report",
    subtitle: str = "",
    profile: Optional[Dict[str, Any]] = None,
) -> str:
    """One self-contained HTML page for a finished run.

    ``profile`` is an optional :meth:`repro.obs.profile.Profiler.report`
    dict; the ``#perf`` lane renders it (and shows an empty state when
    absent, keeping the section anchors stable).
    """
    findings = list(findings or [])
    makespan = _makespan(tracer, registry)
    n_spes = int(_value(registry, "run.n_spes", 0))
    lanes = _spe_lanes(tracer, registry, makespan)
    if n_spes == 0:
        n_spes = len(lanes) or 8
    u_series = _u_series(tracer)
    threshold = n_spes / 2
    tiles = [
        ("makespan", f"{_value(registry, 'run.makespan_s'):.2f} s"),
        ("SPE utilization", f"{_value(registry, 'run.spe_utilization'):.0%}"),
        ("off-loads", _fmt(_value(registry, "runtime.offloads"))),
        ("LLP invocations", _fmt(_value(registry, "llp.invocations"))),
        ("PPE fallbacks", _fmt(_value(registry, "runtime.ppe_fallbacks"))),
        ("findings", str(len(findings))),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
        for label, value in tiles
    )
    sections = [
        ("findings", "Health findings", _findings_table(findings)),
        ("gantt", "SPE utilization timeline", _gantt_svg(lanes, makespan)),
        ("u-series",
         "Window utilization U per MGPS decision",
         _u_series_svg(u_series, n_spes, threshold)),
        ("latency", "Off-load latency",
         _latency_svg(registry) + _attribution_html(tracer)),
        ("llp-adaptation",
         "LLP adaptive unbalancing",
         _llp_schedule_note(tracer)
         + _adaptation_svg(_adaptation_series(tracer))),
    ]
    serving = _serving_html(tracer, registry)
    if serving is not None:
        sections.append(("serving", "Serving layer", serving))
    workflows = _workflows_html(tracer, registry)
    if workflows is not None:
        sections.append(("workflows", "Workflow DAG", workflows))
    sections.append(
        ("perf", "Wall-clock profile", _perf_html(profile, registry))
    )
    sections.append(
        ("faults", "Faults and recovery", _faults_html(tracer, registry))
    )
    body = "".join(
        f'<section id="{sid}"><h2>{_esc(heading)}</h2>{content}</section>'
        for sid, heading, content in sections
    )
    sub = f'<p class="meta">{_esc(subtitle)}</p>' if subtitle else ""
    return (
        '<!DOCTYPE html>\n<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n<style>{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        f'<header id="summary"><h1>{_esc(title)}</h1>{sub}'
        f'<div class="tiles">{tiles_html}</div></header>\n'
        f"{body}\n"
        "<footer>Generated by <span class=\"mono\">repro report</span> "
        "&#8212; self-contained, no network access required.</footer>\n"
        "</main>\n</body>\n</html>\n"
    )


def write_report(
    path,
    tracer: Optional[Tracer],
    registry,
    findings: Optional[Sequence[HealthFinding]] = None,
    title: str = "Scheduler run report",
    subtitle: str = "",
    profile: Optional[Dict[str, Any]] = None,
) -> str:
    """Render and write the report; returns the path written."""
    doc = render_report(tracer, registry, findings, title, subtitle,
                        profile=profile)
    with open(path, "w") as fh:
        fh.write(doc)
    return str(path)
