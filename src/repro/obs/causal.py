"""Causal span trees: where each job's (or off-load's) time actually went.

The tracer records *events*; this module reassembles them into
*causality*.  Two builders cover the two lifecycles in the tree:

:func:`build_job_trees`
    One :class:`JobTree` per serving-layer job, with consecutive phase
    spans covering the whole sojourn — frontend admission wait, blade
    queue, per-unit dispatch overhead, service, and (under blade
    deaths) aborted attempts plus requeue hops.  Phases are built from
    consecutive boundary events, so by construction they tile
    ``[submit, finish]`` exactly; :meth:`JobTree.validate` proves it
    and names the leaking span when the event stream is malformed.

:func:`build_offload_trees`
    One :class:`SpanNode` tree per runtime off-load span, with the
    fault-tolerant attempt loop reconstructed as *sibling* attempt
    spans separated by backoff waits, the PPE fallback as a trailing
    child, and LLP chunk fan-out/join as a parallel group inside the
    winning attempt.

Everything here is post-hoc: builders only read
:class:`~repro.sim.trace.TraceRecord` sequences, never the live
simulation, so collection cannot perturb digests or event counts.
The record *append order* is the causal order at equal timestamps
(the tracer appends as the simulation executes), so no re-sorting —
and no tie-break heuristics — are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "PHASE_ORDER",
    "ReconciliationError",
    "SpanNode",
    "JobTree",
    "build_job_trees",
    "build_offload_trees",
    "critical_path",
]

# Canonical serve-phase names in pipeline order.  Aborted variants are
# derived with an ``-aborted`` suffix when a blade death cuts the phase
# short; ``requeue`` is the (usually zero-width) failover -> redispatch
# hop.
PHASE_ORDER = (
    "admission",
    "blade-queue",
    "dispatch-overhead",
    "service",
    "blade-queue-aborted",
    "dispatch-overhead-aborted",
    "service-aborted",
    "requeue",
)


class ReconciliationError(ValueError):
    """Per-job phase durations failed to tile the job's sojourn time."""


@dataclass
class SpanNode:
    """One node of a causal tree: a named ``[start, end]`` interval.

    ``parallel`` marks a node whose children overlap in time (LLP chunk
    fan-out); sequential nodes' children tile the parent interval.
    """

    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)
    parallel: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.parallel:
            out["parallel"] = True
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


def critical_path(node: SpanNode) -> List[SpanNode]:
    """The chain of spans that determined ``node``'s end time.

    Sequential children all lie on the path (a failed off-load attempt
    *and* its backoff wait both delayed completion); within a parallel
    group only the child that finished last — the join determinant —
    continues the path.
    """
    path = [node]
    if not node.children:
        return path
    if node.parallel:
        latest = max(node.children, key=lambda c: (c.end, c.name))
        return path + critical_path(latest)
    for child in sorted(node.children, key=lambda c: (c.start, c.end)):
        path.extend(critical_path(child))
    return path


# ---------------------------------------------------------------------------
# Serving-layer job trees
# ---------------------------------------------------------------------------

# Phase name keyed by the *previous* boundary kind: the interval from a
# ``dispatch`` boundary to the next boundary is blade-queue time, etc.
_PHASE_FROM = {
    "submit": "admission",
    "dispatch": "blade-queue",
    "unit-start": "dispatch-overhead",
    "start": "service",
    "failover": "requeue",
}
# Boundary kinds that end the walk.
_TERMINAL = ("finish", "lost")


@dataclass
class JobTree:
    """Causal phase tree of one serving-layer job."""

    job_id: int
    tenant: str
    template: str
    variant: int
    status: str                  # "completed" | "lost" | "in-flight"
    root: SpanNode

    @property
    def submit(self) -> float:
        return self.root.start

    @property
    def end(self) -> float:
        return self.root.end

    @property
    def sojourn(self) -> float:
        return self.root.duration

    @property
    def phases(self) -> List[SpanNode]:
        return self.root.children

    def phase_durations(self) -> Dict[str, float]:
        """Total seconds per phase name, in canonical-then-seen order."""
        out: Dict[str, float] = {}
        for name in PHASE_ORDER:
            for p in self.phases:
                if p.name == name:
                    out[name] = out.get(name, 0.0) + p.duration
        for p in self.phases:                       # non-canonical leftovers
            if p.name not in out:
                out[p.name] = p.duration
        return out

    def validate(self, tol: float = 1e-6) -> None:
        """Assert the phases tile ``[submit, end]`` within ``tol``.

        Raises :class:`ReconciliationError` naming the leaking span —
        the first gap or overlap between consecutive phases (or at the
        tree's edges) — so a malformed event stream is debuggable
        instead of silently mis-attributed.
        """
        total = sum(p.duration for p in self.phases)
        if abs(total - self.sojourn) <= tol:
            return
        cursor = self.submit
        prev_name = "submit"
        for p in self.phases:
            if abs(p.start - cursor) > tol:
                raise ReconciliationError(
                    f"job {self.job_id}: span leak of "
                    f"{p.start - cursor:.9f} s between "
                    f"'{prev_name}' and '{p.name}' "
                    f"(phases sum to {total:.9f} s, sojourn is "
                    f"{self.sojourn:.9f} s)"
                )
            cursor = p.end
            prev_name = p.name
        raise ReconciliationError(
            f"job {self.job_id}: span leak of {self.end - cursor:.9f} s "
            f"after final phase '{prev_name}' (phases sum to "
            f"{total:.9f} s, sojourn is {self.sojourn:.9f} s)"
        )

    def critical_path(self) -> List[SpanNode]:
        return critical_path(self.root)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "template": self.template,
            "variant": self.variant,
            "status": self.status,
            "sojourn_s": self.sojourn,
            "tree": self.root.to_dict(),
        }


def _records(source) -> Iterable:
    """Accept a Tracer, a record list, or anything iterable of records."""
    return getattr(source, "records", source)


def build_job_trees(source) -> Dict[int, JobTree]:
    """Assemble one :class:`JobTree` per job seen in a serve trace.

    ``source`` is a :class:`~repro.sim.trace.Tracer` (or its record
    list).  Jobs whose lifecycle is cut short by the end of the trace
    come back with ``status='in-flight'``; jobs shed by total fleet
    loss come back as ``status='lost'``.  Trees are keyed by job id.
    """
    # Per-job boundary timeline, in trace (== causal) order.
    timelines: Dict[int, List[Tuple[float, str, Dict[str, Any]]]] = {}
    meta: Dict[int, Dict[str, Any]] = {}

    def note(job_id: int, time: float, kind: str, **attrs) -> None:
        timelines.setdefault(job_id, []).append((time, kind, attrs))

    for rec in _records(source):
        if rec.category != "serve":
            continue
        ev = rec.event
        if ev == "admit":
            jid = rec.get("job")
            meta[jid] = {
                "tenant": rec.get("tenant", ""),
                "template": rec.get("template", ""),
                "variant": rec.get("variant", 0),
            }
            note(jid, rec.time, "submit")
        elif ev == "dispatch":
            for jid in rec.get("jobs", ()):
                note(jid, rec.time, "dispatch",
                     blade=rec.get("blade"), unit=rec.get("unit"))
        elif ev == "unit-start":
            for jid in rec.get("jobs", ()):
                note(jid, rec.time, "unit-start",
                     blade=rec.actor, unit=rec.get("unit"))
        elif ev == "start":
            note(rec.get("job"), rec.time, "start", blade=rec.actor)
        elif ev == "finish":
            note(rec.get("job"), rec.time, "finish", blade=rec.actor)
        elif ev == "failover":
            for jid in rec.get("jobs", ()):
                note(jid, rec.time, "failover", blade=rec.actor)
        elif ev == "lost":
            note(rec.get("job"), rec.time, "lost")

    trees: Dict[int, JobTree] = {}
    for jid, events in timelines.items():
        if not events or events[0][1] != "submit":
            continue                     # trace attached mid-lifecycle
        submit = events[0][0]
        info = meta.get(jid, {})
        phases: List[SpanNode] = []
        prev_kind, prev_t = "submit", submit
        prev_attrs: Dict[str, Any] = {}
        status = "in-flight"
        end = submit
        for time, kind, attrs in events[1:]:
            name = _PHASE_FROM.get(prev_kind)
            if name is None:
                break                    # malformed: boundary after terminal
            if kind == "failover" and name != "requeue":
                name += "-aborted"
            phases.append(SpanNode(name, prev_t, time, dict(prev_attrs)))
            prev_kind, prev_t, prev_attrs = kind, time, attrs
            end = time
            if kind in _TERMINAL:
                status = "completed" if kind == "finish" else "lost"
                break
        if status == "in-flight" and prev_kind not in _TERMINAL:
            end = prev_t                 # open tail is not attributed
        root = SpanNode("job", submit, end, {"job": jid}, phases)
        trees[jid] = JobTree(
            job_id=jid,
            tenant=info.get("tenant", ""),
            template=info.get("template", ""),
            variant=info.get("variant", 0),
            status=status,
            root=root,
        )
    return trees


# ---------------------------------------------------------------------------
# Runtime off-load trees
# ---------------------------------------------------------------------------

def build_offload_trees(source) -> List[SpanNode]:
    """Reassemble runtime off-load spans into causal trees.

    Each returned root covers one off-load of one process: the
    ``offload`` span (from the span recorder), with — when the
    fault-tolerant path ran — sibling ``attempt[i]`` children, the
    ``backoff`` waits between them, and a trailing ``ppe-fallback``
    child when the retry budget was exhausted.  LLP chunk fan-out
    (``llp_fanout`` events emitted by the loop model) attaches inside
    the covering attempt as a parallel group, so the critical path
    descends into the chunk that determined the join.
    """
    roots: List[SpanNode] = []
    # Per-actor currently-open offload span (depth-0 only: the runtime
    # never nests offload spans for one process).
    open_spans: Dict[str, Dict[str, Any]] = {}
    # Trees whose span closed but which may still gain a ppe-fallback
    # child (the fallback runs after the span closes).
    awaiting_fallback: Dict[str, SpanNode] = {}
    fanouts: List[Tuple[float, Dict[str, Any], str]] = []

    for rec in _records(source):
        cat, actor, ev = rec.category, rec.actor, rec.event
        if cat == "proc" and ev == "span_begin" and rec.get("name") == "offload":
            open_spans[actor] = {
                "start": rec.time, "attempts": [], "retries": [],
                "fallback_at": None,
            }
            awaiting_fallback.pop(actor, None)
        elif cat == "proc" and ev == "span_end" and rec.get("name") == "offload":
            state = open_spans.pop(actor, None)
            if state is None:
                continue
            root = _close_offload(actor, state, rec)
            roots.append(root)
            if state["fallback_at"] is not None:
                awaiting_fallback[actor] = root
        elif cat == "fault" and actor in open_spans:
            state = open_spans[actor]
            if ev == "offload_attempt":
                state["attempts"].append(
                    (rec.time, rec.get("attempt"), rec.get("function"))
                )
            elif ev == "offload_retry":
                state["retries"].append(
                    (rec.time, rec.get("attempt"), rec.get("status"),
                     rec.get("spe"))
                )
            elif ev == "retry_fallback":
                state["fallback_at"] = rec.time
        elif cat == "ppe" and ev == "ppe_fallback":
            root = awaiting_fallback.pop(actor, None)
            if root is not None:
                dur = rec.get("duration", 0.0)
                root.children.append(SpanNode(
                    "ppe-fallback", rec.time, rec.time + dur,
                    {"function": rec.get("function")},
                ))
                root.end = max(root.end, rec.time + dur)
        elif cat == "llp" and ev == "llp_fanout":
            fanouts.append((rec.time, {k: rec.get(k) for k in (
                "function", "k", "schedule", "base", "master_end",
                "worker_starts", "worker_ends", "join_idle", "reduction",
                "duration",
            )}, rec.get("master", "")))

    _attach_fanouts(roots, fanouts)
    return roots


def _close_offload(actor: str, state: Dict[str, Any], end_rec) -> SpanNode:
    start, end = state["start"], end_rec.time
    attrs = {
        "proc": actor,
        "function": end_rec.get("function"),
        "reason": end_rec.get("reason"),
    }
    spe = end_rec.get("spe")
    if spe is not None:
        attrs["spe"] = spe
    span = SpanNode("offload", start, end, attrs)
    attempts = state["attempts"]
    if not attempts:                      # fault-free fast path: leaf span
        root = SpanNode("task", start, end, dict(attrs), [span])
        return root
    retries = {idx: (t, status, spe_) for t, idx, status, spe_
               in state["retries"]}
    fallback_at = state["fallback_at"]
    for i, (a_time, a_idx, _fn) in enumerate(attempts):
        next_start = (attempts[i + 1][0] if i + 1 < len(attempts)
                      else fallback_at if fallback_at is not None
                      else end)
        retry = retries.get(a_idx)
        if retry is not None:
            r_time, status, r_spe = retry
            span.children.append(SpanNode(
                f"attempt[{a_idx}]", a_time, r_time,
                {"status": status, "spe": r_spe},
            ))
            if next_start > r_time:
                span.children.append(
                    SpanNode("backoff", r_time, next_start,
                             {"after_attempt": a_idx})
                )
        else:
            span.children.append(SpanNode(
                f"attempt[{a_idx}]", a_time, next_start, {"status": "ok"},
            ))
    root = SpanNode("task", start, end, dict(attrs), [span])
    return root


def _attach_fanouts(roots: List[SpanNode],
                    fanouts: List[Tuple[float, Dict[str, Any], str]]) -> None:
    """Graft LLP fan-out groups into the attempt that invoked them."""
    for time, info, actor in fanouts:
        target = _covering_attempt(roots, time, actor)
        if target is None:
            continue
        base = time + (info.get("base") or 0.0)
        starts = info.get("worker_starts") or ()
        ends = info.get("worker_ends") or ()
        master_end = info.get("master_end") or 0.0
        chunks = SpanNode(
            "chunks", base, base + max([master_end, *ends], default=0.0),
            {"k": info.get("k"), "schedule": info.get("schedule")},
            parallel=True,
        )
        chunks.children.append(
            SpanNode("chunk[master]", base, base + master_end)
        )
        for j, w_end in enumerate(ends):
            w_start = starts[j] if j < len(starts) else 0.0
            chunks.children.append(
                SpanNode(f"chunk[w{j + 1}]", base + w_start, base + w_end)
            )
        llp = SpanNode(
            "llp", time, time + (info.get("duration") or 0.0),
            {"function": info.get("function"), "k": info.get("k"),
             "join_idle": info.get("join_idle")},
            [chunks],
        )
        join = chunks.end
        reduction = info.get("reduction") or 0.0
        if reduction > 0.0:
            llp.children.append(SpanNode("reduction", join, join + reduction))
        target.children.append(llp)


def _covering_attempt(roots: List[SpanNode], time: float,
                      actor: str) -> Optional[SpanNode]:
    """The attempt (or fast-path offload) span covering ``time``.

    When the emitting SPE is known, it must match the span's recorded
    SPE so concurrent same-function off-loads on different processes
    cannot steal each other's fan-outs.
    """
    for root in roots:
        if not (root.start <= time <= root.end):
            continue
        spe = root.attrs.get("spe")
        if actor and spe is not None and actor != spe:
            continue
        for node in root.walk():
            if node.name.startswith("attempt[") and \
                    node.start <= time <= node.end:
                return node
        for node in root.children:
            if node.name == "offload" and not node.children and \
                    node.start <= time <= node.end:
                return node
    return None
