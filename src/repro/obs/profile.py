"""Wall-clock profiling for the simulation hot path.

Everything else in the obs stack measures *simulated* time; this module
measures *wall-clock* cost — how long the kernel, runtime and serve loops
take on the host — so kernel/scheduler changes can be judged by tracked
events-per-second numbers instead of one-off ``cProfile`` runs.

:class:`Profiler` aggregates scoped timers into named sections:

* ``with profiler.section("runtime.offload"): ...`` — stack-based scope;
  exclusive (self) time excludes nested sections, inclusive (total) time
  includes them.
* ``profiler.call("llp.invoke", fn, *args)`` — time one synchronous call.
* ``profiler.account(name, seconds)`` — fold an externally timed interval
  in as a leaf (used by hot sites that cannot afford a context manager).
* ``profiler.count(name)`` / ``heap_pushes`` / ``heap_pops`` — plain
  integer tallies for sites too hot to time individually.

Wall-clock sections must never span a simulation ``yield``: a scope held
across a yield would attribute *other* processes' wall time to it.  Hot
generator paths therefore get counters, synchronous calls get timers.

The :meth:`Profiler.report` shape is deterministic for a deterministic
simulation — section names, call counts and counters are identical across
repeated runs; only the ``*_s``/``*_us`` wall-clock values vary.  All
instrumented call sites gate on ``profiler is None`` so the fast path is
untouched when profiling is off (verified by ``bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import DEFAULT_BUCKETS, Histogram

__all__ = [
    "Profiler",
    "SectionStat",
    "events_per_second",
    "render_profile",
    "profile_chrome_events",
    "write_profile_trace",
]


class SectionStat:
    """Aggregated wall-clock statistics for one named section."""

    __slots__ = ("name", "calls", "total", "self_time", "hist")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total = 0.0
        self.self_time = 0.0
        # Per-call durations in microseconds; 1-2-5 decade buckets give
        # usable p50/p95 from sub-microsecond emits to multi-second runs.
        self.hist = Histogram(name, buckets=DEFAULT_BUCKETS)


class _Section:
    """Context manager handle returned by :meth:`Profiler.section`."""

    __slots__ = ("_prof", "_stat")

    def __init__(self, prof: "Profiler", stat: SectionStat) -> None:
        self._prof = prof
        self._stat = stat

    def __enter__(self) -> "_Section":
        prof = self._prof
        # Frame: [stat, start, child_time_accumulator]
        prof._stack.append([self._stat, prof.clock(), 0.0])
        return self

    def __exit__(self, *_exc: Any) -> bool:
        prof = self._prof
        stat, start, child = prof._stack.pop()
        elapsed = prof.clock() - start
        stat.calls += 1
        stat.total += elapsed
        stat.self_time += elapsed - child
        stat.hist.observe(elapsed * 1e6)
        if prof._stack:
            prof._stack[-1][2] += elapsed
        spans = prof._spans
        if spans is not None and len(spans) < prof.max_spans:
            spans.append((stat.name, start - prof._t0, elapsed))
        return False


class Profiler:
    """Low-overhead wall-clock profiler with scoped timers.

    Parameters
    ----------
    time_source:
        Clock returning seconds as a float; ``time.perf_counter`` by
        default, injectable for deterministic tests.
    keep_spans:
        If True, record up to ``max_spans`` ``(name, start, duration)``
        wall-time spans for Perfetto export (off by default — span
        recording costs one append per section exit).
    """

    def __init__(
        self,
        time_source: Callable[[], float] = time.perf_counter,
        *,
        keep_spans: bool = False,
        max_spans: int = 20000,
    ) -> None:
        self.clock = time_source
        self._sections: Dict[str, SectionStat] = {}
        self._counters: Dict[str, int] = {}
        self._stack: List[list] = []
        # Per-event-class section names for the kernel's profiled step
        # path; lives here (the only consumer) so the Environment stays
        # slim and ``__slots__``-able.
        self._event_sections: Dict[type, str] = {}
        # Kernel heap traffic is tallied via plain attributes: the event
        # loop is too hot for even a dict lookup per push/pop.
        self.heap_pushes = 0
        self.heap_pops = 0
        self.max_spans = int(max_spans)
        self._spans: Optional[List[Tuple[str, float, float]]] = (
            [] if keep_spans else None
        )
        self._t0 = time_source()

    # -- recording ----------------------------------------------------------
    def event_section(self, cls: type) -> str:
        """Cached ``sim.event.<ClassName>`` section name for an event class."""
        name = self._event_sections.get(cls)
        if name is None:
            name = self._event_sections[cls] = f"sim.event.{cls.__name__}"
        return name

    def section(self, name: str) -> _Section:
        """Scoped timer; use as ``with profiler.section("x"): ...``."""
        stat = self._sections.get(name)
        if stat is None:
            stat = self._sections[name] = SectionStat(name)
        return _Section(self, stat)

    def call(self, name: str, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Time one synchronous call as a section; returns its result."""
        with self.section(name):
            return fn(*args, **kwargs)

    def account(self, name: str, seconds: float) -> None:
        """Fold one externally timed interval in as a leaf section.

        Behaves like an instantaneous child scope: the interval counts
        against the enclosing section's child time so exclusive times
        stay consistent, but no stack frame is pushed.
        """
        stat = self._sections.get(name)
        if stat is None:
            stat = self._sections[name] = SectionStat(name)
        stat.calls += 1
        stat.total += seconds
        stat.self_time += seconds
        stat.hist.observe(seconds * 1e6)
        if self._stack:
            self._stack[-1][2] += seconds

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a plain integer tally (deterministic across runs)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_count(self, name: str, value: int) -> None:
        """Set a tally to an absolute value (e.g. final event count)."""
        self._counters[name] = int(value)

    def spans(self) -> Tuple[Tuple[str, float, float], ...]:
        """Recorded ``(name, start_offset_s, duration_s)`` wall spans."""
        return tuple(self._spans or ())

    # -- reporting ----------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Deterministic-shape profile report.

        Section names, ``calls`` and every ``counters`` value are
        identical across repeated runs of a deterministic simulation;
        only the wall-clock fields (``wall_s``, ``*_s``, ``*_us`` and
        ``rates``) vary run to run.
        """
        wall = self.clock() - self._t0
        sections: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._sections):
            s = self._sections[name]
            mean = (s.total / s.calls) if s.calls else 0.0
            sections[name] = {
                "calls": s.calls,
                "total_s": s.total,
                "self_s": s.self_time,
                "mean_us": mean * 1e6,
                "p50_us": s.hist.percentile(50),
                "p95_us": s.hist.percentile(95),
            }
        counters = dict(sorted(self._counters.items()))
        counters["sim.heap_pushes"] = self.heap_pushes
        counters["sim.heap_pops"] = self.heap_pops
        events = counters.get("sim.events_processed", self.heap_pops)
        return {
            "wall_s": wall,
            "sections": sections,
            "counters": counters,
            "rates": {
                "events_per_wall_second": events_per_second(
                    events, sections, wall
                ),
            },
        }


def events_per_second(
    events: int, sections: Dict[str, Dict[str, Any]], wall_s: float
) -> float:
    """Kernel events per wall second.

    Uses the ``run.simulate`` section's inclusive time when present (the
    window that actually drove the event loop), falling back to the
    profiler's total lifetime.
    """
    sim = sections.get("run.simulate")
    denom = sim["total_s"] if sim and sim["total_s"] > 0 else wall_s
    if denom <= 0:
        return 0.0
    return events / denom


# -- rendering ---------------------------------------------------------------

_SORT_KEYS = {
    "self": lambda row: row[1]["self_s"],
    "total": lambda row: row[1]["total_s"],
    "calls": lambda row: row[1]["calls"],
}


def render_profile(
    report: Dict[str, Any],
    *,
    sort: str = "self",
    top: int = 20,
    title: str = "",
) -> str:
    """Fixed-width text rendering of a :meth:`Profiler.report` dict."""
    key = _SORT_KEYS.get(sort, _SORT_KEYS["self"])
    rows = sorted(report["sections"].items(), key=key, reverse=True)[:top]
    lines: List[str] = []
    if title:
        lines.append(title)
    rate = report["rates"]["events_per_wall_second"]
    events = report["counters"].get(
        "sim.events_processed", report["counters"].get("sim.heap_pops", 0)
    )
    lines.append(
        f"wall {report['wall_s']:.3f}s · {events} events "
        f"· {rate:,.0f} events/s"
    )
    lines.append("")
    lines.append(
        f"{'section':<32} {'calls':>9} {'total ms':>10} {'self ms':>10} "
        f"{'p50 us':>9} {'p95 us':>9}"
    )
    lines.append("-" * 82)
    for name, row in rows:
        lines.append(
            f"{name:<32} {row['calls']:>9} {row['total_s'] * 1e3:>10.2f} "
            f"{row['self_s'] * 1e3:>10.2f} {row['p50_us']:>9.1f} "
            f"{row['p95_us']:>9.1f}"
        )
    lines.append("")
    lines.append("counters:")
    for name, value in report["counters"].items():
        lines.append(f"  {name:<40} {value:>12}")
    return "\n".join(lines)


# -- Perfetto export ---------------------------------------------------------

def profile_chrome_events(profiler: Profiler, *, pid: int = 1000) -> List[dict]:
    """Chrome complete ("X") events for recorded wall-time spans.

    Spans land in their own named process so Perfetto shows wall-clock
    cost side by side with the simulated-time trace (which uses pids
    counted up from 0 by :func:`~repro.obs.export.chrome_trace_events`).
    """
    events: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "wall-clock profile"},
    }]
    for name, start, duration in profiler.spans():
        events.append({
            "name": name,
            "cat": "wall",
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "pid": pid,
            "tid": 0,
        })
    return events


def write_profile_trace(tracer: Any, profiler: Profiler, path: Any) -> str:
    """Write a Chrome trace combining sim-time records and wall spans.

    The simulated-time trace occupies pid 0 (microseconds of simulated
    time) and the wall-clock spans pid 1000 (microseconds of wall time);
    Perfetto renders both tracks in one view.  Returns the path.
    """
    from .export import chrome_trace_events

    events = chrome_trace_events(tracer) if tracer is not None else []
    events.extend(profile_chrome_events(profiler))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.profile"},
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return str(path)
