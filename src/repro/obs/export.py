"""Exporters: Chrome/Perfetto trace-event JSON, JSONL sink, metrics text.

:func:`chrome_trace` turns recorded :class:`~repro.sim.trace.TraceRecord`
streams into the Chrome trace-event format that https://ui.perfetto.dev
and ``chrome://tracing`` open directly:

* ``task_start``/``task_end`` and ``span_begin``/``span_end`` records
  become paired "B"/"E" duration events (nesting preserved);
* every other record becomes a thread-scoped instant event ("i");
* each (category, actor) pair maps to one named thread, each run to one
  named process — pass ``{"mgps": tracer_a, "edtlp": tracer_b}`` to
  compare schedulers side by side in one view.

Output is deterministic: actors are numbered in sorted order, floats are
rounded to fixed precision and keys are sorted, so exported traces from
identical simulations diff cleanly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Union

from ..sim.trace import Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_metrics_snapshot",
]

TracerLike = Union[Tracer, Mapping[str, Tracer]]

# Events exported as Chrome duration pairs; everything else is instant.
_PHASE = {
    "task_start": "B",
    "task_end": "E",
    "span_begin": "B",
    "span_end": "E",
}


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def _as_map(traces: TracerLike) -> Dict[str, Tracer]:
    if isinstance(traces, Tracer):
        return {"repro": traces}
    return dict(traces)


def chrome_trace_events(traces: TracerLike) -> List[dict]:
    """Flat list of Chrome trace events (metadata first, then records).

    Robust to imperfect inputs: an empty tracer yields only its process
    metadata, payload keys are stringified (JSON objects require string
    keys, and ``sort_keys`` cannot order mixed types), and duration
    events left open by an aborted run are closed with synthetic "E"
    events at the trace's last timestamp so viewers still render them.
    """
    events: List[dict] = []
    for pid, (run_name, tracer) in enumerate(_as_map(traces).items()):
        actors = sorted({(r.category, r.actor) for r in tracer.records})
        tid_of = {key: tid for tid, key in enumerate(actors)}
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": run_name},
        })
        for (category, actor), tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": f"{category}:{actor}"},
            })
        open_stacks: Dict[int, List[str]] = {}
        last_ts = 0.0
        for record in tracer.records:
            args = {str(k): _jsonable(v) for k, v in record.data}
            name = args.pop("name", None) or args.get("function") or record.event
            tid = tid_of[(record.category, record.actor)]
            phase = _PHASE.get(record.event, "i")
            ts = round(record.time * 1e6, 3)  # microseconds
            last_ts = max(last_ts, ts)
            event: Dict[str, Any] = {
                "name": name,
                "cat": record.category,
                "ph": phase,
                "ts": ts,
                "pid": pid,
                "tid": tid,
            }
            if phase == "B":
                open_stacks.setdefault(tid, []).append(name)
            elif phase == "E":
                stack = open_stacks.get(tid)
                if stack:
                    stack.pop()
            if event["ph"] == "i":
                event["s"] = "t"  # thread-scoped instant
            if args:
                event["args"] = args
            events.append(event)
        for tid in sorted(open_stacks):
            for name in reversed(open_stacks[tid]):
                events.append({
                    "name": name, "cat": "incomplete", "ph": "E",
                    "ts": last_ts, "pid": pid, "tid": tid,
                    "args": {"unterminated": True},
                })
    return events


def chrome_trace(traces: TracerLike) -> Dict[str, Any]:
    """Full Chrome trace-event document (the JSON object form)."""
    return {
        "traceEvents": chrome_trace_events(traces),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs"},
    }


def write_chrome_trace(traces: TracerLike, path) -> str:
    """Write a Perfetto-loadable trace JSON file; returns the path."""
    doc = chrome_trace(traces)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return str(path)


def write_trace_jsonl(tracer: Tracer, path) -> str:
    """Persist raw trace records as JSON Lines; returns the path."""
    with open(path, "w") as fh:
        fh.write(tracer.to_jsonl())
    return str(path)


def write_metrics_snapshot(registry, path) -> str:
    """Write a registry's deterministic JSON snapshot; returns the path."""
    with open(path, "w") as fh:
        fh.write(registry.to_json())
        fh.write("\n")
    return str(path)
