"""SPE contexts: the libspe2-flavoured programming interface.

Mirrors the workflow of IBM's libspe that Cell applications (and the
paper's runtime) were written against:

1. ``spe_context_create`` — claim an SPE and get a context;
2. ``ctx.load_program(program)`` — DMA the code image into local store;
3. ``ctx.run()`` — start the SPU program (a simulated process);
4. mailboxes — ``write_in_mbox`` / ``read_out_mbox`` for PPE<->SPE
   signalling;
5. ``ctx.destroy()`` — release the SPE back to the pool.

Everything executes inside the discrete-event simulation; see
``examples/cellsdk_by_hand.py`` for a complete hand-rolled off-load
loop written at this level.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..cell.machine import CellMachine
from ..cell.spe import SPE
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.process import Process
from ..sim.resources import Store
from .program import SpeProgram, SpuRuntime

__all__ = ["SpeContext", "spe_context_create"]


class SpeContext:
    """One claimed SPE plus its loaded program and mailboxes."""

    def __init__(self, env: Environment, machine: CellMachine, spe: SPE) -> None:
        self.env = env
        self.machine = machine
        self.spe = spe
        self.program: Optional[SpeProgram] = None
        self._in_mbox = Store(env)
        self._out_mbox = Store(env)
        self._running: Optional[Process] = None
        self._destroyed = False

    # -- lifecycle ----------------------------------------------------------
    def load_program(self, program: SpeProgram) -> Generator[Event, None, None]:
        """DMA the program image into the local store (a generator —
        drive it with ``yield from``)."""
        self._check_alive()
        t_load = self.spe.load_code(program.image)
        if t_load > 0:
            yield self.env.timeout(t_load)
        self.program = program

    def run(self) -> Process:
        """Start the loaded program; returns its process (an event).

        The SPE is busy for the program's entire run; the program's
        return value becomes the event value.
        """
        self._check_alive()
        if self.program is None:
            raise RuntimeError("no program loaded")
        if self._running is not None and self._running.is_alive:
            raise RuntimeError("program is already running on this context")
        spu = SpuRuntime(
            self.env,
            self.spe,
            self._in_mbox,
            self._out_mbox,
            self.machine.cell_params.ppe_spe_signal,
        )
        program = self.program

        def main():
            self.spe.mark_busy(f"cellsdk:{program.name}")
            try:
                result = yield from program.body(spu)
            finally:
                self.spe.mark_idle()
            self.spe.tasks_executed += 1
            return result

        self._running = self.env.process(main(), name=f"spu:{program.name}")
        return self._running

    def destroy(self) -> None:
        """Release the SPE back to the machine pool."""
        self._check_alive()
        if self._running is not None and self._running.is_alive:
            raise RuntimeError("cannot destroy a context while running")
        self._destroyed = True
        self.machine.pool.release(self.spe)

    # -- mailboxes -----------------------------------------------------------
    def write_in_mbox(self, value: Any) -> Generator[Event, None, None]:
        """PPE-side write to the SPE's inbound mailbox (signal latency)."""
        self._check_alive()
        yield self.env.timeout(
            self.machine.signal_latency(self.spe.cell_id, self.spe)
        )
        self._in_mbox.put(value)

    def read_out_mbox(self) -> Event:
        """PPE-side blocking read of the SPE's outbound mailbox."""
        self._check_alive()
        return self._out_mbox.get()

    # -- internal ---------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._destroyed:
            raise RuntimeError("context has been destroyed")


def spe_context_create(
    env: Environment, machine: CellMachine
) -> Generator[Event, None, SpeContext]:
    """Claim an SPE (blocking if none free) and build a context.

    A generator: ``ctx = yield from spe_context_create(env, machine)``.
    """
    spe = machine.pool.try_acquire()
    if spe is None:
        spe = yield machine.pool.acquire()
    return SpeContext(env, machine, spe)
