"""SPU-side programs for the libspe-style façade.

A :class:`SpeProgram` bundles a code image with a *body*: a generator
written against the SPU-side primitives (:class:`SpuRuntime`) — local
compute, mailbox reads/writes, DMA gets/puts.  This is the level a
hand-written Cell application works at; the paper's runtime
(:mod:`repro.core`) exists so application programmers don't have to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..cell.local_store import CodeImage
from ..cell.spe import SPE
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.resources import Store

__all__ = ["SpeProgram", "SpuRuntime"]

KB = 1024


class SpuRuntime:
    """What an SPU program can do: compute, mailboxes, DMA.

    Passed to the program body; every operation returns an event to
    ``yield`` (or a generator to ``yield from``).
    """

    def __init__(
        self,
        env: Environment,
        spe: SPE,
        in_mbox: Store,
        out_mbox: Store,
        signal_latency: float,
    ) -> None:
        self.env = env
        self.spe = spe
        self._in = in_mbox
        self._out = out_mbox
        self._signal_latency = signal_latency
        self.dma_bytes = 0

    def compute(self, seconds: float) -> Event:
        """Burn SPU cycles."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        return self.env.timeout(seconds)

    def read_mbox(self) -> Event:
        """Blocking read of the PPE->SPE mailbox."""
        return self._in.get()

    def write_mbox(self, value: Any) -> Generator[Event, None, None]:
        """Write to the SPE->PPE mailbox (one signal latency)."""
        yield self.env.timeout(self._signal_latency)
        self._out.put(value)

    def dma_get(self, nbytes: int) -> Event:
        """DMA main memory -> local store; returns the transfer event."""
        self.dma_bytes += nbytes
        return self.env.timeout(self.spe.mfc.transfer_time(nbytes))

    def dma_put(self, nbytes: int) -> Event:
        """DMA local store -> main memory."""
        self.dma_bytes += nbytes
        return self.env.timeout(self.spe.mfc.transfer_time(nbytes))


@dataclass(frozen=True)
class SpeProgram:
    """An SPU executable: code image plus its behaviour.

    ``body(spu)`` is a generator using :class:`SpuRuntime`; its return
    value becomes the value of the context's ``run`` event.
    """

    name: str
    body: Callable[[SpuRuntime], Generator[Event, Any, Any]]
    image_kb: int = 64
    variant: str = "serial"

    def __post_init__(self) -> None:
        if self.image_kb <= 0:
            raise ValueError("image_kb must be positive")

    @property
    def image(self) -> CodeImage:
        return CodeImage(self.name, self.variant, self.image_kb * KB)
