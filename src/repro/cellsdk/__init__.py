"""A libspe2-flavoured programming façade over the simulated Cell.

The level a hand-written Cell application works at: SPE contexts,
program images, mailboxes, and SPU-side DMA — see
``examples/cellsdk_by_hand.py``.  The paper's runtime (:mod:`repro.core`)
automates everything this API makes manual.
"""

from .context import SpeContext, spe_context_create
from .program import SpeProgram, SpuRuntime

__all__ = ["SpeContext", "spe_context_create", "SpeProgram", "SpuRuntime"]
