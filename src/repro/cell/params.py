"""Machine parameters of the simulated Cell Broadband Engine.

All constants carry the values documented for the 3.2 GHz Cell blade used
in the paper (Section 4 and Section 5.2), or calibrated values derived
from timings the paper reports (e.g. the 1.5 us PPE context switch, the
O(10 ms) Linux time quantum).  Everything is a frozen dataclass so a
parameter set can be hashed, compared and swept in ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CellParams", "BladeParams", "DEFAULT_CELL", "DEFAULT_BLADE"]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024
US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class CellParams:
    """Parameters of a single Cell BE processor.

    Attributes
    ----------
    clock_hz:
        Core clock of PPE and SPEs (3.2 GHz on the paper's blade).
    n_spes:
        Number of Synergistic Processing Elements.
    ppe_smt_contexts:
        Hardware threads on the PPE (dual-thread SMT).
    smt_efficiency:
        Per-context speed factor when both SMT contexts are busy.  With one
        busy context speed is 1.0; with two, each runs at this fraction
        (so combined throughput is ``2 * smt_efficiency``).  Calibrated so
        the EDTLP curve of Table 1 is reproduced.
    os_quantum:
        OS scheduler time quantum, seconds.  The paper notes the Linux
        quantum is "a multiple of 10 ms"; we use 10 ms.
    context_switch:
        PPE context-switch cost, seconds (1.5 us, Section 5.2).
    ppe_spe_signal:
        One-way PPE->SPE (or SPE->PPE) signal/mailbox latency, seconds.
        This is the paper's ``t_comm``.
    spe_spe_signal:
        SPE->SPE latency for an ``mfc_put`` of a ``Pass`` structure.
    dispatch_overhead:
        PPE time spent by the user-level scheduler per off-load (finding an
        idle SPE, writing the task descriptor), seconds.
    completion_overhead:
        PPE time spent handling an off-load completion (receiving the SPE
        signal, unblocking the MPI process), seconds.
    dma_startup:
        Fixed initiation latency per DMA request, seconds.
    dma_max_request:
        Maximum bytes a single DMA request may move (16 KB).
    dma_alignment:
        Required alignment of DMA transfers in bytes (128-bit = 16 B).
    dma_list_max:
        Maximum number of requests in a DMA list (2048).
    spe_dma_bandwidth:
        Peak bandwidth of one SPE's MFC, bytes/second.
    eib_bandwidth:
        Aggregate EIB bandwidth, bytes/second (204.8 GB/s at 3.2 GHz).
    eib_rings:
        Number of EIB data rings (4).
    memory_bandwidth:
        XDR main-memory bandwidth, bytes/second (25.6 GB/s).
    memory_contention_quadratic / memory_contention_cap:
        Fractional slowdown of an SPE task from concurrently busy SPEs of
        *other* tasks on the same Cell: ``min(cap, c * others^2)``.
        Superlinear because the XDR memory controller queues; calibrated
        against the EDTLP column of Table 1.
    local_store_size:
        SPE local store capacity in bytes (256 KB).
    """

    clock_hz: float = 3.2e9
    n_spes: int = 8
    ppe_smt_contexts: int = 2
    smt_efficiency: float = 0.45
    spin_contention: float = 0.2
    os_quantum: float = 10 * MS
    context_switch: float = 1.5 * US
    ppe_spe_signal: float = 0.35 * US
    spe_spe_signal: float = 0.25 * US
    dispatch_overhead: float = 1.0 * US
    completion_overhead: float = 1.0 * US
    dma_startup: float = 0.25 * US
    dma_max_request: int = 16 * KB
    dma_alignment: int = 16
    dma_list_max: int = 2048
    spe_dma_bandwidth: float = 25.6 * GB
    eib_bandwidth: float = 204.8 * GB
    eib_rings: int = 4
    memory_bandwidth: float = 25.6 * GB
    memory_contention_quadratic: float = 0.008
    memory_contention_cap: float = 0.50
    local_store_size: int = 256 * KB

    def __post_init__(self) -> None:
        if self.n_spes < 1:
            raise ValueError("a Cell needs at least one SPE")
        if not (0.0 < self.smt_efficiency <= 1.0):
            raise ValueError("smt_efficiency must be in (0, 1]")
        if self.ppe_smt_contexts < 1:
            raise ValueError("PPE needs at least one SMT context")
        if self.dma_max_request <= 0 or self.dma_alignment <= 0:
            raise ValueError("DMA geometry must be positive")

    def with_(self, **kwargs) -> "CellParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class BladeParams:
    """A blade hosting one or more Cell processors.

    The paper's machine is a dual-Cell blade with 1 GB XDR (512 MB per
    processor).  Cross-Cell off-loading is possible but pays an inter-chip
    latency penalty on signals and DMA.
    """

    cell: CellParams = CellParams()
    n_cells: int = 1
    cross_cell_signal_penalty: float = 0.5 * US
    cross_cell_bandwidth: float = 20.0 * GB
    ram_bytes: int = 1 * GB

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("blade needs at least one Cell")

    @property
    def total_spes(self) -> int:
        return self.cell.n_spes * self.n_cells

    @property
    def total_ppe_contexts(self) -> int:
        return self.cell.ppe_smt_contexts * self.n_cells

    def with_(self, **kwargs) -> "BladeParams":
        return replace(self, **kwargs)


DEFAULT_CELL = CellParams()
DEFAULT_BLADE = BladeParams()
