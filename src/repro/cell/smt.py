"""The PPE: a dual-thread SMT core with an OS run queue.

This is the mechanism underneath both schedulers in the paper:

* the **Linux baseline** — software threads that *spin* on off-load
  completion hold their hardware context until the 10 ms quantum expires,
  so at most ``n_contexts`` off-loads are in flight (Table 1's stairs);
* **EDTLP** — threads voluntarily yield at off-load points, so the run
  queue drains in ~10 us bursts and all SPEs stay fed.

The model is a work-conserving multi-context processor:

* up to ``n_contexts`` software threads run simultaneously; a thread's
  speed degrades with the *contention weight* of its SMT siblings —
  computing siblings weigh 1.0, spinning siblings ``spin_contention``
  (a mailbox-polling loop barely touches the pipeline);
* a thread placed on a context whose previous occupant differs pays the
  context-switch cost before making progress;
* round-robin preemption at quantum expiry whenever other threads wait;
* threads may carry a hard *affinity* to one context, modeling the
  per-CPU run queues of Linux 2.6 (migration between SMT siblings was
  rare at sub-second timescales, which is what produces the paper's
  ceil(w/2) stair pattern in Table 1);
* a completing thread *lingers* on its context for zero simulated time so
  a back-to-back follow-up request (same timestamp) continues in place —
  this lets a Linux-mode thread alternate compute and spin segments
  without being bounced through the run queue.

Threads interact through :class:`CoreThread`:

* ``run(work)`` — compute ``work`` seconds of full-speed work;
* ``spin_until(event)`` — busy-wait; completes once the event has fired
  *and* the thread is on a context (spinners notice completion only while
  scheduled, exactly the Linux pathology the paper exploits).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..sim.engine import Environment
from ..sim.events import Event, URGENT

__all__ = ["SMTCore", "CoreThread"]

_EPS = 1e-12

# CoreThread.state values
_IDLE = "idle"
_READY = "ready"
_RUNNING = "running"
_LINGER = "linger"

# request kinds
_WORK = "work"
_SPIN = "spin"


class CoreThread:
    """A software thread's handle onto an :class:`SMTCore`."""

    __slots__ = (
        "core",
        "name",
        "state",
        "kind",
        "remaining",
        "done_event",
        "spin_fired",
        "spin_target",
        "quantum_left",
        "penalty_left",
        "slot",
        "affinity",
        "work_done",
    )

    def __init__(self, core: "SMTCore", name: str,
                 affinity: Optional[int] = None) -> None:
        if affinity is not None and not (0 <= affinity < core.n_contexts):
            raise ValueError(f"affinity {affinity} out of range")
        self.core = core
        self.name = name
        self.state = _IDLE
        self.kind: Optional[str] = None
        self.remaining = 0.0
        self.done_event: Optional[Event] = None
        self.spin_fired = False
        self.spin_target: Optional[Event] = None
        self.quantum_left = 0.0
        self.penalty_left = 0.0
        self.slot: Optional[int] = None
        self.affinity = affinity
        self.work_done = 0.0  # lifetime full-speed work completed

    def run(self, work: float) -> Event:
        """Request ``work`` seconds of computation; returns a done event."""
        return self.core._submit(self, _WORK, work=work)

    def spin_until(self, event: Event) -> Event:
        """Busy-wait on ``event``; returns a done event.

        The spin occupies a hardware context (lightly contending with the
        sibling SMT thread) and completes only when the thread is
        scheduled *and* the target has fired.
        """
        return self.core._submit(self, _SPIN, target=event)

    def _spin_notice(self, ev: Event) -> None:
        # Guard: the thread may have moved on to a different request.
        if self.spin_target is ev:
            self.spin_fired = True
            self.core._wake()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CoreThread {self.name} {self.state}>"


class SMTCore:
    """A multi-context SMT processor core with an OS-style run queue."""

    def __init__(
        self,
        env: Environment,
        n_contexts: int = 2,
        smt_efficiency: float = 0.62,
        spin_contention: float = 0.2,
        quantum: float = 10e-3,
        switch_cost: float = 1.5e-6,
        name: str = "ppe",
    ) -> None:
        if n_contexts < 1:
            raise ValueError("n_contexts must be >= 1")
        if not (0.0 < smt_efficiency <= 1.0):
            raise ValueError("smt_efficiency must be in (0, 1]")
        if not (0.0 <= spin_contention <= 1.0):
            raise ValueError("spin_contention must be in [0, 1]")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if switch_cost < 0:
            raise ValueError("switch_cost must be non-negative")
        self.env = env
        self.name = name
        self.n_contexts = n_contexts
        self.smt_efficiency = smt_efficiency
        self.spin_contention = spin_contention
        self.quantum = quantum
        self.switch_cost = switch_cost

        self._ready: Deque[CoreThread] = deque()
        self._ready_aff: List[Deque[CoreThread]] = [
            deque() for _ in range(n_contexts)
        ]
        self._running: List[CoreThread] = []
        self._slot_last: List[Optional[CoreThread]] = [None] * n_contexts
        self._slot_free: List[int] = list(range(n_contexts - 1, -1, -1))
        self._last_ts = env.now
        self._version = 0
        # Accounting (for utilization metrics).
        self.busy_context_seconds = 0.0
        self.switches = 0

    # -- public introspection ---------------------------------------------
    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def n_ready(self) -> int:
        return len(self._ready) + sum(len(q) for q in self._ready_aff)

    def thread(self, name: str, affinity: Optional[int] = None) -> CoreThread:
        """Create a new software-thread handle.

        ``affinity`` pins the thread to one hardware context (Linux 2.6
        per-CPU run-queue behaviour); None lets it run anywhere.
        """
        return CoreThread(self, name, affinity)

    def occupancy(self, window: float) -> float:
        """Mean fraction of contexts busy over ``window`` seconds."""
        if window <= 0:
            return 0.0
        self._advance()
        return self.busy_context_seconds / (window * self.n_contexts)

    # -- request submission -------------------------------------------------
    def _submit(self, thread: CoreThread, kind: str, work: float = 0.0,
                target: Optional[Event] = None) -> Event:
        if thread.core is not self:
            raise ValueError(f"thread {thread.name!r} belongs to another core")
        if thread.state not in (_IDLE, _LINGER):
            raise RuntimeError(
                f"thread {thread.name!r} submitted a request while {thread.state}"
            )
        if kind == _WORK and work < 0:
            raise ValueError("work must be non-negative")

        self._advance()
        done = Event(self.env)
        thread.kind = kind
        thread.remaining = work
        thread.done_event = done
        thread.spin_fired = False
        thread.spin_target = target
        if kind == _SPIN:
            if target is None:
                raise ValueError("spin requires a target event")
            # The callback receives the fired event itself, so the bound
            # method can re-check it against ``spin_target`` without a
            # closure allocation per spin.
            target.add_callback(thread._spin_notice)

        if thread.state == _LINGER:
            # Continue on the same context: no switch cost, quantum keeps
            # ticking.  This is the back-to-back fast path.
            thread.state = _RUNNING
        else:
            thread.state = _READY
            self._enqueue(thread)
        self._wake()
        return done

    def _enqueue(self, thread: CoreThread) -> None:
        if thread.affinity is None:
            self._ready.append(thread)
        else:
            self._ready_aff[thread.affinity].append(thread)

    # -- engine ---------------------------------------------------------------
    def _thread_speed(self, thread: CoreThread) -> float:
        """Speed of a working thread given its current SMT siblings.

        Contention weight of siblings: 1.0 per computing thread,
        ``spin_contention`` per spinning thread.  Speed interpolates from
        1.0 (alone) down to ``smt_efficiency`` (one fully-computing
        sibling); with more than one sibling (>2 contexts) the weights
        accumulate.
        """
        w = 0.0
        for other in self._running:
            if other is thread:
                continue
            w += 1.0 if other.kind == _WORK else self.spin_contention
        if w <= 0.0:
            return 1.0
        return 1.0 / (1.0 + (1.0 / self.smt_efficiency - 1.0) * w)

    def _advance(self) -> None:
        """Account elapsed time onto running threads."""
        now = self.env.now
        dt = now - self._last_ts
        self._last_ts = now
        if dt <= 0 or not self._running:
            return
        self.busy_context_seconds += dt * len(self._running)
        for t in self._running:
            pen = min(t.penalty_left, dt)
            t.penalty_left -= pen
            eff = dt - pen
            if t.kind == _WORK and eff > 0:
                progress = eff * self._thread_speed(t)
                t.remaining -= progress
                t.work_done += progress
            t.quantum_left -= dt

    def _complete(self, thread: CoreThread) -> None:
        """Finish the thread's current request; it lingers on its slot."""
        done = thread.done_event
        thread.done_event = None
        thread.kind = None
        thread.spin_target = None
        thread.state = _LINGER
        # Linger expires after every same-timestamp callback has run; a
        # NORMAL-priority zero timeout sorts after the URGENT completion
        # exactly like a NORMAL succeed would, and is pool-recyclable.
        expire = self.env.timeout(0.0, thread)
        expire.add_callback(self._on_linger_expire)
        done.succeed(None, priority=URGENT)

    def _on_linger_expire(self, ev: Event) -> None:
        thread = ev._value
        if thread.state == _LINGER:
            self._release_slot(thread)
            thread.state = _IDLE
            self._wake()

    def _release_slot(self, thread: CoreThread) -> None:
        self._running.remove(thread)
        slot = thread.slot
        thread.slot = None
        self._slot_last[slot] = thread
        self._slot_free.append(slot)

    def _eligible(self, slot: int) -> Optional[CoreThread]:
        """Pop the next ready thread allowed to run on ``slot``."""
        if self._ready_aff[slot]:
            return self._ready_aff[slot].popleft()
        if self._ready:
            return self._ready.popleft()
        return None

    def _has_eligible(self, slot: int) -> bool:
        return bool(self._ready_aff[slot]) or bool(self._ready)

    def _wake(self) -> None:
        """Re-evaluate state after any change; reschedule the timer."""
        self._version += 1
        self._advance()
        running = self._running

        # Reap completions.  ``_complete`` leaves the thread lingering on
        # its slot (no ``_running`` mutation), so collect first and the
        # common nothing-completed scan allocates no copy.
        completed = None
        for t in running:
            if t.penalty_left > _EPS:
                continue
            if (t.kind == _WORK and t.remaining <= _EPS) or (
                t.kind == _SPIN and t.spin_fired
            ):
                if completed is None:
                    completed = [t]
                else:
                    completed.append(t)
        if completed is not None:
            for t in completed:
                self._complete(t)

        # Quantum preemption and context fill both matter only while a
        # ready thread is waiting for a slot.
        if self._ready or any(self._ready_aff):
            preempted = None
            for t in running:
                if (
                    t.state == _RUNNING
                    and t.quantum_left <= _EPS
                    and self._has_eligible(t.slot)
                ):
                    if preempted is None:
                        preempted = [t]
                    else:
                        preempted.append(t)
            if preempted is not None:
                for t in preempted:
                    self._release_slot(t)
                    t.state = _READY
                    self._enqueue(t)

            # Fill free contexts.
            progressed = True
            while self._slot_free and progressed:
                progressed = False
                for slot in list(self._slot_free):
                    t = self._eligible(slot)
                    if t is None:
                        continue
                    self._slot_free.remove(slot)
                    t.slot = slot
                    t.state = _RUNNING
                    if self._slot_last[slot] is not t and self._slot_last[slot] is not None:
                        t.penalty_left = self.switch_cost
                        self.switches += 1
                    else:
                        t.penalty_left = 0.0
                    t.quantum_left = self.quantum
                    self._slot_last[slot] = t
                    running.append(t)
                    progressed = True

        self._arm_timer()

    def _arm_timer(self) -> None:
        """Schedule the next state-change time, superseding older timers."""
        running = self._running
        if not running:
            return
        horizon = float("inf")
        waiters = bool(self._ready) or any(self._ready_aff)
        for t in running:
            if t.kind == _WORK:
                speed = self._thread_speed(t)
                horizon = min(horizon, t.penalty_left + t.remaining / speed)
            elif t.kind == _SPIN and t.spin_fired:
                horizon = min(horizon, t.penalty_left)
            if waiters and self._has_eligible(t.slot):
                horizon = min(horizon, max(t.quantum_left, 0.0))
        if horizon == float("inf"):
            return
        # The timer carries its arming version; a superseded timer fires
        # into a no-op.  Carrying it as the timeout value (instead of a
        # closure) keeps the timer pool-recyclable.
        timer = self.env.timeout(max(horizon, 0.0), self._version)
        timer.add_callback(self._on_timer)

    def _on_timer(self, ev: Event) -> None:
        if ev._value == self._version:
            self._wake()
