"""A discrete-event model of the Cell Broadband Engine.

Substitutes for the (now unobtainable) Cell blade hardware the paper ran
on: a dual-thread SMT PPE with an OS run queue, eight SPEs with 256 KB
local stores and code-image management, MFC DMA engines implementing the
documented transfer rules, and the Element Interconnect Bus.
"""

from .eib import EIB
from .local_store import CodeImage, LocalStore, LocalStoreOverflow
from .machine import CellMachine, SPEPool
from .mfc import MFC, DmaRequest, legal_transfer_size
from .params import BladeParams, CellParams, DEFAULT_BLADE, DEFAULT_CELL
from .smt import CoreThread, SMTCore
from .spe import SPE

__all__ = [
    "CellParams",
    "BladeParams",
    "DEFAULT_CELL",
    "DEFAULT_BLADE",
    "CellMachine",
    "SPEPool",
    "SPE",
    "SMTCore",
    "CoreThread",
    "MFC",
    "DmaRequest",
    "legal_transfer_size",
    "EIB",
    "LocalStore",
    "CodeImage",
    "LocalStoreOverflow",
]
