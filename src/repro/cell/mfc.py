"""Memory Flow Controller: DMA timing and transfer decomposition.

Each SPE reaches main memory only through its MFC.  The model implements
the documented DMA rules (Section 4 of the paper):

* a single request moves at most 16 KB;
* transfers must be 1, 2, 4, 8 or a multiple of 16 bytes, 128-bit aligned
  (the model rounds sizes up to a legal transfer size);
* larger transfers are decomposed into DMA lists of up to 2048 requests.

Transfer time = per-request startup + bytes / effective bandwidth, where
effective bandwidth is the lesser of the SPE's MFC port and the share of
the EIB the transfer gets (see :mod:`repro.cell.eib`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, TYPE_CHECKING

from .params import CellParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .eib import EIB

__all__ = ["DmaRequest", "MFC", "legal_transfer_size"]

_LEGAL_SMALL = (1, 2, 4, 8)


def legal_transfer_size(nbytes: int) -> int:
    """Round ``nbytes`` up to the nearest legal MFC transfer size.

    The MFC supports transfers of 1, 2, 4, 8 bytes or any multiple of 16
    bytes.  Zero-byte transfers are rejected.
    """
    if nbytes <= 0:
        raise ValueError(f"transfer size must be positive, got {nbytes}")
    if nbytes <= 8:
        for legal in _LEGAL_SMALL:
            if nbytes <= legal:
                return legal
    return 16 * math.ceil(nbytes / 16)


@dataclass(frozen=True)
class DmaRequest:
    """One element of a DMA list: a legal-size chunk."""

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes not in _LEGAL_SMALL and self.nbytes % 16 != 0:
            raise ValueError(f"illegal DMA request size {self.nbytes}")


class MFC:
    """DMA engine of one SPE.

    The MFC provides *timing* (how long a transfer takes) and
    *decomposition* (how a byte count maps onto DMA requests/lists).  The
    actual waiting is done by callers via the environment, so this class
    is a pure, deterministic model that is easy to property-test.
    """

    def __init__(self, params: CellParams, eib: "EIB" = None) -> None:
        self.params = params
        self.eib = eib

    # -- decomposition ---------------------------------------------------
    def decompose(self, nbytes: int) -> List[DmaRequest]:
        """Split ``nbytes`` into legal DMA requests (a DMA list).

        Raises if more than ``dma_list_max`` requests would be needed.
        """
        nbytes = legal_transfer_size(nbytes)
        maxreq = self.params.dma_max_request
        full, rest = divmod(nbytes, maxreq)
        reqs = [DmaRequest(maxreq)] * full
        if rest:
            reqs.append(DmaRequest(legal_transfer_size(rest)))
        if len(reqs) > self.params.dma_list_max:
            raise ValueError(
                f"{nbytes} B needs {len(reqs)} DMA requests; the MFC list "
                f"limit is {self.params.dma_list_max}"
            )
        return reqs

    def n_requests(self, nbytes: int) -> int:
        """Number of DMA requests needed for ``nbytes``."""
        nbytes = legal_transfer_size(nbytes)
        return max(1, math.ceil(nbytes / self.params.dma_max_request))

    # -- timing ----------------------------------------------------------
    def effective_bandwidth(self, concurrent: int = 1) -> float:
        """Bandwidth one transfer sees with ``concurrent`` active DMAs.

        Limited by the SPE's own MFC port and by an equal share of the EIB
        (each of the four rings carries several transfers; contention
        matters only when many SPEs stream simultaneously).
        """
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        port = self.params.spe_dma_bandwidth
        if self.eib is not None:
            return min(port, self.eib.share(concurrent))
        return min(port, self.params.eib_bandwidth / concurrent)

    def transfer_time(self, nbytes: int, concurrent: int = 1) -> float:
        """Seconds to move ``nbytes`` between local store and RAM.

        Includes one startup latency per DMA request in the list (requests
        in a list pipeline, so only a fraction of the startup is exposed
        after the first request).
        """
        nbytes = legal_transfer_size(nbytes)
        n_req = self.n_requests(nbytes)
        bw = self.effective_bandwidth(concurrent)
        # First request pays full startup; pipelined followers expose 20%.
        startup = self.params.dma_startup * (1 + 0.2 * (n_req - 1))
        return startup + nbytes / bw

    def transfer_time_with_retries(
        self,
        nbytes: int,
        n_errors: int = 0,
        concurrent: int = 1,
        retry_penalty: float = 1.0,
    ) -> float:
        """Transfer time when ``n_errors`` DMA errors force re-issues.

        Each error costs ``retry_penalty`` times the clean transfer time
        (the MFC detects the fault after the transfer window, tears the
        list down and re-issues it).  ``n_errors == 0`` is exactly
        :meth:`transfer_time` — the fault-free path pays nothing.
        """
        if n_errors < 0:
            raise ValueError("n_errors must be non-negative")
        if retry_penalty < 0:
            raise ValueError("retry_penalty must be non-negative")
        base = self.transfer_time(nbytes, concurrent)
        if n_errors == 0:
            return base
        return base * (1.0 + retry_penalty * n_errors)
