"""Element Interconnect Bus model.

The EIB is a four-ring coherent bus moving 96 bytes/cycle (204.8 GB/s at
3.2 GHz) between PPE, SPEs, memory and I/O.  For scheduling purposes two
aspects matter and both are modeled:

* **bandwidth sharing** — when ``k`` transfers are in flight they share the
  aggregate bandwidth, but a single transfer can never use more than one
  ring's worth; and
* **occupancy tracking** — a counted resource lets simulation processes
  register in-flight DMAs so concurrent transfer counts are observable.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from .params import CellParams

__all__ = ["EIB"]


class EIB:
    """Bandwidth arbiter for one Cell's on-chip interconnect."""

    def __init__(self, params: CellParams, env: Optional[Environment] = None) -> None:
        self.params = params
        self.env = env
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        """Number of currently registered transfers."""
        return self._in_flight

    @property
    def ring_bandwidth(self) -> float:
        """Peak bandwidth of a single ring (aggregate / #rings)."""
        return self.params.eib_bandwidth / self.params.eib_rings

    def share(self, concurrent: Optional[int] = None) -> float:
        """Bandwidth available to one transfer among ``concurrent``.

        With ``concurrent=None`` the current registered in-flight count is
        used (minimum 1).  A single transfer is capped at one ring.
        """
        if concurrent is None:
            concurrent = max(1, self._in_flight)
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        return min(self.ring_bandwidth, self.params.eib_bandwidth / concurrent)

    # -- occupancy registration ------------------------------------------
    def register(self, n: int = 1) -> None:
        """Mark ``n`` transfers as having entered the bus."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._in_flight += n

    def unregister(self, n: int = 1) -> None:
        """Mark ``n`` transfers as having left the bus."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if self._in_flight - n < 0:
            raise RuntimeError("EIB unregister below zero in-flight")
        self._in_flight -= n

    def contention_factor(self, concurrent: int) -> float:
        """Slowdown factor a transfer sees with ``concurrent`` streams.

        1.0 while the streams fit in the aggregate bandwidth; grows
        linearly once they oversubscribe it.  Used by the closed-form LLP
        loop model (see :mod:`repro.core.llp`).
        """
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        single = self.share(1)
        shared = self.share(concurrent)
        return single / shared
