"""SPE local-store accounting.

Each SPE owns 256 KB of software-managed local storage holding the code
image, stack and heap.  The runtime must fit the off-loaded code module
(117 KB for RAxML's three merged functions) and leave room for data; this
module does the bookkeeping and raises :class:`LocalStoreOverflow` when a
code image or allocation cannot fit — mirroring the constraint the paper
discusses in Sections 5.1 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["CodeImage", "LocalStore", "LocalStoreOverflow"]


class LocalStoreOverflow(RuntimeError):
    """Raised when the 256 KB local store cannot hold a request."""


@dataclass(frozen=True)
class CodeImage:
    """An SPE code module.

    ``name`` identifies the off-loaded function group (e.g. ``raxml3``)
    and ``variant`` the parallelization flavour (``serial`` vs ``llp``).
    The paper keeps separate serial and loop-parallel images and swaps
    them, because conditionals are expensive on the SPE.
    """

    name: str
    variant: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("code image size must be positive")

    @property
    def key(self) -> tuple:
        return (self.name, self.variant)


class LocalStore:
    """Byte-level accounting of one SPE's local store.

    Layout: a single code image plus named data allocations (stack, heap,
    DMA buffers).  Allocation is first-fit by total size only — the model
    tracks *capacity*, not addresses, which is all scheduling decisions
    need.
    """

    def __init__(self, capacity: int, stack_reserve: int = 4 * 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if stack_reserve < 0 or stack_reserve > capacity:
            raise ValueError("invalid stack reserve")
        self.capacity = capacity
        self.stack_reserve = stack_reserve
        self.code_image: Optional[CodeImage] = None
        self._allocs: Dict[str, int] = {}

    @property
    def code_size(self) -> int:
        return self.code_image.size if self.code_image else 0

    @property
    def data_in_use(self) -> int:
        return sum(self._allocs.values())

    @property
    def free(self) -> int:
        return self.capacity - self.code_size - self.data_in_use - self.stack_reserve

    def fits_code(self, image: CodeImage) -> bool:
        """Would ``image`` fit if it replaced the current code image?"""
        return image.size + self.data_in_use + self.stack_reserve <= self.capacity

    def load_code(self, image: CodeImage) -> int:
        """Install ``image``, replacing any existing one.

        Returns the number of bytes that must be DMA-transferred (the full
        image size; 0 if the identical image is already resident).
        """
        if self.code_image is not None and self.code_image.key == image.key:
            return 0
        if not self.fits_code(image):
            raise LocalStoreOverflow(
                f"code image {image.name}/{image.variant} ({image.size} B) "
                f"does not fit: {self.data_in_use} B data + "
                f"{self.stack_reserve} B stack in {self.capacity} B store"
            )
        self.code_image = image
        return image.size

    def allocate(self, label: str, nbytes: int) -> None:
        """Reserve ``nbytes`` of data space under ``label``."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if label in self._allocs:
            raise ValueError(f"allocation {label!r} already exists")
        if nbytes > self.free:
            raise LocalStoreOverflow(
                f"allocation {label!r} ({nbytes} B) exceeds free space "
                f"({self.free} B)"
            )
        self._allocs[label] = nbytes

    def release(self, label: str) -> int:
        """Free the allocation ``label``; returns its size."""
        try:
            return self._allocs.pop(label)
        except KeyError:
            raise KeyError(f"no allocation named {label!r}") from None

    def reset(self) -> None:
        """Drop all data allocations (keeps the code image)."""
        self._allocs.clear()
