"""Synergistic Processing Element model.

An SPE executes one off-loaded task at a time.  The model tracks the
resident code image (loading a different image costs a DMA of the image
size — the paper's ``t_code``), busy/idle intervals for utilization and
MGPS's history window, and exposes an ``occupy`` helper that scheduler
processes drive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional, Tuple

from ..sim.engine import Environment
from ..sim.events import Event
from .eib import EIB
from .local_store import CodeImage, LocalStore
from .mfc import MFC
from .params import CellParams

__all__ = ["SPE"]


class SPE:
    """One synergistic processing element."""

    def __init__(
        self,
        env: Environment,
        params: CellParams,
        cell_id: int,
        index: int,
    ) -> None:
        self.env = env
        self.params = params
        self.cell_id = cell_id
        self.index = index
        self.name = f"cell{cell_id}.spe{index}"
        self.local_store = LocalStore(params.local_store_size)
        self.eib: Optional[EIB] = None  # set by the machine
        self.mfc = MFC(params)
        self.busy = False
        self.owner: Optional[str] = None
        # Busy-book backref (set by CellMachine): mirrors busy/owner
        # transitions into O(1) per-cell / per-owner counts so the
        # runtime's contention and source queries need no SPE scans.
        self._book: Optional[object] = None
        # Fault state: ``alive`` is cleared by a permanent kill,
        # ``blacklisted`` by the tolerance policy after repeated
        # failures.  Either takes the SPE out of service.
        self.alive = True
        self.blacklisted = False
        self.fail_time: Optional[float] = None
        self._busy_since = 0.0
        self.busy_seconds = 0.0
        self.tasks_executed = 0
        self.code_loads = 0
        # LRU-ordered resident data sets (key -> bytes), living in the
        # local store's data space.  Used by memory-aware scheduling.
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        self.data_evictions = 0

    # -- code management ---------------------------------------------------
    @property
    def code_image(self) -> Optional[CodeImage]:
        return self.local_store.code_image

    def code_load_time(self, image: CodeImage) -> float:
        """Seconds of DMA needed to make ``image`` resident (0 if cached)."""
        if self.code_image is not None and self.code_image.key == image.key:
            return 0.0
        return self.mfc.transfer_time(image.size)

    def load_code(self, image: CodeImage) -> float:
        """Install ``image``; returns the DMA time that must be paid.

        If the new image does not fit next to the resident data sets,
        least-recently-used data is evicted first (the paper's future
        work: no fixed-size code footprints).
        """
        t = self.code_load_time(image)
        while not self.local_store.fits_code(image) and self._resident:
            self._evict_lru()
        moved = self.local_store.load_code(image)
        if moved:
            self.code_loads += 1
        return t

    # -- resident data (memory-aware scheduling) ---------------------------
    @property
    def resident_keys(self) -> Tuple[str, ...]:
        return tuple(self._resident.keys())

    def data_resident(self, key: str) -> bool:
        return key in self._resident

    def _evict_lru(self) -> None:
        key, _ = self._resident.popitem(last=False)
        self.local_store.release(f"data:{key}")
        self.data_evictions += 1

    def load_data(self, key: str, nbytes: int) -> int:
        """Make data set ``key`` resident; returns bytes to DMA (0 = hit).

        Evicts least-recently-used data sets until the new one fits.
        Raises :class:`~repro.cell.local_store.LocalStoreOverflow` if the
        working set alone exceeds the data space.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if key in self._resident:
            self._resident.move_to_end(key)  # refresh LRU position
            return 0
        if nbytes == 0:
            return 0
        while self.local_store.free < nbytes and self._resident:
            self._evict_lru()
        self.local_store.allocate(f"data:{key}", nbytes)
        self._resident[key] = nbytes
        return nbytes

    # -- fault state -------------------------------------------------------
    @property
    def in_service(self) -> bool:
        """True while the SPE can be scheduled (alive, not blacklisted)."""
        return self.alive and not self.blacklisted

    # -- execution ---------------------------------------------------------
    def mark_busy(self, owner: str) -> None:
        if self.busy:
            raise RuntimeError(
                f"{self.name} is already busy (owner {self.owner!r}); "
                f"double-assignment by {owner!r}"
            )
        self.busy = True
        self.owner = owner
        self._busy_since = self.env.now
        if self._book is not None:
            self._book._note_busy(self.cell_id, owner)

    def mark_idle(self) -> None:
        if not self.busy:
            raise RuntimeError(f"{self.name} marked idle while already idle")
        owner, self.owner = self.owner, None
        self.busy = False
        self.busy_seconds += self.env.now - self._busy_since
        if self._book is not None:
            self._book._note_idle(self.cell_id, owner)

    def occupy(self, duration: float, owner: str) -> Generator[Event, None, None]:
        """Generator: hold the SPE busy for ``duration`` seconds.

        Intended for ``yield from`` inside a scheduler process.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.mark_busy(owner)
        try:
            yield self.env.timeout(duration)
            self.tasks_executed += 1
        finally:
            self.mark_idle()

    def utilization(self, window: float) -> float:
        """Fraction of ``window`` this SPE was busy."""
        if window <= 0:
            return 0.0
        busy = self.busy_seconds
        if self.busy:
            busy += self.env.now - self._busy_since
        return busy / window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self.busy else "idle"
        if not self.in_service:
            state += " dead" if not self.alive else " blacklisted"
        return f"<SPE {self.name} {state}>"
