"""The assembled Cell machine: PPE cores, SPE pool, interconnect.

A :class:`CellMachine` wires together one or more Cell processors on a
blade: per-Cell SMT PPE cores, per-Cell EIBs, and a shared :class:`SPEPool`
from which schedulers acquire SPEs.  Signal latencies between a PPE and an
SPE (and between SPEs) account for the cross-Cell penalty on dual-Cell
blades.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.engine import Environment
from ..sim.events import Event, URGENT
from .eib import EIB
from .params import BladeParams, CellParams
from .smt import SMTCore
from .spe import SPE

__all__ = ["CellMachine", "SPEPool"]


class SPEPool:
    """Free-list of SPEs with FIFO waiting.

    ``acquire`` returns an event that fires with an SPE; ``try_acquire``
    and ``try_acquire_many`` are the non-blocking variants used by the LLP
    runtime when it opportunistically grabs idle SPEs for loop workers.
    """

    def __init__(self, env: Environment, spes: List[SPE]) -> None:
        self.env = env
        self._free: List[SPE] = list(spes)
        self._all = list(spes)
        self._waiters: Deque[Tuple[Event, Optional[int]]] = deque()
        self._n_out = 0  # SPEs permanently out of service (dead/blacklisted)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_total(self) -> int:
        return len(self._all)

    @property
    def n_live(self) -> int:
        """SPEs still in service (not dead, not blacklisted)."""
        return len(self._all) - self._n_out

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)

    def _pick(self, prefer_cell: Optional[int]) -> SPE:
        """Remove and return a free SPE, preferring ``prefer_cell``.

        The free list is used LIFO: the most recently released SPE is
        handed out first, so resident code images stay hot (t_code = 0
        for repeat off-loads of the same functions).
        """
        if prefer_cell is not None:
            for i in range(len(self._free) - 1, -1, -1):
                if self._free[i].cell_id == prefer_cell:
                    return self._free.pop(i)
        return self._free.pop()

    def acquire(self, prefer_cell: Optional[int] = None) -> Event:
        """Blocking acquire: the event fires with an :class:`SPE`.

        When no SPE remains in service (every SPE dead or blacklisted)
        the event fires immediately with ``None`` instead of blocking
        forever — fault-tolerant callers fall back to the PPE.
        """
        ev = Event(self.env)
        if self._free:
            ev.succeed(self._pick(prefer_cell), priority=URGENT)
        elif self.n_live == 0:
            ev.succeed(None, priority=URGENT)
        else:
            self._waiters.append((ev, prefer_cell))
        return ev

    def try_acquire(self, prefer_cell: Optional[int] = None) -> Optional[SPE]:
        """Non-blocking acquire; None if no SPE is free."""
        if not self._free:
            return None
        return self._pick(prefer_cell)

    def try_acquire_where(self, predicate) -> Optional[SPE]:
        """Non-blocking acquire of a free SPE satisfying ``predicate``.

        Scans newest-first (LIFO, matching :meth:`_pick`); None when no
        free SPE qualifies.  Used by locality-aware scheduling to find an
        SPE whose local store already holds a task's data set.
        """
        for i in range(len(self._free) - 1, -1, -1):
            if predicate(self._free[i]):
                return self._free.pop(i)
        return None

    def try_acquire_best(self, score) -> Optional[SPE]:
        """Non-blocking acquire of the free SPE maximizing ``score(spe)``.

        Ties break newest-first.  Locality-aware scheduling uses this on
        a residency miss to place the data set on the store with the most
        free space, spreading working sets across SPEs instead of
        thrashing one store.
        """
        if not self._free:
            return None
        best_i = max(
            range(len(self._free)),
            key=lambda i: (score(self._free[i]), i),
        )
        return self._free.pop(best_i)

    def try_acquire_many(
        self, k: int, prefer_cell: Optional[int] = None
    ) -> List[SPE]:
        """Grab up to ``k`` free SPEs (possibly fewer, never blocking)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        out: List[SPE] = []
        while len(out) < k and self._free:
            out.append(self._pick(prefer_cell))
        return out

    def release(self, spe: SPE) -> None:
        """Return an SPE to the pool, waking the oldest waiter if any.

        An SPE that left service while busy (killed or blacklisted
        mid-task) is dropped rather than recirculated; if that drop
        leaves the pool with zero live SPEs, every blocked waiter is
        woken with ``None`` so processes can fall back to the PPE
        instead of deadlocking.
        """
        if spe in self._free:
            raise RuntimeError(f"{spe.name} released twice")
        if not spe.in_service:
            self._fail_stranded_waiters()
            return
        if self._waiters:
            ev, prefer = self._waiters.popleft()
            ev.succeed(spe, priority=URGENT)
        else:
            self._free.append(spe)

    def mark_out_of_service(self, spe: SPE) -> None:
        """Remove a dead/blacklisted SPE from circulation.

        The caller must already have cleared :attr:`SPE.in_service`
        (via ``alive`` or ``blacklisted``).  Idempotent per SPE: a kill
        following a blacklist (or vice versa) is counted once.
        """
        if spe.in_service:
            raise RuntimeError(
                f"{spe.name} is still in service; clear alive/blacklisted "
                f"before retiring it from the pool"
            )
        if spe not in self._all:
            raise RuntimeError(f"{spe.name} does not belong to this pool")
        if getattr(spe, "_pool_retired", False):
            return
        spe._pool_retired = True
        self._n_out += 1
        if spe in self._free:
            self._free.remove(spe)
        self._fail_stranded_waiters()

    def _fail_stranded_waiters(self) -> None:
        """Wake all waiters with ``None`` once no live SPE can ever serve."""
        if self.n_live > 0:
            return
        while self._waiters:
            ev, _prefer = self._waiters.popleft()
            ev.succeed(None, priority=URGENT)


class CellMachine:
    """One blade: ``n_cells`` Cell processors sharing XDR memory."""

    def __init__(self, env: Environment, params: Optional[BladeParams] = None) -> None:
        self.env = env
        self.params = params or BladeParams()
        cell = self.params.cell
        self.cores: List[SMTCore] = [
            SMTCore(
                env,
                n_contexts=cell.ppe_smt_contexts,
                smt_efficiency=cell.smt_efficiency,
                spin_contention=cell.spin_contention,
                quantum=cell.os_quantum,
                switch_cost=cell.context_switch,
                name=f"cell{c}.ppe",
            )
            for c in range(self.params.n_cells)
        ]
        self.eibs: List[EIB] = [
            EIB(cell, env) for _ in range(self.params.n_cells)
        ]
        self.spes: List[SPE] = []
        # Busy-book: incremental counts maintained by SPE.mark_busy /
        # mark_idle so contention and task-source queries are O(1)
        # instead of scanning every SPE per off-load.
        self._busy_by_cell: List[int] = [0] * self.params.n_cells
        self._busy_cell_owner: Dict[Tuple[int, str], int] = {}
        self._busy_owners: Dict[str, int] = {}
        for c in range(self.params.n_cells):
            for i in range(cell.n_spes):
                spe = SPE(env, cell, c, i)
                spe.eib = self.eibs[c]
                spe.mfc.eib = self.eibs[c]
                spe._book = self
                self.spes.append(spe)
        self.pool = SPEPool(env, self.spes)

    # -- busy-book ------------------------------------------------------------
    def _note_busy(self, cell_id: int, owner: Optional[str]) -> None:
        self._busy_by_cell[cell_id] += 1
        if owner:
            key = (cell_id, owner)
            bco = self._busy_cell_owner
            bco[key] = bco.get(key, 0) + 1
            bo = self._busy_owners
            bo[owner] = bo.get(owner, 0) + 1

    def _note_idle(self, cell_id: int, owner: Optional[str]) -> None:
        self._busy_by_cell[cell_id] -= 1
        if owner:
            key = (cell_id, owner)
            bco = self._busy_cell_owner
            n = bco[key] - 1
            if n:
                bco[key] = n
            else:
                del bco[key]
            bo = self._busy_owners
            n = bo[owner] - 1
            if n:
                bo[owner] = n
            else:
                del bo[owner]

    def busy_others(self, cell_id: int, owner: str) -> int:
        """Busy SPEs on ``cell_id`` owned by someone other than ``owner``.

        Equivalent to scanning ``self.spes`` for
        ``s.busy and s.cell_id == cell_id and s.owner != owner`` — the
        memory-contention term of every off-load — in O(1).
        """
        return self._busy_by_cell[cell_id] - self._busy_cell_owner.get(
            (cell_id, owner), 0
        )

    @property
    def n_busy_owners(self) -> int:
        """Distinct owners of busy SPEs right now (O(1))."""
        return len(self._busy_owners)

    @property
    def cell_params(self) -> CellParams:
        return self.params.cell

    @property
    def n_spes(self) -> int:
        return len(self.spes)

    @property
    def live_spes(self) -> List[SPE]:
        """SPEs still in service (alive and not blacklisted)."""
        return [s for s in self.spes if s.in_service]

    @property
    def n_live_spes(self) -> int:
        return self.pool.n_live

    # -- latencies -----------------------------------------------------------
    def signal_latency(self, cell_id: int, spe: SPE) -> float:
        """One-way PPE(cell_id) <-> SPE signal latency."""
        t = self.cell_params.ppe_spe_signal
        if spe.cell_id != cell_id:
            t += self.params.cross_cell_signal_penalty
        return t

    def spe_signal_latency(self, a: SPE, b: SPE) -> float:
        """One-way SPE->SPE signal (``mfc_put`` of a Pass structure)."""
        t = self.cell_params.spe_spe_signal
        if a.cell_id != b.cell_id:
            t += self.params.cross_cell_signal_penalty
        return t

    # -- metrics --------------------------------------------------------------
    def idle_spes(self) -> List[SPE]:
        return [s for s in self.spes if not s.busy]

    def spe_utilization(self, window: float) -> float:
        """Mean SPE utilization over ``window`` seconds."""
        if not self.spes:
            return 0.0
        return sum(s.utilization(window) for s in self.spes) / len(self.spes)

    def core_for(self, index: int) -> SMTCore:
        """The PPE core an MPI process with the given index runs on.

        Processes are distributed round-robin across the blade's Cells,
        matching how the paper spreads MPI ranks over the two PPEs.
        """
        return self.cores[index % len(self.cores)]
