"""The MPI worker process models.

:func:`mpi_worker` — one simulated MPI process executing bootstraps
pulled from the work dispenser (RAxML's master-worker shape).  Per
bootstrap it replays the off-load trace: a PPE compute gap, then an
off-load request served by the active runtime (which is where all
scheduling policy lives).

:func:`bsp_worker` — one rank of a bulk-synchronous hybrid MPI workload:
iterations of off-load runs separated by barriers (the Section 6
generalization shape).
"""

from __future__ import annotations

from typing import Generator

from ..core.runtime import OffloadRuntime, ProcContext
from ..sim.events import Event
from ..sim.resources import Barrier
from ..workloads.traces import Workload
from .master_worker import WorkDispenser

__all__ = ["mpi_worker", "bsp_worker"]


def mpi_worker(
    ctx: ProcContext,
    runtime: OffloadRuntime,
    dispenser: WorkDispenser,
    workload: Workload,
) -> Generator[Event, None, int]:
    """Worker rank main loop; returns the number of bootstraps completed."""
    completed = 0
    while True:
        index = yield dispenser.get()
        if index is None:
            return completed
        trace = workload.trace(index)
        # The ledger keys on the trace's own identity (``trace.index``),
        # not the dispenser's positional index, so a trace carried into
        # a different bag (serving batches, failover re-execution) keeps
        # its digest.  For a plain Workload the two coincide.
        identity = trace.index
        runtime.note_bootstrap_start(ctx, identity)
        for item in trace.items:
            if item.ppe_gap > 0:
                yield ctx.thread.run(item.ppe_gap)
            yield from runtime.offload(ctx, item.task, trace)
            # The task's result is in hand here — whether it ran on an
            # SPE, after retries, or on the PPE — so this is where it
            # joins the bootstrap's result chain.
            runtime.note_task_complete(ctx, item.task)
        if trace.tail_ppe > 0:
            yield ctx.thread.run(trace.tail_ppe)
        runtime.note_bootstrap_end(ctx, identity)
        completed += 1


def bsp_worker(
    ctx: ProcContext,
    runtime: OffloadRuntime,
    workload,
    barrier: Barrier,
) -> Generator[Event, None, int]:
    """One BSP rank: off-load runs separated by global barriers.

    A rank "has work" only inside its phases — between its last off-load
    of an iteration and the barrier release it is blocked, which is
    exactly when MGPS sees the machine's task parallelism collapse.
    """
    runtime.note_bootstrap_start(ctx, ctx.rank)
    phases = 0
    for iteration in range(workload.iterations):
        for item in workload.phase_items(ctx.rank, iteration):
            if item.ppe_gap > 0:
                yield ctx.thread.run(item.ppe_gap)
            yield from runtime.offload(ctx, item.task, workload)
            runtime.note_task_complete(ctx, item.task)
        phases += 1
        yield barrier.arrive()
    runtime.note_bootstrap_end(ctx, ctx.rank)
    return phases
