"""Master-worker distribution of bootstraps (Section 3.1).

Every real-world RAxML analysis is a bag of independent tree searches
(multiple inferences + bootstraps) farmed out by a master.  Here the
master is a work dispenser: workers pull the next bootstrap index when
idle, which is exactly the dynamic self-scheduling the MPI version uses.
The dispenser is also where MGPS's "T waiting tasks" signal originates:
as the bag drains, fewer processes stay active and LLP becomes worthwhile.
"""

from __future__ import annotations

from ..sim.engine import Environment
from ..sim.resources import Store

__all__ = ["WorkDispenser"]


class WorkDispenser:
    """A bag of bootstrap indices plus per-worker stop sentinels."""

    def __init__(self, env: Environment, n_items: int, n_workers: int) -> None:
        if n_items < 1:
            raise ValueError("need at least one work item")
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.env = env
        self.n_items = n_items
        self.n_workers = n_workers
        self._store = Store(env)
        for i in range(n_items):
            self._store.put(i)
        for _ in range(n_workers):
            self._store.put(None)  # one stop sentinel per worker
        self.items_dispensed = 0

    def get(self):
        """Event yielding the next bootstrap index, or None to stop."""
        ev = self._store.get()

        def _count(e):
            if e.value is not None:
                self.items_dispensed += 1

        ev.add_callback(_count)
        return ev

    @property
    def remaining(self) -> int:
        """Work items (excluding sentinels) still in the bag."""
        return max(0, len(self._store) - self.n_workers)
