"""A minimal simulated-MPI communication layer.

The paper's RAxML is MPI code: independent bootstraps farmed out by a
master to worker ranks.  Inside the simulator, ranks are co-located on the
PPE, so communication is modeled as mailbox queues with a small latency.
The interface intentionally mirrors the mpi4py lowercase API subset the
code needs (``send`` / ``recv`` / ``bcast``), so the example programs read
like ordinary MPI programs.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.resources import Store

__all__ = ["SimComm"]


class SimComm:
    """A communicator over ``size`` simulated ranks."""

    def __init__(self, env: Environment, size: int, latency: float = 1e-6) -> None:
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.size = size
        self.latency = latency
        # One mailbox per (destination, tag).
        self._boxes: Dict[Tuple[int, int], Store] = {}
        self.messages_sent = 0

    def _box(self, dst: int, tag: int) -> Store:
        key = (dst, tag)
        box = self._boxes.get(key)
        if box is None:
            box = Store(self.env)
            self._boxes[key] = box
        return box

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    def send(self, payload: Any, dest: int, tag: int = 0) -> Generator[Event, None, None]:
        """Send ``payload`` to ``dest``; yields the wire latency."""
        self._check_rank(dest)
        self.messages_sent += 1
        if self.latency > 0:
            yield self.env.timeout(self.latency)
        self._box(dest, tag).put(payload)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Non-blocking send: enqueues after the latency elapses."""
        self._check_rank(dest)
        self.messages_sent += 1

        def _deliver():
            if self.latency > 0:
                yield self.env.timeout(self.latency)
            self._box(dest, tag).put(payload)

        self.env.process(_deliver(), name=f"isend->{dest}")

    def recv_at(self, rank: int, tag: int = 0) -> Event:
        """Event firing with the next message addressed to ``rank``."""
        self._check_rank(rank)
        return self._box(rank, tag).get()

    def bcast(self, payload: Any, tag: int = 0) -> None:
        """Deliver ``payload`` to every rank (after one latency)."""
        for r in range(self.size):
            self.isend(payload, r, tag)
