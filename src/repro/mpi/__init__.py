"""Simulated MPI substrate: communicator, master-worker, worker processes."""

from .comm import SimComm
from .master_worker import WorkDispenser
from .process import bsp_worker, mpi_worker

__all__ = ["SimComm", "WorkDispenser", "mpi_worker", "bsp_worker"]
